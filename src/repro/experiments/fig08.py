"""Figure 8: fault counts per cacheline bit position and physical address.

Both distributions are dominated by locations with very few faults and
have heavy, power-law-like tails.  The paper notes the bit-position field
carries extra vendor encoding; our records carry the clean codeword
position, with the syndrome as the vendor-specific companion field.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import (
    count_histogram,
    per_address_counts,
    per_bit_position_counts,
)
from repro.analysis.powerlaw import fit_discrete_powerlaw
from repro.experiments.base import ExperimentResult

EXP_ID = "fig08"
TITLE = "Fault counts per cacheline bit position and per physical address"
#: Record families this experiment consumes (for coverage gating).
FAMILIES = ('errors',)


def run(campaign, **_params) -> ExperimentResult:
    result = ExperimentResult(EXP_ID, TITLE)
    faults = campaign.faults()

    bit_counts = per_bit_position_counts(faults)
    values, freq = count_histogram(bit_counts)
    result.series["bit-position count histogram (count, #positions)"] = list(
        zip(values.tolist(), freq.tolist())
    )
    addr_counts = per_address_counts(faults)
    a_values, a_freq = count_histogram(addr_counts)
    result.series["address count histogram (count, #addresses)"] = list(
        zip(a_values.tolist(), a_freq.tolist())
    )

    positive_bits = bit_counts[bit_counts > 0]
    result.check(
        "bit positions: heavy-tailed (max much larger than median)",
        positive_bits.max() >= 5 * np.median(positive_bits),
    )
    if positive_bits.size >= 3:
        fit = fit_discrete_powerlaw(positive_bits)
        result.series["bit-position power-law fit"] = {
            "alpha": round(fit.alpha, 2),
            "xmin": fit.xmin,
            "ks": round(fit.ks, 3),
        }
        result.check(
            "bit-position counts power-law-like (fit converges, alpha > 1)",
            fit.alpha > 1.0,
        )

    result.check(
        "addresses: vast majority hold a single fault",
        (addr_counts == 1).mean() > 0.9,
    )
    result.check(
        "some addresses hold repeated faults",
        bool((addr_counts > 1).any()),
    )
    result.note(
        f"{int((bit_counts > 0).sum())} of 72 codeword positions faulted; "
        f"{addr_counts.size} distinct faulting addresses"
    )
    return result
