"""Registry of all experiments: Table 1, Figures 2-15, and extensions.

Paper experiments regenerate a specific table/figure; extension
experiments (ids prefixed ``ext-``) cover analyses the paper implies but
does not print -- the omitted temperature table, FIT/persistence tables,
survival analysis, and the SEC-DED/Chipkill matrix.
"""

from __future__ import annotations

from repro.experiments import (
    ext_comparison,
    ext_ecc,
    ext_rates,
    ext_survival,
    ext_tempmap,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)
from repro.experiments.base import ExperimentResult

_MODULES = (
    table1,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
)

_EXTENSION_MODULES = (
    ext_rates,
    ext_survival,
    ext_ecc,
    ext_tempmap,
    ext_comparison,
)

EXPERIMENTS = {module.EXP_ID: module for module in _MODULES}
EXTENSIONS = {module.EXP_ID: module for module in _EXTENSION_MODULES}
_ALL = {**EXPERIMENTS, **EXTENSIONS}


def list_experiments(include_extensions: bool = False) -> list[tuple[str, str]]:
    """(exp_id, title) for registered experiments, in paper order.

    ``include_extensions`` appends the ``ext-*`` experiments.
    """
    modules = _MODULES + (_EXTENSION_MODULES if include_extensions else ())
    return [(module.EXP_ID, module.TITLE) for module in modules]


def run(
    exp_id: str, campaign, min_coverage: float = 0.0, **params
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig05"`` or ``"ext-ecc"``).

    When the campaign was ingested from dirty telemetry, the coverage of
    the record families the experiment consumes (its ``FAMILIES``
    attribute) is threaded into the result: an experiment whose input
    coverage falls below ``min_coverage`` is not run at all and returns
    a ``skipped-insufficient-data`` result; one that runs on partial
    data reports ``pass-degraded`` instead of a clean ``pass``.
    """
    from repro import obs
    from repro.obs.profile import profiled
    from repro.run.report import series_record_count

    try:
        module = _ALL[exp_id]
    except KeyError:
        known = ", ".join(sorted(_ALL))
        raise ValueError(f"unknown experiment {exp_id!r}; known: {known}") from None

    campaign_coverage = dict(getattr(campaign, "coverage", None) or {})
    families = getattr(module, "FAMILIES", None)
    if families is None:
        relevant = campaign_coverage
    else:
        relevant = {
            family: campaign_coverage.get(family, 1.0) for family in families
        }
    with obs.span(f"experiment.{exp_id}") as sp:
        starved = {
            family: frac
            for family, frac in relevant.items()
            if frac < min_coverage
        }
        if starved:
            result = ExperimentResult(exp_id=exp_id, title=module.TITLE)
            result.coverage = relevant
            detail = ", ".join(
                f"{family}={frac:.1%}" for family, frac in sorted(starved.items())
            )
            result.skipped_reason = (
                f"coverage below --min-coverage={min_coverage:.0%}: {detail}"
            )
            result.note(
                f"skipped: insufficient telemetry coverage ({detail}); "
                "quarantined records are listed in the ingest sidecars"
            )
            sp.add(records=0, series=0, checks=0)
            sp.set("status", result.status)
            obs.count("experiment.skipped")
            return result

        if obs.profiling_enabled():
            with profiled(obs.profile_top_n()) as hotspot_rows:
                result = module.run(campaign, **params)
            obs.add_profile(exp_id, hotspot_rows)
        else:
            result = module.run(campaign, **params)
        result.coverage = relevant
        n_records = series_record_count(result.series)
        sp.add(
            records=n_records,
            series=len(result.series),
            checks=len(result.checks),
        )
        sp.set("status", result.status)
        obs.count(f"experiment.records.{exp_id}", n_records)
        obs.count("experiment.completed")
    return result


def run_all(
    campaign, include_extensions: bool = False, jobs: int = 0, **params
) -> dict[str, ExperimentResult]:
    """Run every experiment; returns results keyed by exp id.

    ``jobs > 1`` delegates to :class:`repro.run.ExperimentRunner` for a
    process-parallel fan-out with serial fallback.  Per-experiment
    ``params`` force the serial path (the runner runs defaults only).
    """
    modules = _MODULES + (_EXTENSION_MODULES if include_extensions else ())
    if jobs > 1 and not params:
        from repro.run.runner import ExperimentRunner

        runner = ExperimentRunner(jobs=jobs, include_extensions=include_extensions)
        results, _ = runner.run(campaign)
        return results
    return {module.EXP_ID: module.run(campaign, **params) for module in modules}
