"""Online failure prediction (DESIGN.md section 15).

Feature extraction over the live stream state, a calibrated zero-dep
logistic scorer, the lead-time-aware labeling protocol, and the online
scorer the stream pipeline mounts behind ``repro stream --predict``.
"""

from repro.predict.dataset import (
    Dataset,
    DatasetConfig,
    build_dataset,
    build_seed_datasets,
    make_training_campaign,
    training_calibration,
)
from repro.predict.errors import PredictError
from repro.predict.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    FeatureConfig,
    FeatureState,
)
from repro.predict.metrics import (
    auc,
    lead_time_curve,
    precision_recall,
    recall_at_fpr,
    threshold_at_fpr,
)
from repro.predict.model import MODEL_SCHEMA_VERSION, Model, fit
from repro.predict.score import OnlineScorer, score_records
from repro.predict.train import (
    EVAL_SEEDS,
    TRAIN_SEEDS,
    evaluate,
    train_and_evaluate,
)

__all__ = [
    "Dataset",
    "DatasetConfig",
    "EVAL_SEEDS",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureConfig",
    "FeatureState",
    "MODEL_SCHEMA_VERSION",
    "Model",
    "OnlineScorer",
    "PredictError",
    "TRAIN_SEEDS",
    "auc",
    "build_dataset",
    "build_seed_datasets",
    "evaluate",
    "fit",
    "lead_time_curve",
    "make_training_campaign",
    "precision_recall",
    "recall_at_fpr",
    "score_records",
    "threshold_at_fpr",
    "train_and_evaluate",
    "training_calibration",
]
