"""Windowed per-node feature extraction for failure prediction.

The predictor's features summarise, per node and per moment in time,
exactly what an operator watching the stream could know: CE volume over
multiple horizons, spatial spread of the live faults (distinct bits /
columns / rows / banks per coalescing group), fault-mode escalation, UE
history, and fleet-wide sensor dropout -- the co-occurrence signal the
PR-5 alert rules already track.

Everything is computed on an **epoch-aligned hourly grid**: an event at
time ``t`` lands in window ``W(t) = floor(t / window_s)``, and a
"k-hour" horizon at extraction time ``at`` is the sum over the last
``k`` whole windows ending at ``W(at)``.  Window alignment is what makes
the incremental path exact: folding a stream batch-by-batch and folding
it in one shot produce the *same* window counters, so online scores are
byte-identical to batch scores (the differential tests assert this).

:class:`FeatureState` carries only integer counters and timestamps and
serialises to JSON for the PR-5 checkpoint format; the distinct-value
spread features are read at extraction time from the
:class:`~repro.stream.online_coalesce.OnlineCoalescer` the caller
already maintains, so the evidence sets are never duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.types import ERROR_DTYPE, FaultMode
from repro.predict.errors import PredictError
from repro.synth.het import HET_DTYPE

#: Version of the feature vector layout.  Models record it; scoring a
#: model against a different version is a hard exit-2 error.
FEATURE_SCHEMA_VERSION = 1

#: Horizons, in whole windows, for the CE count features.
HORIZONS_W = (1, 6, 24, 168)

#: Feature vector layout (order is the contract; see DESIGN.md section 15).
FEATURE_NAMES = (
    "ce_w1",            # CEs in the current window
    "ce_w6",            # CEs over the last 6 windows
    "ce_w24",           # CEs over the last 24 windows
    "ce_w168",          # CEs over the last 168 windows (one week)
    "ce_total",         # lifetime CE count
    "log_ce_total",     # log1p of the lifetime count (tames storms)
    "active_w24",       # distinct windows with CEs among the last 24
    "age_w",            # windows since the node's first CE
    "gap_w",            # windows since the node's last CE
    "faults",           # live coalescing groups on the node
    "max_uniq_bits",    # max distinct bit identities in any group
    "max_uniq_cols",    # max distinct columns in any group
    "max_uniq_rows",    # max distinct rows in any group
    "max_uniq_banks",   # max distinct banks in any group
    "evolved_faults",   # groups grown beyond one error and one bit
    "nonsingle_modes",  # groups classified as a non-single-bit mode
    "ue_total",         # lifetime non-recoverable HET events
    "ue_w168",          # non-recoverable HET events over the last week
    "dropout_w24",      # fleet sensor dropouts over the last 24 windows
    "dropout_total",    # lifetime fleet sensor dropouts
)

#: Column index per feature name.
FEATURE_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}

_MAX_HORIZON_W = max(HORIZONS_W)


@dataclass(frozen=True)
class FeatureConfig:
    """Knobs of the feature grid (all times in seconds)."""

    #: Width of one counting window; horizons are multiples of this.
    window_s: float = 3600.0
    #: Expected sensor sample cadence for the dropout walk.
    dropout_cadence_s: float = 60.0
    #: A gap of more than this many cadences counts as one dropout.
    dropout_min_gap: int = 5

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "dropout_cadence_s": self.dropout_cadence_s,
            "dropout_min_gap": self.dropout_min_gap,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FeatureConfig":
        return cls(
            window_s=float(d["window_s"]),
            dropout_cadence_s=float(d["dropout_cadence_s"]),
            dropout_min_gap=int(d["dropout_min_gap"]),
        )


class FeatureState:
    """Incremental per-node counters behind the feature vector.

    Fold order within one batch does not matter and batch boundaries do
    not matter: every counter is a pure function of the set of folded
    events.  ``watermark`` tracks the latest folded event time and is the
    default extraction instant for live scoring.
    """

    def __init__(self, config: FeatureConfig | None = None):
        self.config = config or FeatureConfig()
        #: node -> {window -> CE count}
        self._ce: dict[int, dict[int, int]] = {}
        #: node -> lifetime CE count
        self._ce_total: dict[int, int] = {}
        self._first_time: dict[int, float] = {}
        self._last_time: dict[int, float] = {}
        #: node -> {window -> UE count} and node -> lifetime UE count
        self._ue: dict[int, dict[int, int]] = {}
        self._ue_total: dict[int, int] = {}
        #: fleet-wide sensor dropout: {window -> count} and lifetime total
        self._dropout: dict[int, int] = {}
        self.dropout_total = 0
        self._sensor_last: float | None = None
        #: Latest folded CE/HET event time.
        self.watermark: float | None = None

    # ------------------------------------------------------------------
    def _window(self, t: float) -> int:
        return int(np.floor(t / self.config.window_s))

    def _advance(self, t: float) -> None:
        if self.watermark is None or t > self.watermark:
            self.watermark = t

    # ------------------------------------------------------------------
    def fold_errors(self, errors: np.ndarray) -> None:
        """Fold a batch of CE records (any order, any batching)."""
        if errors.dtype != ERROR_DTYPE:
            raise ValueError(f"expected ERROR_DTYPE, got {errors.dtype}")
        if errors.size == 0:
            return
        nodes = errors["node"].astype(np.int64)
        times = errors["time"].astype(np.float64)
        wins = np.floor(times / self.config.window_s).astype(np.int64)

        # Per-(node, window) counts in one vectorised pass.
        order = np.lexsort((wins, nodes))
        sn, sw = nodes[order], wins[order]
        seg = np.ones(sn.size, dtype=bool)
        seg[1:] = (sn[1:] != sn[:-1]) | (sw[1:] != sw[:-1])
        starts = np.flatnonzero(seg)
        counts = np.diff(np.append(starts, sn.size))
        for node, win, c in zip(
            sn[starts].tolist(), sw[starts].tolist(), counts.tolist()
        ):
            d = self._ce.get(node)
            if d is None:
                d = self._ce[node] = {}
            d[win] = d.get(win, 0) + c

        # Per-node first/last times and totals.
        order = np.lexsort((times, nodes))
        sn, st = nodes[order], times[order]
        seg = np.ones(sn.size, dtype=bool)
        seg[1:] = sn[1:] != sn[:-1]
        starts = np.flatnonzero(seg)
        ends = np.append(starts[1:], sn.size) - 1
        totals = np.diff(np.append(starts, sn.size))
        for node, tmin, tmax, c in zip(
            sn[starts].tolist(), st[starts].tolist(),
            st[ends].tolist(), totals.tolist(),
        ):
            self._ce_total[node] = self._ce_total.get(node, 0) + c
            prev = self._first_time.get(node)
            if prev is None or tmin < prev:
                self._first_time[node] = tmin
            prev = self._last_time.get(node)
            if prev is None or tmax > prev:
                self._last_time[node] = tmax
        self._advance(float(times.max()))

    def fold_het(self, het: np.ndarray) -> None:
        """Fold a batch of HET records; only non-recoverable ones count."""
        if het.dtype != HET_DTYPE:
            raise ValueError(f"expected HET_DTYPE, got {het.dtype}")
        if het.size == 0:
            return
        self._advance(float(het["time"].max()))
        ue = het[het["non_recoverable"]]
        for node, t in zip(ue["node"].tolist(), ue["time"].tolist()):
            node = int(node)
            win = self._window(t)
            d = self._ue.get(node)
            if d is None:
                d = self._ue[node] = {}
            d[win] = d.get(win, 0) + 1
            self._ue_total[node] = self._ue_total.get(node, 0) + 1

    def observe_sensor_times(self, times: np.ndarray) -> None:
        """Walk fleet sensor sample times, counting cadence dropouts.

        Mirrors the PR-5 ``sensor_dropout`` alert rule: a gap longer than
        ``dropout_min_gap`` cadences between consecutive samples counts
        as one dropout, attributed to the window of the gap's end.
        Sensor ticks do not advance the event watermark.
        """
        if len(times) == 0:
            return
        limit = self.config.dropout_min_gap * self.config.dropout_cadence_s
        prev = self._sensor_last
        for t in np.asarray(times, dtype=np.float64).tolist():
            if prev is not None and t - prev > limit:
                win = self._window(t)
                self._dropout[win] = self._dropout.get(win, 0) + 1
                self.dropout_total += 1
            prev = t
        self._sensor_last = prev

    # ------------------------------------------------------------------
    @property
    def nodes_seen(self) -> list[int]:
        """Nodes with at least one folded CE, ascending."""
        return sorted(self._ce)

    def _node_groups(self, coalescer) -> dict[int, list[tuple]]:
        out: dict[int, list[tuple]] = {}
        for key in coalescer._groups:
            out.setdefault(int(key[0]), []).append(key)
        return out

    def extract(
        self,
        nodes,
        coalescer=None,
        at: float | None = None,
    ) -> np.ndarray:
        """Feature matrix ``(len(nodes), len(FEATURE_NAMES))`` at ``at``.

        ``at`` defaults to the watermark; ``coalescer`` supplies the
        spread/mode features (zeros when omitted).  Only events already
        folded participate -- the caller is responsible for folding
        nothing past the cut when building training data.
        """
        if at is None:
            at = self.watermark
        if at is None:
            raise PredictError(
                "feature extraction needs an explicit time: no events "
                "folded yet; hint: pass at= or fold a batch first"
            )
        W = self._window(at)
        n = len(nodes)
        X = np.zeros((n, len(FEATURE_NAMES)), dtype=np.float64)

        # Fleet-wide dropout features are shared by every row.
        drop24 = sum(
            c for w, c in self._dropout.items() if 0 <= W - w < 24
        )
        X[:, FEATURE_INDEX["dropout_w24"]] = drop24
        X[:, FEATURE_INDEX["dropout_total"]] = self.dropout_total

        groups_by_node = (
            self._node_groups(coalescer) if coalescer is not None else {}
        )
        # One classification call across all requested nodes' groups.
        all_keys = [
            k for node in nodes for k in groups_by_node.get(int(node), ())
        ]
        modes = (
            coalescer.classify_keys(all_keys)
            if coalescer is not None and all_keys
            else {}
        )

        for i, node in enumerate(nodes):
            node = int(node)
            row = X[i]
            d = self._ce.get(node)
            if d:
                totals = dict.fromkeys(HORIZONS_W, 0)
                active24 = 0
                for w, c in d.items():
                    delta = W - w
                    if delta < 0:
                        continue  # events past the extraction instant
                    for h in HORIZONS_W:
                        if delta < h:
                            totals[h] += c
                    if delta < 24:
                        active24 += 1
                row[FEATURE_INDEX["ce_w1"]] = totals[1]
                row[FEATURE_INDEX["ce_w6"]] = totals[6]
                row[FEATURE_INDEX["ce_w24"]] = totals[24]
                row[FEATURE_INDEX["ce_w168"]] = totals[168]
                row[FEATURE_INDEX["active_w24"]] = active24
                total = self._ce_total[node]
                row[FEATURE_INDEX["ce_total"]] = total
                row[FEATURE_INDEX["log_ce_total"]] = np.log1p(float(total))
                row[FEATURE_INDEX["age_w"]] = W - self._window(
                    self._first_time[node]
                )
                row[FEATURE_INDEX["gap_w"]] = W - self._window(
                    self._last_time[node]
                )

            keys = groups_by_node.get(node)
            if keys:
                row[FEATURE_INDEX["faults"]] = len(keys)
                gs = [coalescer._groups[k] for k in keys]
                row[FEATURE_INDEX["max_uniq_bits"]] = max(
                    len(g.bits) for g in gs
                )
                row[FEATURE_INDEX["max_uniq_cols"]] = max(
                    len(g.cols) for g in gs
                )
                row[FEATURE_INDEX["max_uniq_rows"]] = max(
                    len(g.rows) for g in gs
                )
                row[FEATURE_INDEX["max_uniq_banks"]] = max(
                    len(g.banks) for g in gs
                )
                row[FEATURE_INDEX["evolved_faults"]] = sum(
                    1 for g in gs if g.n > 1 and len(g.bits) > 1
                )
                row[FEATURE_INDEX["nonsingle_modes"]] = sum(
                    1 for k in keys
                    if modes[k] not in (
                        FaultMode.SINGLE_BIT, FaultMode.UNATTRIBUTED
                    )
                )

            ud = self._ue.get(node)
            if ud:
                row[FEATURE_INDEX["ue_total"]] = self._ue_total[node]
                row[FEATURE_INDEX["ue_w168"]] = sum(
                    c for w, c in ud.items() if 0 <= W - w < 168
                )
        return X

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "ce": [
                [node, sorted(self._ce[node].items())]
                for node in sorted(self._ce)
            ],
            "ce_total": sorted(self._ce_total.items()),
            "first_time": sorted(self._first_time.items()),
            "last_time": sorted(self._last_time.items()),
            "ue": [
                [node, sorted(self._ue[node].items())]
                for node in sorted(self._ue)
            ],
            "ue_total": sorted(self._ue_total.items()),
            "dropout": sorted(self._dropout.items()),
            "dropout_total": self.dropout_total,
            "sensor_last": self._sensor_last,
            "watermark": self.watermark,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FeatureState":
        self = cls(FeatureConfig.from_dict(state["config"]))
        self._ce = {
            int(node): {int(w): int(c) for w, c in wins}
            for node, wins in state["ce"]
        }
        self._ce_total = {int(n): int(c) for n, c in state["ce_total"]}
        self._first_time = {
            int(n): float(t) for n, t in state["first_time"]
        }
        self._last_time = {int(n): float(t) for n, t in state["last_time"]}
        self._ue = {
            int(node): {int(w): int(c) for w, c in wins}
            for node, wins in state["ue"]
        }
        self._ue_total = {int(n): int(c) for n, c in state["ue_total"]}
        self._dropout = {int(w): int(c) for w, c in state["dropout"]}
        self.dropout_total = int(state["dropout_total"])
        self._sensor_last = (
            None if state["sensor_last"] is None
            else float(state["sensor_last"])
        )
        self.watermark = (
            None if state["watermark"] is None else float(state["watermark"])
        )
        return self
