"""Train / evaluate orchestration and the eval report.

The protocol: train on one set of campaign seeds, evaluate on a
*disjoint* held-out set drawn from the same hazard-linked training
distribution, and always report the trivial rate-threshold baseline
(rank nodes by their 24-hour CE count) next to the model -- the
acceptance gate is the model beating that baseline on held-out AUC and
recall at the target false-positive rate.

The eval report is a JSON document validated by
``schemas/predict.schema.json``; CI's predict-smoke job regenerates it
and gates on the minimum-AUC / recall-at-fixed-FPR floors.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.predict.dataset import (
    Dataset,
    DatasetConfig,
    build_seed_datasets,
)
from repro.predict.errors import PredictError
from repro.predict.features import FEATURE_INDEX
from repro.predict.metrics import (
    auc,
    lead_time_curve,
    precision_recall,
    recall_at_fpr,
)
from repro.predict.model import Model, fit

#: Report schema version (``schemas/predict.schema.json``).
REPORT_SCHEMA_VERSION = 1

#: Default seed split: disjoint by construction, documented in
#: EXPERIMENTS.md so the committed eval report is reproducible.
TRAIN_SEEDS = (101, 102, 103)
EVAL_SEEDS = (201, 202)


def default_geometry() -> dict:
    """The Astra fleet geometry models are stamped with."""
    topo = AstraTopology()
    node = NodeConfig()
    return {
        "n_nodes": topo.n_nodes,
        "nodes_per_rack": topo.nodes_per_rack,
        "n_slots": node.dimms_per_node,
    }


def baseline_scores(X: np.ndarray) -> np.ndarray:
    """The trivial rate-threshold competitor: 24h CE count per row."""
    return np.asarray(X, dtype=np.float64)[:, FEATURE_INDEX["ce_w24"]]


def _split_stats(ds: Dataset, seeds) -> dict:
    return {
        "seeds": [int(s) for s in seeds],
        "rows": ds.n_rows,
        "positives": ds.n_positive,
        "unseeable": int(ds.unseeable),
    }


def evaluate(model: Model, ds: Dataset, target_fpr: float) -> dict:
    """Held-out metrics for the model and the rate baseline."""
    scores = model.score(ds.X)
    base = baseline_scores(ds.X)
    precision, recall = precision_recall(ds.y, scores, model.threshold)
    return {
        "model": {
            "auc": auc(ds.y, scores),
            "recall_at_fpr": recall_at_fpr(ds.y, scores, target_fpr),
            "precision_at_threshold": precision,
            "recall_at_threshold": recall,
            "lead_curve": lead_time_curve(
                ds.y, scores, ds.lead_available, model.threshold
            ),
        },
        "baseline": {
            "auc": auc(ds.y, base),
            "recall_at_fpr": recall_at_fpr(ds.y, base, target_fpr),
        },
    }


def train_and_evaluate(
    train_seeds=TRAIN_SEEDS,
    eval_seeds=EVAL_SEEDS,
    scale: float = 0.02,
    config: DatasetConfig | None = None,
    jobs: int = 0,
    target_fpr: float = 0.01,
) -> tuple[Model, dict]:
    """Full protocol; returns ``(model, eval report)``."""
    config = config or DatasetConfig()
    overlap = set(map(int, train_seeds)) & set(map(int, eval_seeds))
    if overlap:
        raise PredictError(
            f"train/eval seeds overlap on {sorted(overlap)}; hint: "
            f"evaluation is only honest on campaigns the model never saw"
        )
    with obs.span("predict.dataset", transient=True):
        train_ds = build_seed_datasets(train_seeds, scale, config, jobs)
        eval_ds = build_seed_datasets(eval_seeds, scale, config, jobs)
    obs.count("predict.train_rows", train_ds.n_rows)
    obs.count("predict.eval_rows", eval_ds.n_rows)

    with obs.span("predict.fit", transient=True):
        model = fit(
            train_ds.X,
            train_ds.y,
            geometry=default_geometry(),
            window_s=config.feature.window_s,
            target_fpr=target_fpr,
            trained={
                "train_seeds": [int(s) for s in train_seeds],
                "eval_seeds": [int(s) for s in eval_seeds],
                "scale": float(scale),
                "dataset": config.to_dict(),
                "target_fpr": float(target_fpr),
            },
        )
    with obs.span("predict.evaluate", transient=True):
        results = evaluate(model, eval_ds, target_fpr)

    report = {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "predict-eval",
        "model_id": model.model_id,
        "target_fpr": float(target_fpr),
        "scale": float(scale),
        "config": config.to_dict(),
        "train": _split_stats(train_ds, train_seeds),
        "eval": _split_stats(eval_ds, eval_seeds),
        **results,
    }
    return model, report
