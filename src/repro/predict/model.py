"""Zero-dependency calibrated logistic regression.

Training is deterministic full-batch gradient descent in float64 --
fixed iteration count, fixed learning rate, zero initialisation, no
randomness anywhere -- so retraining on the same dataset reproduces the
model byte-for-byte.  Raw probabilities are then passed through an
isotonic (pool-adjacent-violators) step function fitted on the training
scores, which repairs the over-confidence a mis-specified linear model
shows on heavy-tailed count features without touching the ranking.

The on-disk artifact is a single JSON file whose ``crc`` field is the
CRC-32C of the canonical payload (sorted keys, compact separators) --
the same guard the rollup snapshots use -- and whose ``model_id`` is
that checksum rendered in hex.  The loader refuses damaged files, wrong
schema versions, and foreign feature layouts with found/expected + hint
errors; scoring refuses node ids outside the recorded fleet geometry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.logs.integrity import crc32c
from repro.predict.errors import PredictError, mismatch
from repro.predict.features import FEATURE_NAMES, FEATURE_SCHEMA_VERSION

#: Version of the artifact layout itself.
MODEL_SCHEMA_VERSION = 1

#: Gradient-descent hyperparameters (part of the determinism contract).
_LEARNING_RATE = 0.5
_ITERATIONS = 500
_L2 = 1e-3


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _pav(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Pool-adjacent-violators: the non-decreasing weighted fit."""
    n = values.size
    fitted = values.astype(np.float64).copy()
    w = weights.astype(np.float64).copy()
    # Blocks as (start, mean, weight); merge while decreasing.
    starts = [0]
    means = [fitted[0]] if n else []
    wsum = [w[0]] if n else []
    for i in range(1, n):
        starts.append(i)
        means.append(fitted[i])
        wsum.append(w[i])
        while len(means) > 1 and means[-2] >= means[-1]:
            total = wsum[-2] + wsum[-1]
            merged = (means[-2] * wsum[-2] + means[-1] * wsum[-1]) / total
            starts.pop()
            means.pop()
            wsum.pop()
            means[-1] = merged
            wsum[-1] = total
    out = np.empty(n, dtype=np.float64)
    bounds = starts + [n]
    for k in range(len(means)):
        out[bounds[k]:bounds[k + 1]] = means[k]
    return out


@dataclass
class Model:
    """A trained, calibrated scorer plus its provenance."""

    mu: np.ndarray          # feature means (standardisation)
    sigma: np.ndarray       # feature stds, zeros replaced by 1
    w: np.ndarray           # logistic weights
    b: float                # intercept
    cal_x: np.ndarray       # isotonic breakpoints (raw probabilities)
    cal_y: np.ndarray       # calibrated probability per breakpoint
    threshold: float        # alerting operating point
    geometry: dict          # {"n_nodes", "nodes_per_rack", "n_slots"}
    window_s: float
    feature_schema_version: int = FEATURE_SCHEMA_VERSION
    trained: dict = field(default_factory=dict)

    @cached_property
    def model_id(self) -> str:
        """Content hash of the artifact (hex CRC-32C).

        Cached: the payload never mutates after fit/load, and the serve
        hot path stamps this id on every response.
        """
        return f"{crc32c(self._canonical()):08x}"

    # ------------------------------------------------------------------
    def score(self, X: np.ndarray) -> np.ndarray:
        """Calibrated failure probability per row."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.w.size:
            raise mismatch(
                "feature width", X.shape[1] if X.ndim == 2 else X.shape,
                self.w.size,
                "extract features with the same FEATURE_NAMES layout the "
                "model was trained on",
            )
        z = (X - self.mu) / self.sigma
        raw = _sigmoid(z @ self.w + self.b)
        idx = np.searchsorted(self.cal_x, raw, side="right") - 1
        return self.cal_y[np.clip(idx, 0, self.cal_y.size - 1)]

    def check_nodes(self, nodes) -> None:
        """Refuse node ids outside the fleet the model was trained on."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (
            int(nodes.max()) >= self.geometry["n_nodes"] or int(nodes.min()) < 0
        ):
            raise mismatch(
                "fleet geometry",
                f"node id {int(nodes.max())}",
                f"< {self.geometry['n_nodes']} nodes",
                "the model was trained on a different fleet; retrain "
                "with `repro predict train` on this topology",
            )

    # ------------------------------------------------------------------
    def _payload(self) -> dict:
        return {
            "schema": MODEL_SCHEMA_VERSION,
            "kind": "predict-model",
            "feature_schema_version": self.feature_schema_version,
            "feature_names": list(FEATURE_NAMES),
            "window_s": self.window_s,
            "geometry": self.geometry,
            "mu": self.mu.tolist(),
            "sigma": self.sigma.tolist(),
            "w": self.w.tolist(),
            "b": self.b,
            "cal_x": self.cal_x.tolist(),
            "cal_y": self.cal_y.tolist(),
            "threshold": self.threshold,
            "trained": self.trained,
        }

    def _canonical(self) -> bytes:
        return json.dumps(
            self._payload(), sort_keys=True, separators=(",", ":")
        ).encode()

    def save(self, path) -> str:
        """Write the artifact atomically; returns the model_id."""
        path = Path(path)
        payload = self._payload()
        payload["crc"] = crc32c(self._canonical())
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return f"{payload['crc']:08x}"

    @classmethod
    def load(cls, path) -> "Model":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PredictError(
                f"cannot read model {path}: {exc}; hint: retrain with "
                f"`repro predict train` or restore the artifact"
            ) from exc
        if not isinstance(payload, dict) or payload.get("kind") != "predict-model":
            raise mismatch(
                "artifact kind", payload.get("kind") if isinstance(payload, dict) else type(payload).__name__,
                "predict-model",
                f"{path} is not a predictor artifact",
            )
        if payload.get("schema") != MODEL_SCHEMA_VERSION:
            raise mismatch(
                "model schema version", payload.get("schema"),
                MODEL_SCHEMA_VERSION,
                "retrain with `repro predict train` on this version",
            )
        crc = payload.pop("crc", None)
        model = cls(
            mu=np.asarray(payload["mu"], dtype=np.float64),
            sigma=np.asarray(payload["sigma"], dtype=np.float64),
            w=np.asarray(payload["w"], dtype=np.float64),
            b=float(payload["b"]),
            cal_x=np.asarray(payload["cal_x"], dtype=np.float64),
            cal_y=np.asarray(payload["cal_y"], dtype=np.float64),
            threshold=float(payload["threshold"]),
            geometry=dict(payload["geometry"]),
            window_s=float(payload["window_s"]),
            feature_schema_version=int(payload["feature_schema_version"]),
            trained=dict(payload["trained"]),
        )
        found = crc32c(model._canonical())
        if crc != found:
            raise PredictError(
                f"model {path} failed its integrity check: stored CRC "
                f"{crc!r}, computed {found!r}; hint: the artifact is "
                f"damaged -- retrain with `repro predict train` or "
                f"restore it from a good copy"
            )
        if model.feature_schema_version != FEATURE_SCHEMA_VERSION:
            raise mismatch(
                "feature schema version", model.feature_schema_version,
                FEATURE_SCHEMA_VERSION,
                "the model predates this feature layout; retrain with "
                "`repro predict train`",
            )
        if payload["feature_names"] != list(FEATURE_NAMES):
            raise mismatch(
                "feature names", payload["feature_names"],
                list(FEATURE_NAMES),
                "the model predates this feature layout; retrain with "
                "`repro predict train`",
            )
        return model


def fit(
    X: np.ndarray,
    y: np.ndarray,
    geometry: dict,
    window_s: float,
    target_fpr: float = 0.01,
    trained: dict | None = None,
) -> Model:
    """Train + calibrate on ``(X, y)``; fully deterministic."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=bool)
    if X.ndim != 2 or X.shape[0] != y.size:
        raise PredictError(
            f"shape mismatch: X {X.shape} vs y {y.shape}; hint: build "
            f"the dataset with repro.predict.dataset"
        )
    if y.all() or not y.any():
        raise PredictError(
            f"cannot fit on a single-class dataset ({int(y.sum())} of "
            f"{y.size} positive); hint: add campaigns or widen the "
            f"label horizon"
        )
    mu = X.mean(axis=0)
    sigma = X.std(axis=0)
    sigma = np.where(sigma == 0.0, 1.0, sigma)
    Z = (X - mu) / sigma
    yf = y.astype(np.float64)

    w = np.zeros(X.shape[1], dtype=np.float64)
    b = 0.0
    n = float(y.size)
    for _ in range(_ITERATIONS):
        p = _sigmoid(Z @ w + b)
        err = p - yf
        w -= _LEARNING_RATE * ((Z.T @ err) / n + _L2 * w)
        b -= _LEARNING_RATE * float(err.mean())

    raw = _sigmoid(Z @ w + b)
    order = np.argsort(raw, kind="stable")
    cal_fit = _pav(yf[order], np.ones(y.size))
    # Collapse to breakpoints: one (raw score, calibrated value) pair
    # per distinct raw score, keeping the last fitted value of each tie
    # run -- the step function stays monotone because the full PAV fit
    # is non-decreasing.
    raw_sorted = raw[order]
    keep = np.ones(raw_sorted.size, dtype=bool)
    keep[:-1] = raw_sorted[1:] != raw_sorted[:-1]
    cal_x = raw_sorted[keep]
    cal_y = cal_fit[keep]

    model = Model(
        mu=mu, sigma=sigma, w=w, b=float(b),
        cal_x=cal_x, cal_y=cal_y,
        threshold=0.5, geometry=dict(geometry), window_s=float(window_s),
        trained=dict(trained or {}),
    )
    # Operating point: calibrated-score threshold at the target FPR on
    # the training rows (the eval report re-measures it held-out).
    from repro.predict.metrics import threshold_at_fpr

    model.threshold = float(
        threshold_at_fpr(y, model.score(X), target_fpr)
    )
    return model
