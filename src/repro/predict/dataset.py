"""Lead-time-aware training data from synthetic campaigns.

The labeling protocol is the honesty contract of the whole subsystem
(the property tests in ``tests/predict`` enforce it):

- pick a grid of **cut** instants inside the campaign;
- **features** at a cut see only events with ``time <= cut`` -- the
  stream is folded incrementally up to the cut and nothing further;
- a node is **positive** iff a non-recoverable HET event hits it inside
  ``(cut + lead_s, cut + lead_s + horizon_s]``.  The ``lead_s`` gap is
  dead time: failures there are neither featurised nor labeled, so a
  positive prediction is always actionable at least ``lead_s`` ahead;
- the sample universe at a cut is the nodes with at least one CE by the
  cut (a predictor can only rank nodes it has seen); failures on silent
  nodes are tallied as ``unseeable`` rather than silently dropped.

Train/eval separation is **by campaign seed**, never by row: rows from
one campaign share fault structure, so a row-level split would leak.

The stock :class:`~repro.synth.campaign.CampaignGenerator` draws DUE
nodes uniformly (the paper only reports totals), which carries no
learnable signal -- so training campaigns opt into the generator's
``due_hazard`` linkage and a boosted DUE rate / widened HET recording
window via :func:`training_calibration`.  Everything stays seeded and
deterministic; evaluation campaigns use held-out seeds of the *same*
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import DAY_S
from repro.predict.errors import PredictError
from repro.predict.features import FeatureConfig, FeatureState
from repro.stream.online_coalesce import OnlineCoalescer
from repro.synth.campaign import Campaign, CampaignGenerator
from repro.synth.config import PaperCalibration

#: DUE-rate multiplier for training campaigns: the paper's 0.00948
#: DUEs/DIMM-year over a 22-day recording window yields a handful of
#: failures per small-scale campaign -- far too few to fit or evaluate
#: against.  The boost trades calibration realism for label volume,
#: which is the right trade for a *training distribution*.
TRAIN_DUE_BOOST = 50.0

#: Fraction of training-campaign DUEs linked to the fault population.
TRAIN_DUE_HAZARD = 0.85


def training_calibration(
    base: PaperCalibration | None = None,
    due_boost: float = TRAIN_DUE_BOOST,
) -> PaperCalibration:
    """The stock calibration with prediction-friendly label volume.

    Boosts the DUE rate and opens the HET recording window 30 days into
    the CE window (instead of the paper's Aug 23 firmware date), so
    labels span months rather than three weeks.
    """
    cal = base or PaperCalibration()
    return replace(
        cal,
        due_per_dimm_year=cal.due_per_dimm_year * due_boost,
        het_recording_start=cal.error_window[0] + 30.0 * DAY_S,
    )


def make_training_campaign(
    seed: int,
    scale: float,
    due_hazard: float = TRAIN_DUE_HAZARD,
    due_boost: float = TRAIN_DUE_BOOST,
) -> Campaign:
    """One hazard-linked campaign of the training distribution."""
    return CampaignGenerator(
        seed=seed,
        scale=scale,
        calibration=training_calibration(due_boost=due_boost),
        due_hazard=due_hazard,
    ).generate()


@dataclass(frozen=True)
class DatasetConfig:
    """Labeling-protocol knobs (all times in seconds)."""

    #: Number of cut instants per campaign.
    n_cuts: int = 16
    #: Minimum actionable lead time (the dead gap after each cut).
    lead_s: float = 3600.0
    #: Length of the label window after the lead gap.
    horizon_s: float = 7.0 * DAY_S
    feature: FeatureConfig = FeatureConfig()

    def to_dict(self) -> dict:
        return {
            "n_cuts": self.n_cuts,
            "lead_s": self.lead_s,
            "horizon_s": self.horizon_s,
            "feature": self.feature.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DatasetConfig":
        return cls(
            n_cuts=int(d["n_cuts"]),
            lead_s=float(d["lead_s"]),
            horizon_s=float(d["horizon_s"]),
            feature=FeatureConfig.from_dict(d["feature"]),
        )


@dataclass
class Dataset:
    """Feature rows plus labels and row provenance."""

    X: np.ndarray          # (n, n_features) float64
    y: np.ndarray          # (n,) bool
    node: np.ndarray       # (n,) int32
    cut: np.ndarray        # (n,) float64
    seed: np.ndarray       # (n,) int32 campaign seed per row
    #: Seconds from the cut to the first failure in the label window;
    #: -1.0 on negative rows.  Drives the lead-time recall curve.
    lead_available: np.ndarray  # (n,) float64
    #: Failures that fell in a label window on a node with no CE history
    #: by the cut -- invisible to any CE-history predictor.
    unseeable: int = 0

    @property
    def n_rows(self) -> int:
        return int(self.y.size)

    @property
    def n_positive(self) -> int:
        return int(self.y.sum())


def concat_datasets(parts: list) -> Dataset:
    """Concatenate per-campaign datasets in the given order."""
    parts = [p for p in parts if p is not None]
    if not parts:
        raise PredictError(
            "no datasets to concatenate; hint: pass at least one "
            "campaign seed"
        )
    return Dataset(
        X=np.concatenate([p.X for p in parts]),
        y=np.concatenate([p.y for p in parts]),
        node=np.concatenate([p.node for p in parts]),
        cut=np.concatenate([p.cut for p in parts]),
        seed=np.concatenate([p.seed for p in parts]),
        lead_available=np.concatenate([p.lead_available for p in parts]),
        unseeable=sum(p.unseeable for p in parts),
    )


def cut_grid(campaign: Campaign, config: DatasetConfig) -> np.ndarray:
    """Evenly spaced cut instants whose label windows are observable.

    Labels come from HET records, so every label window must sit inside
    the HET recording window; the last cut leaves room for the full
    ``lead + horizon``.
    """
    cal = campaign.calibration
    t_end = cal.error_window[1]
    first = cal.het_recording_start
    last = t_end - config.lead_s - config.horizon_s
    if last <= first:
        raise PredictError(
            f"label protocol does not fit the campaign: cuts need "
            f"[{first:.0f}, {last:.0f}] but the window is empty; "
            f"hint: shrink lead_s/horizon_s or widen the HET recording "
            f"window (training_calibration does)"
        )
    return np.linspace(first, last, config.n_cuts)


def build_dataset(campaign: Campaign, config: DatasetConfig) -> Dataset:
    """One incremental pass over a campaign, pausing at each cut.

    The errors and HET streams are folded strictly up to each cut
    before extraction -- the same code path the online scorer uses, so
    offline training rows and online scoring rows are byte-identical at
    equal instants.
    """
    cuts = cut_grid(campaign, config)
    state = FeatureState(config.feature)
    coalescer = OnlineCoalescer()

    errors = campaign.errors
    het = campaign.het
    e_times = errors["time"]
    h_times = het["time"]
    ue = het[het["non_recoverable"]]
    ue_times = ue["time"]
    ue_nodes = ue["node"].astype(np.int64)

    parts_X, parts_y = [], []
    parts_node, parts_cut, parts_seed, parts_lead = [], [], [], []
    unseeable = 0
    e_ptr = h_ptr = 0
    for cut in cuts.tolist():
        e_to = int(np.searchsorted(e_times, cut, side="right"))
        if e_to > e_ptr:
            state.fold_errors(errors[e_ptr:e_to])
            coalescer.add(errors[e_ptr:e_to])
            e_ptr = e_to
        h_to = int(np.searchsorted(h_times, cut, side="right"))
        if h_to > h_ptr:
            state.fold_het(het[h_ptr:h_to])
            h_ptr = h_to

        nodes = state.nodes_seen
        if not nodes:
            continue
        X = state.extract(nodes, coalescer, at=cut)

        lo, hi = cut + config.lead_s, cut + config.lead_s + config.horizon_s
        in_window = (ue_times > lo) & (ue_times <= hi)
        window_nodes = ue_nodes[in_window]
        window_times = ue_times[in_window]
        first_failure: dict[int, float] = {}
        for node, t in zip(window_nodes.tolist(), window_times.tolist()):
            if node not in first_failure or t < first_failure[node]:
                first_failure[node] = t

        node_arr = np.asarray(nodes, dtype=np.int32)
        y = np.array([n in first_failure for n in nodes], dtype=bool)
        lead = np.array(
            [
                first_failure[n] - cut if n in first_failure else -1.0
                for n in nodes
            ],
            dtype=np.float64,
        )
        unseeable += len(set(first_failure) - set(nodes))

        parts_X.append(X)
        parts_y.append(y)
        parts_node.append(node_arr)
        parts_cut.append(np.full(node_arr.size, cut, dtype=np.float64))
        parts_seed.append(
            np.full(node_arr.size, campaign.seed, dtype=np.int32)
        )
        parts_lead.append(lead)

    if not parts_X:
        raise PredictError(
            "campaign produced no feature rows: no node saw a CE before "
            "any cut; hint: raise the scale or widen the cut grid"
        )
    return Dataset(
        X=np.concatenate(parts_X),
        y=np.concatenate(parts_y),
        node=np.concatenate(parts_node),
        cut=np.concatenate(parts_cut),
        seed=np.concatenate(parts_seed),
        lead_available=np.concatenate(parts_lead),
        unseeable=unseeable,
    )


def _build_one(task: tuple) -> Dataset:
    """Worker: generate one training campaign and featurise it.

    Module-level so :func:`repro.parallel.executor.map_tasks` can pickle
    it by name into pool workers.
    """
    seed, scale, config_dict, due_hazard, due_boost = task
    campaign = make_training_campaign(
        seed, scale, due_hazard=due_hazard, due_boost=due_boost
    )
    return build_dataset(campaign, DatasetConfig.from_dict(config_dict))


def build_seed_datasets(
    seeds,
    scale: float,
    config: DatasetConfig | None = None,
    jobs: int = 0,
    due_hazard: float = TRAIN_DUE_HAZARD,
    due_boost: float = TRAIN_DUE_BOOST,
) -> Dataset:
    """Datasets for many campaign seeds, concatenated in seed order.

    ``jobs`` fans campaign generation + featurisation out over a
    process pool; results come back in task order, so the concatenated
    dataset is byte-identical for any ``jobs`` value (the ``--jobs
    {0,4}`` identity test).
    """
    from repro.parallel.executor import map_tasks

    config = config or DatasetConfig()
    tasks = [
        (int(s), float(scale), config.to_dict(), due_hazard, due_boost)
        for s in seeds
    ]
    return concat_datasets(map_tasks(_build_one, tasks, jobs))
