"""Evaluation metrics with brute-force-checkable definitions.

Every function here has a deliberately simple contract so the test
suite can re-derive it with an O(n^2) reference on a downsampled
campaign and demand exact equality:

- :func:`auc` is the rank-sum (Mann-Whitney) statistic with average
  ranks over ties -- the probability a random positive outscores a
  random negative, ties counting half;
- :func:`threshold_at_fpr` picks the smallest observed score value
  whose false-positive rate (``neg >= t``) stays within the budget,
  so "recall at 1% FPR" never silently overspends the budget on ties;
- :func:`lead_time_curve` reports, per required lead, the fraction of
  positives that were flagged *and* whose failure was at least that far
  away -- the operator's "how much warning do I actually get" curve.
"""

from __future__ import annotations

import numpy as np

from repro.predict.errors import PredictError


def _check(y: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    if y.shape != scores.shape or y.ndim != 1:
        raise PredictError(
            f"labels {y.shape} and scores {scores.shape} must be equal "
            f"1-D shapes; hint: score the same rows you labeled"
        )
    return y, scores


def auc(y, scores) -> float:
    """Area under the ROC curve (rank statistic, average-tie ranks)."""
    y, scores = _check(y, scores)
    n_pos = int(y.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise PredictError(
            f"AUC undefined: {n_pos} positives / {n_neg} negatives; "
            f"hint: widen the eval campaigns or the label horizon"
        )
    order = np.argsort(scores, kind="stable")
    sorted_scores = scores[order]
    ranks = np.empty(y.size, dtype=np.float64)
    i = 0
    while i < y.size:
        j = i
        while j < y.size and sorted_scores[j] == sorted_scores[i]:
            j += 1
        ranks[order[i:j]] = 0.5 * (i + j + 1)  # average of ranks i+1..j
        i = j
    rank_sum = float(ranks[y].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def threshold_at_fpr(y, scores, fpr: float) -> float:
    """Smallest observed score keeping ``mean(neg >= t) <= fpr``.

    Falls back to just above the maximum score when even the strictest
    observed threshold overspends (e.g. heavy negative ties).
    """
    y, scores = _check(y, scores)
    neg = scores[~y]
    if neg.size == 0:
        raise PredictError(
            "FPR threshold undefined without negatives; hint: check the "
            "label protocol"
        )
    candidates = np.unique(scores)[::-1]  # descending
    best = None
    for t in candidates.tolist():
        if float(np.mean(neg >= t)) <= fpr:
            best = t
        else:
            break  # FPR only grows as the threshold drops
    if best is None:
        return float(np.nextafter(candidates[0], np.inf))
    return float(best)


def recall_at_fpr(y, scores, fpr: float = 0.01) -> float:
    """Recall at :func:`threshold_at_fpr`'s operating point."""
    y, scores = _check(y, scores)
    t = threshold_at_fpr(y, scores, fpr)
    pos = scores[y]
    if pos.size == 0:
        raise PredictError(
            "recall undefined without positives; hint: widen the eval "
            "campaigns or the label horizon"
        )
    return float(np.mean(pos >= t))


def precision_recall(y, scores, threshold: float) -> tuple[float, float]:
    """(precision, recall) of ``scores >= threshold``.

    Precision is 1.0 when nothing is flagged (no false alarms were
    raised), keeping the value defined at maximally strict thresholds.
    """
    y, scores = _check(y, scores)
    pred = scores >= threshold
    flagged = int(pred.sum())
    hits = int((pred & y).sum())
    precision = 1.0 if flagged == 0 else hits / flagged
    n_pos = int(y.sum())
    recall = 0.0 if n_pos == 0 else hits / n_pos
    return float(precision), float(recall)


def lead_time_curve(
    y, scores, lead_available, threshold: float, grid_hours=(1, 6, 24, 72, 168)
) -> list[dict]:
    """Fraction of failures flagged with at least each required lead.

    ``lead_available`` is seconds from the feature cut to the failure
    (-1 on negatives, as the dataset builder emits).  Each entry is
    ``{"lead_h": L, "recall": caught-with->=L-lead / all positives}``.
    """
    y, scores = _check(y, scores)
    lead_available = np.asarray(lead_available, dtype=np.float64)
    pred = scores >= threshold
    n_pos = int(y.sum())
    out = []
    for lead_h in grid_hours:
        if n_pos == 0:
            recall = 0.0
        else:
            caught = pred & y & (lead_available >= lead_h * 3600.0)
            recall = float(caught.sum()) / n_pos
        out.append({"lead_h": int(lead_h), "recall": recall})
    return out
