"""Scoring: one-shot over a campaign, or batch-by-batch in the stream.

Both paths share :class:`~repro.predict.features.FeatureState`, so a
node's score at a given instant is the same number whether it was
computed offline after the fact or live as the records streamed in --
the differential tests hold the two byte-identical.

:class:`OnlineScorer` is the piece the stream pipeline mounts behind
``repro stream --predict``: after each CE batch folds into the
coalescer, the nodes that batch touched are re-scored at the current
event watermark and any score at or above the model's operating point
raises a ``predicted_failure`` alert through the existing exactly-once
sink.  A per-node re-arm window (event-time based, so kill/resume
cannot double-fire) keeps a smouldering node from alerting on every
batch.
"""

from __future__ import annotations

import numpy as np

from repro._util import DAY_S
from repro.predict.features import FeatureConfig, FeatureState
from repro.predict.model import Model

#: Chunk size for parallel one-shot scoring.
_CHUNK_NODES = 256

#: Module-global context for pool workers (fork inherits it); tasks
#: themselves stay tiny (node-id lists).
_CTX: tuple | None = None


def _score_chunk(nodes: list) -> np.ndarray:
    state, coalescer, model, at = _CTX
    return model.score(state.extract(nodes, coalescer, at=at))


def score_records(
    errors: np.ndarray,
    het: np.ndarray,
    model: Model,
    at: float | None = None,
    jobs: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Score every CE-active node of a record set at instant ``at``.

    Returns ``(nodes, scores)`` with nodes ascending.  ``jobs`` only
    chunks the feature-extraction work; scores are row-independent, so
    the output is byte-identical for any ``jobs`` value.
    """
    global _CTX
    from repro.stream.online_coalesce import OnlineCoalescer
    from repro.parallel.executor import map_tasks

    config = FeatureConfig(window_s=model.window_s)
    state = FeatureState(config)
    coalescer = OnlineCoalescer()
    if at is not None:
        errors = errors[errors["time"] <= at]
        het = het[het["time"] <= at]
    if errors.size:
        state.fold_errors(errors)
        coalescer.add(errors)
    if het.size:
        state.fold_het(het)

    nodes = state.nodes_seen
    if not nodes:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    model.check_nodes(nodes)
    chunks = [
        nodes[i : i + _CHUNK_NODES]
        for i in range(0, len(nodes), _CHUNK_NODES)
    ]
    _CTX = (state, coalescer, model, at)
    try:
        parts = map_tasks(_score_chunk, chunks, jobs)
    finally:
        _CTX = None
    return np.asarray(nodes, dtype=np.int64), np.concatenate(parts)


class OnlineScorer:
    """Live batch scoring + ``predicted_failure`` alerts for the stream."""

    def __init__(
        self,
        model: Model,
        rearm_s: float = DAY_S,
    ):
        self.model = model
        self.rearm_s = float(rearm_s)
        self.state = FeatureState(FeatureConfig(window_s=model.window_s))
        #: node -> re-arm bucket of its last fired alert.
        self._fired: dict[int, int] = {}
        self.scored_batches = 0

    # ------------------------------------------------------------------
    def observe_errors(
        self, errors: np.ndarray, coalescer, batch: int
    ) -> list[dict]:
        """Fold a CE batch, re-score the touched nodes, emit alerts.

        ``coalescer`` is the pipeline's own (already holding this
        batch), so spread features come for free.
        """
        if errors.size == 0:
            return []
        self.state.fold_errors(errors)
        nodes = np.unique(errors["node"]).astype(np.int64)
        self.model.check_nodes(nodes)
        at = self.state.watermark
        scores = self.model.score(
            self.state.extract(nodes.tolist(), coalescer, at=at)
        )
        self.scored_batches += 1
        bucket = int(np.floor(at / self.rearm_s))
        alerts = []
        for node, score in zip(nodes.tolist(), scores.tolist()):
            if score < self.model.threshold:
                continue
            if self._fired.get(node) == bucket:
                continue
            self._fired[node] = bucket
            alerts.append(
                {
                    "rule": "predicted_failure",
                    "time": float(at),
                    "batch": batch,
                    "node": int(node),
                    "detail": {
                        "score": float(score),
                        "threshold": float(self.model.threshold),
                        "model_id": self.model.model_id,
                        "rearm_bucket": bucket,
                    },
                }
            )
        return alerts

    def observe_het(self, het: np.ndarray) -> None:
        """Fold HET records into the UE-history features (no alerts --
        the ``uncorrectable`` rule already covers the event itself)."""
        if het.size:
            self.state.fold_het(het)

    def observe_sensors(self, samples: np.ndarray) -> None:
        if samples.size:
            self.state.observe_sensor_times(np.unique(samples["time"]))

    # -- checkpoint (de)serialisation ----------------------------------
    def to_state(self) -> dict:
        return {
            "model_id": self.model.model_id,
            "rearm_s": self.rearm_s,
            "scored_batches": self.scored_batches,
            "features": self.state.to_state(),
            "fired": sorted(self._fired.items()),
        }

    def restore(self, state: dict) -> None:
        from repro.predict.errors import mismatch

        if state["model_id"] != self.model.model_id:
            raise mismatch(
                "predictor model",
                state["model_id"],
                self.model.model_id,
                "resume with the model the interrupted run was scoring "
                "with, or start over with --no-resume",
            )
        self.rearm_s = float(state["rearm_s"])
        self.scored_batches = int(state["scored_batches"])
        self.state = FeatureState.from_state(state["features"])
        self._fired = {int(n): int(b) for n, b in state["fired"]}
