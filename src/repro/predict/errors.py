"""Typed failures of the prediction subsystem.

Everything user-facing raises :class:`PredictError` with a
``found/expected`` statement plus a recovery hint (the convention PR 9
established for rollup version mismatches), so the CLI can map it to a
clean ``exit 2`` instead of a traceback.
"""

from __future__ import annotations


class PredictError(RuntimeError):
    """A model could not be trained, loaded, or applied."""


def mismatch(what: str, found, expected, hint: str) -> PredictError:
    """Uniform found/expected + hint error text."""
    return PredictError(
        f"{what} mismatch: found {found!r}, expected {expected!r}; "
        f"hint: {hint}"
    )
