"""Incrementally maintained, exactly mergeable rollup cubes.

A :class:`RollupStore` holds fixed-schema NumPy aggregates over a
campaign's error/fault history, sized so that every dashboard/query
question in ROADMAP's "query layer" item is a cube slice, never a log
rescan:

``node_errors``
    int64[n_nodes] -- CE count per node (fig05's per-node totals).
``rack_slot_bucket``
    int64[n_racks, n_slots, n_buckets] -- CE counts by rack x DIMM slot
    x time bucket (fig12's per-rack series, heatmaps, time windows).
``bitpos`` / ``bank``
    int64[73] / int64[129] -- histograms over codeword bit position and
    DRAM bank, with one slot reserved for the unparseable sentinel.
``ce_windows``
    sparse {(node, window) -> count} over epoch-aligned windows of
    ``window_s`` seconds -- the ``ce_rate`` alert's counting domain.
``fault_rack_slot_mode`` / ``fault_mode_bucket`` / ``mode_error_totals``
    fault-level cubes (counts by rack x slot x mode, mode x first-seen
    bucket, and errors attributed per mode -- fig04's totals).
``sensor`` tallies
    BMC sample count plus dropout count/seconds from the same
    high-water-mark walk the ``sensor_dropout`` alert rule performs.

Two invariants make the store safe to maintain online and to shard:

*Additivity.*  Error cubes are updated per batch with pure ``+=`` of
bincounts, so any split of the record stream into batches -- or of the
fleet into per-rack shards -- produces byte-identical cubes after
:meth:`RollupStore.merge`.  Fault cubes are *not* batch-additive (a
group's mode changes as evidence arrives), so they are refreshed from
the coalescer's live fault snapshot via :meth:`RollupStore.set_faults`
at snapshot points; per-shard fault cubes still merge exactly because
coalescing groups never span racks (DESIGN.md section 11).

*Atomic versioned snapshots.*  :meth:`RollupStore.snapshot` reuses the
checkpoint discipline (tmp file, data fsync, ``os.replace``, directory
fsync) for both the immutable ``rollup-NNNNNN.npz`` payload and the
``rollup.json`` manifest that names it, so a reader either loads a
complete previous version or a complete new one -- never torn bytes.
Old versions are pruned only after the manifest stops referencing
them, and readers retry on the resulting (benign) race.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._util import fsync_dir
from repro.faults.types import ERROR_DTYPE, FAULT_DTYPE, FaultMode
from repro.logs.integrity import crc32c

#: Bump on any change to the snapshot payload or manifest layout.
ROLLUP_SCHEMA_VERSION = 1

#: Manifest file naming the current snapshot version (atomic pointer).
MANIFEST_NAME = "rollup.json"

#: Snapshot versions retained after a new one lands (current + previous).
KEEP_VERSIONS = 2

#: Codeword bit positions 0..71 plus one sentinel slot (index 72).
N_BITPOS = 73
#: Bank ids 0..127 at indices 1..128; sentinel/unparseable at index 0.
N_BANKS = 129

_N_MODES = len(FaultMode)
#: Composite (node, window) key base; bounds checked in update().
_CE_KEY_BASE = 1 << 34
_MAX_NODE = 1 << 29


class RollupError(RuntimeError):
    """A rollup cube could not be built, merged, or loaded."""


@dataclass(frozen=True)
class RollupConfig:
    """Cube geometry; two stores merge only if their configs match."""

    #: Nodes per rack (Astra: 18 chassis x 4 nodes, rack-major ids).
    nodes_per_rack: int = 72
    #: DIMM slots per node.
    n_slots: int = 16
    #: Width of the rack/slot time bucket, seconds (default: one day).
    bucket_s: float = 86400.0
    #: Width of the CE-rate window, seconds (the ce_rate alert default).
    window_s: float = 3600.0
    #: Expected BMC sample cadence, seconds.
    dropout_cadence_s: float = 60.0
    #: Gap (in cadences) beyond which sensor silence is a dropout.
    dropout_min_gap: float = 3.0

    def to_dict(self) -> dict:
        return {
            "nodes_per_rack": self.nodes_per_rack,
            "n_slots": self.n_slots,
            "bucket_s": self.bucket_s,
            "window_s": self.window_s,
            "dropout_cadence_s": self.dropout_cadence_s,
            "dropout_min_gap": self.dropout_min_gap,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RollupConfig":
        return cls(
            nodes_per_rack=int(d["nodes_per_rack"]),
            n_slots=int(d["n_slots"]),
            bucket_s=float(d["bucket_s"]),
            window_s=float(d["window_s"]),
            dropout_cadence_s=float(d["dropout_cadence_s"]),
            dropout_min_gap=float(d["dropout_min_gap"]),
        )


class RollupStore:
    """Mergeable rollup cubes with versioned atomic snapshots."""

    def __init__(self, config: RollupConfig | None = None):
        self.config = config or RollupConfig()
        if self.config.nodes_per_rack <= 0 or self.config.n_slots <= 0:
            raise RollupError("nodes_per_rack and n_slots must be positive")
        if self.config.bucket_s <= 0 or self.config.window_s <= 0:
            raise RollupError("bucket_s and window_s must be positive")
        c = self.config
        self.errors_seen = 0
        self.batches = 0
        self.n_faults = 0
        #: Free-text provenance ("batch", "stream", "fleet"); not compared.
        self.source = "batch"
        #: Ingest policy the records came through; informational only.
        self.policy: str | None = None
        self._bucket0: int | None = None
        self.node_errors = np.zeros(0, dtype=np.int64)
        self.rack_slot_bucket = np.zeros((0, c.n_slots, 0), dtype=np.int64)
        self.bitpos = np.zeros(N_BITPOS, dtype=np.int64)
        self.bank = np.zeros(N_BANKS, dtype=np.int64)
        self.fault_rack_slot_mode = np.zeros(
            (0, c.n_slots, _N_MODES), dtype=np.int64
        )
        self.fault_mode_bucket = np.zeros((_N_MODES, 0), dtype=np.int64)
        self.mode_error_totals = np.zeros(_N_MODES, dtype=np.int64)
        self._ce_windows: dict[int, int] = {}
        self.sensor_samples = 0
        self.dropout_count = 0
        self.dropout_seconds = 0.0
        self._sensor_watermark: float | None = None

    # -- extents -------------------------------------------------------
    @property
    def n_racks(self) -> int:
        return self.rack_slot_bucket.shape[0]

    @property
    def n_nodes_seen(self) -> int:
        return self.node_errors.size

    @property
    def n_buckets(self) -> int:
        return self.rack_slot_bucket.shape[2]

    @property
    def bucket0(self) -> int | None:
        return self._bucket0

    def bucket_ids(self) -> np.ndarray:
        """Absolute time-bucket ids covered by the time axis."""
        if self._bucket0 is None:
            return np.zeros(0, dtype=np.int64)
        return self._bucket0 + np.arange(self.n_buckets, dtype=np.int64)

    # -- growth --------------------------------------------------------
    def _grow_nodes(self, max_node: int) -> None:
        npr = self.config.nodes_per_rack
        need = max_node // npr + 1
        if need <= self.n_racks:
            return
        add = need - self.n_racks
        self.node_errors = np.concatenate(
            [self.node_errors, np.zeros(add * npr, dtype=np.int64)]
        )
        self.rack_slot_bucket = np.concatenate(
            [
                self.rack_slot_bucket,
                np.zeros(
                    (add, self.config.n_slots, self.n_buckets),
                    dtype=np.int64,
                ),
            ]
        )
        self.fault_rack_slot_mode = np.concatenate(
            [
                self.fault_rack_slot_mode,
                np.zeros((add, self.config.n_slots, _N_MODES), np.int64),
            ]
        )

    def _grow_time(self, bmin: int, bmax: int) -> None:
        if self._bucket0 is None:
            self._bucket0 = bmin
            nb = bmax - bmin + 1
            self.rack_slot_bucket = np.zeros(
                (self.n_racks, self.config.n_slots, nb), dtype=np.int64
            )
            self.fault_mode_bucket = np.zeros((_N_MODES, nb), np.int64)
            return
        new0 = min(self._bucket0, bmin)
        new_end = max(self._bucket0 + self.n_buckets - 1, bmax)
        left = self._bucket0 - new0
        right = new_end - (self._bucket0 + self.n_buckets - 1)
        if left == 0 and right == 0:
            return
        self.rack_slot_bucket = np.pad(
            self.rack_slot_bucket, ((0, 0), (0, 0), (left, right))
        )
        self.fault_mode_bucket = np.pad(
            self.fault_mode_bucket, ((0, 0), (left, right))
        )
        self._bucket0 = new0

    # -- incremental maintenance ---------------------------------------
    def update(self, errors: np.ndarray, node_offset: int = 0) -> None:
        """Fold one batch of CE records into the error cubes.

        Pure ``+=`` of bincounts: folding the same records in any batch
        split (or per shard with ``node_offset``, then merging) yields
        byte-identical cubes.
        """
        if errors.dtype != ERROR_DTYPE:
            raise RollupError(f"expected ERROR_DTYPE, got {errors.dtype}")
        self.batches += 1
        if errors.size == 0:
            return
        c = self.config
        nodes = errors["node"].astype(np.int64) + int(node_offset)
        if int(nodes.min()) < 0 or int(nodes.max()) >= _MAX_NODE:
            raise RollupError("node id out of rollup range")
        slots = errors["slot"].astype(np.int64)
        if int(slots.min()) < 0 or int(slots.max()) >= c.n_slots:
            raise RollupError(
                f"slot out of range for n_slots={c.n_slots}"
            )
        times = errors["time"]
        buckets = np.floor(times / c.bucket_s).astype(np.int64)
        windows = np.floor(times / c.window_s).astype(np.int64)
        if int(windows.min()) < 0 or int(windows.max()) >= _CE_KEY_BASE:
            raise RollupError("error time out of rollup range")
        self._grow_nodes(int(nodes.max()))
        self._grow_time(int(buckets.min()), int(buckets.max()))

        self.node_errors += np.bincount(
            nodes, minlength=self.node_errors.size
        )

        nb = self.n_buckets
        flat = (
            (nodes // c.nodes_per_rack) * (c.n_slots * nb)
            + slots * nb
            + (buckets - self._bucket0)
        )
        view = self.rack_slot_bucket.reshape(-1)
        counts = np.bincount(flat)
        view[: counts.size] += counts

        bits = errors["bit_pos"].astype(np.int64)
        bits = np.where((bits < 0) | (bits >= N_BITPOS - 1), N_BITPOS - 1, bits)
        self.bitpos += np.bincount(bits, minlength=N_BITPOS)
        banks = np.clip(errors["bank"].astype(np.int64), -1, N_BANKS - 2) + 1
        self.bank += np.bincount(banks, minlength=N_BANKS)

        keys, kcounts = np.unique(
            nodes * _CE_KEY_BASE + windows, return_counts=True
        )
        wins = self._ce_windows
        for k, n in zip(keys.tolist(), kcounts.tolist()):
            wins[k] = wins.get(k, 0) + n

        self.errors_seen += int(errors.size)
        from repro import obs

        obs.count("rollup.update.batches")
        obs.count("rollup.update.errors", int(errors.size))

    def observe_sensors(self, samples: np.ndarray) -> None:
        """Fold BMC samples into the dropout tallies.

        Mirrors the ``sensor_dropout`` alert rule's high-water-mark walk
        exactly (same gap limit, same watermark advance), so the tallies
        agree with the alert stream record for record.
        """
        if samples.size == 0:
            return
        ts = np.unique(samples["time"])
        gap_limit = self.config.dropout_min_gap * self.config.dropout_cadence_s
        prev = self._sensor_watermark
        n_drop = 0
        gap_s = 0.0
        for t in ts.tolist():
            if prev is not None and t > prev and (t - prev) > gap_limit:
                n_drop += 1
                gap_s += t - prev
            prev = t if prev is None else max(prev, t)
        self._sensor_watermark = prev
        self.sensor_samples += int(samples.size)
        self.dropout_count += n_drop
        self.dropout_seconds += gap_s

    def set_faults(self, faults: np.ndarray, node_offset: int = 0) -> None:
        """Refresh the fault cubes from a coalesced fault snapshot.

        Fault cubes cannot be maintained additively per batch (a group's
        mode is revised as evidence arrives), so they are rebuilt from
        the authoritative snapshot -- O(n_faults), no log rescan.
        """
        if faults.dtype != FAULT_DTYPE:
            raise RollupError(f"expected FAULT_DTYPE, got {faults.dtype}")
        c = self.config
        self.fault_rack_slot_mode[:] = 0
        self.fault_mode_bucket[:] = 0
        self.mode_error_totals[:] = 0
        self.n_faults = int(faults.size)
        if faults.size == 0:
            return
        nodes = faults["node"].astype(np.int64) + int(node_offset)
        if int(nodes.min()) < 0:
            raise RollupError("fault node id out of rollup range")
        slots = faults["slot"].astype(np.int64)
        if int(slots.min()) < 0 or int(slots.max()) >= c.n_slots:
            raise RollupError(f"slot out of range for n_slots={c.n_slots}")
        modes = faults["mode"].astype(np.int64)
        buckets = np.floor(faults["first_time"] / c.bucket_s).astype(np.int64)
        self._grow_nodes(int(nodes.max()))
        self._grow_time(int(buckets.min()), int(buckets.max()))
        nb = self.n_buckets

        flat = (
            (nodes // c.nodes_per_rack) * (c.n_slots * _N_MODES)
            + slots * _N_MODES
            + modes
        )
        view = self.fault_rack_slot_mode.reshape(-1)
        counts = np.bincount(flat)
        view[: counts.size] += counts

        flat2 = modes * nb + (buckets - self._bucket0)
        view2 = self.fault_mode_bucket.reshape(-1)
        counts2 = np.bincount(flat2)
        view2[: counts2.size] += counts2

        np.add.at(self.mode_error_totals, modes, faults["n_errors"])

    # -- merge ---------------------------------------------------------
    def merge(self, other: "RollupStore") -> None:
        """Fold another store's cubes into this one, exactly.

        Requires identical configs.  Error cubes add element-wise; the
        sensor watermark takes the max (exact for the fleet case, where
        at most one shard stream carries sensors).
        """
        if other.config != self.config:
            raise RollupError(
                "rollup config mismatch: found "
                f"{other.config.to_dict()}, expected {self.config.to_dict()};"
                " hint: rebuild one side with the same cube geometry"
            )
        self.errors_seen += other.errors_seen
        self.batches += other.batches
        self.n_faults += other.n_faults
        self.sensor_samples += other.sensor_samples
        self.dropout_count += other.dropout_count
        self.dropout_seconds += other.dropout_seconds
        if other._sensor_watermark is not None:
            w = self._sensor_watermark
            self._sensor_watermark = (
                other._sensor_watermark
                if w is None
                else max(w, other._sensor_watermark)
            )
        self.bitpos += other.bitpos
        self.bank += other.bank
        self.mode_error_totals += other.mode_error_totals
        if other.n_nodes_seen:
            self._grow_nodes(other.n_nodes_seen - 1)
            self.node_errors[: other.n_nodes_seen] += other.node_errors
            self.fault_rack_slot_mode[: other.n_racks] += (
                other.fault_rack_slot_mode
            )
        if other._bucket0 is not None:
            self._grow_time(
                other._bucket0, other._bucket0 + other.n_buckets - 1
            )
            off = other._bucket0 - self._bucket0
            sl = slice(off, off + other.n_buckets)
            self.rack_slot_bucket[: other.n_racks, :, sl] += (
                other.rack_slot_bucket
            )
            self.fault_mode_bucket[:, sl] += other.fault_mode_bucket
        wins = self._ce_windows
        for k, n in other._ce_windows.items():
            wins[k] = wins.get(k, 0) + n

    # -- read views ----------------------------------------------------
    def node_errors_padded(self, n_nodes: int) -> np.ndarray:
        """Per-node CE counts padded with zeros to ``n_nodes``."""
        if self.n_nodes_seen > n_nodes:
            raise RollupError(
                f"rollup covers {self.n_nodes_seen} nodes, "
                f"caller asked for {n_nodes}"
            )
        out = np.zeros(n_nodes, dtype=np.int64)
        out[: self.n_nodes_seen] = self.node_errors
        return out

    def rack_error_totals(self, n_racks: int | None = None) -> np.ndarray:
        """Per-rack CE totals, optionally padded to ``n_racks``."""
        totals = self.rack_slot_bucket.sum(axis=(1, 2))
        if n_racks is None:
            return totals
        if totals.size > n_racks:
            raise RollupError(
                f"rollup covers {totals.size} racks, "
                f"caller asked for {n_racks}"
            )
        out = np.zeros(n_racks, dtype=np.int64)
        out[: totals.size] = totals
        return out

    def ce_window_items(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(nodes, windows, counts) of nonempty CE-rate windows, sorted."""
        if not self._ce_windows:
            z = np.zeros(0, dtype=np.int64)
            return z, z.copy(), z.copy()
        n = len(self._ce_windows)
        # keys() and values() iterate in the same (insertion) order, so
        # one argsort aligns both without per-key dict lookups.
        keys = np.fromiter(self._ce_windows.keys(), dtype=np.int64, count=n)
        counts = np.fromiter(
            self._ce_windows.values(), dtype=np.int64, count=n
        )
        order = np.argsort(keys)
        keys = keys[order]
        return keys // _CE_KEY_BASE, keys % _CE_KEY_BASE, counts[order]

    def sensor_tallies(self) -> dict:
        return {
            "samples": int(self.sensor_samples),
            "dropouts": int(self.dropout_count),
            "gap_seconds": float(self.dropout_seconds),
            "watermark": (
                None
                if self._sensor_watermark is None
                else float(self._sensor_watermark)
            ),
        }

    def equal(self, other: "RollupStore") -> bool:
        """Strict data equality (provenance fields excluded)."""
        if self.config != other.config:
            return False
        if (
            self.errors_seen != other.errors_seen
            or self.n_faults != other.n_faults
            or self._bucket0 != other._bucket0
            or self.sensor_tallies() != other.sensor_tallies()
        ):
            return False
        for name in (
            "node_errors",
            "rack_slot_bucket",
            "bitpos",
            "bank",
            "fault_rack_slot_mode",
            "fault_mode_bucket",
            "mode_error_totals",
        ):
            a, b = getattr(self, name), getattr(other, name)
            if a.shape != b.shape or not np.array_equal(a, b):
                return False
        return self._ce_windows == other._ce_windows

    # -- (de)serialisation ---------------------------------------------
    def _export(self) -> tuple[dict, dict]:
        meta = {
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "errors_seen": int(self.errors_seen),
            "batches": int(self.batches),
            "n_faults": int(self.n_faults),
            "n_racks": int(self.n_racks),
            "n_nodes": int(self.n_nodes_seen),
            "bucket0": self._bucket0,
            "n_buckets": int(self.n_buckets),
            "source": self.source,
            "policy": self.policy,
            "sensor": self.sensor_tallies(),
        }
        rack_ids = np.flatnonzero(self.rack_slot_bucket.any(axis=(1, 2)))
        frack_ids = np.flatnonzero(self.fault_rack_slot_mode.any(axis=(1, 2)))
        node_ids = np.flatnonzero(self.node_errors)
        keys = np.array(sorted(self._ce_windows), dtype=np.int64)
        arrays = {
            "rack_ids": rack_ids.astype(np.int64),
            "rack_slot_bucket": self.rack_slot_bucket[rack_ids],
            "fault_rack_ids": frack_ids.astype(np.int64),
            "fault_rack_slot_mode": self.fault_rack_slot_mode[frack_ids],
            "node_ids": node_ids.astype(np.int64),
            "node_errors": self.node_errors[node_ids],
            "bitpos": self.bitpos,
            "bank": self.bank,
            "fault_mode_bucket": self.fault_mode_bucket,
            "mode_error_totals": self.mode_error_totals,
            "window_keys": keys,
            "window_counts": np.array(
                [self._ce_windows[int(k)] for k in keys], dtype=np.int64
            ),
        }
        return meta, arrays

    @classmethod
    def _import(cls, meta: dict, arrays: dict) -> "RollupStore":
        version = meta.get("schema_version")
        if version != ROLLUP_SCHEMA_VERSION:
            raise RollupError(
                f"rollup schema_version mismatch: found {version!r}, "
                f"expected {ROLLUP_SCHEMA_VERSION}; hint: rebuild the "
                "snapshot with 'repro query --build' (or re-run the stream "
                "with --rollups-dir) using this version of the code"
            )
        store = cls(RollupConfig.from_dict(meta["config"]))
        c = store.config
        store.errors_seen = int(meta["errors_seen"])
        store.batches = int(meta["batches"])
        store.n_faults = int(meta["n_faults"])
        store.source = str(meta.get("source", "batch"))
        store.policy = meta.get("policy")
        n_racks = int(meta["n_racks"])
        nb = int(meta["n_buckets"])
        store._bucket0 = (
            None if meta["bucket0"] is None else int(meta["bucket0"])
        )
        store.node_errors = np.zeros(n_racks * c.nodes_per_rack, np.int64)
        store.node_errors[arrays["node_ids"]] = arrays["node_errors"]
        store.rack_slot_bucket = np.zeros((n_racks, c.n_slots, nb), np.int64)
        store.rack_slot_bucket[arrays["rack_ids"]] = (
            arrays["rack_slot_bucket"]
        )
        store.fault_rack_slot_mode = np.zeros(
            (n_racks, c.n_slots, _N_MODES), np.int64
        )
        store.fault_rack_slot_mode[arrays["fault_rack_ids"]] = (
            arrays["fault_rack_slot_mode"]
        )
        store.bitpos = arrays["bitpos"].astype(np.int64)
        store.bank = arrays["bank"].astype(np.int64)
        store.fault_mode_bucket = (
            arrays["fault_mode_bucket"].astype(np.int64).reshape(_N_MODES, nb)
        )
        store.mode_error_totals = (
            arrays["mode_error_totals"].astype(np.int64)
        )
        store._ce_windows = dict(
            zip(
                arrays["window_keys"].astype(np.int64).tolist(),
                arrays["window_counts"].astype(np.int64).tolist(),
            )
        )
        sensor = meta["sensor"]
        store.sensor_samples = int(sensor["samples"])
        store.dropout_count = int(sensor["dropouts"])
        store.dropout_seconds = float(sensor["gap_seconds"])
        w = sensor["watermark"]
        store._sensor_watermark = None if w is None else float(w)
        return store

    def to_payload(self) -> dict:
        """Compact picklable form for cross-process shipping (fleet IPC)."""
        meta, arrays = self._export()
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def from_payload(cls, payload: dict) -> "RollupStore":
        return cls._import(payload["meta"], payload["arrays"])

    def merge_payload(self, payload: dict) -> None:
        self.merge(self.from_payload(payload))

    def _payload_bytes(self) -> bytes:
        meta, arrays = self._export()
        buf = io.BytesIO()
        meta_raw = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        np.savez(buf, __meta__=meta_raw, **arrays)
        return buf.getvalue()

    # -- snapshots -----------------------------------------------------
    def snapshot(self, directory: str | os.PathLike) -> int:
        """Atomically persist a new immutable version; returns its number.

        Crash ordering: (1) the ``rollup-NNNNNN.npz`` payload is made
        durable (tmp + data fsync + replace + dir fsync) *before* (2)
        the manifest is atomically replaced to point at it, and (3) only
        then are versions older than :data:`KEEP_VERSIONS` pruned.  A
        crash in any window leaves either the previous manifest naming
        an intact previous payload, or the new manifest naming an intact
        new payload -- a reader can never observe a torn cube.
        """
        from repro import obs

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = _read_manifest(directory)
        if manifest is None:
            manifest = {
                "schema_version": ROLLUP_SCHEMA_VERSION,
                "config": self.config.to_dict(),
                "latest": 0,
                "versions": {},
            }
        found = RollupConfig.from_dict(manifest["config"])
        if found != self.config:
            raise RollupError(
                f"{directory / MANIFEST_NAME}: rollup config mismatch: "
                f"found {found.to_dict()}, expected {self.config.to_dict()};"
                " hint: snapshot into a fresh directory or rebuild the"
                " existing one with the same cube geometry"
            )
        version = int(manifest["latest"]) + 1
        name = f"rollup-{version:06d}.npz"
        payload = self._payload_bytes()
        with obs.span(
            "rollup.snapshot", transient=True,
            attrs={"version": version, "bytes": len(payload)},
        ):
            tmp = directory / (name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, directory / name)
            fsync_dir(directory)
            manifest["latest"] = version
            manifest["versions"][str(version)] = {
                "file": name,
                "crc32c": crc32c(payload),
                "bytes": len(payload),
                "errors_seen": int(self.errors_seen),
                "n_faults": int(self.n_faults),
                "source": self.source,
                "policy": self.policy,
                "created": time.time(),
            }
            keep = {
                str(v)
                for v in range(max(1, version - KEEP_VERSIONS + 1), version + 1)
            }
            pruned = [
                entry["file"]
                for v, entry in manifest["versions"].items()
                if v not in keep
            ]
            manifest["versions"] = {
                v: entry
                for v, entry in manifest["versions"].items()
                if v in keep
            }
            mtmp = directory / (MANIFEST_NAME + ".tmp")
            with open(mtmp, "w") as fh:
                fh.write(json.dumps(manifest, indent=1, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(mtmp, directory / MANIFEST_NAME)
            fsync_dir(directory)
            for name_ in pruned:
                try:
                    os.unlink(directory / name_)
                except OSError:
                    pass
        obs.count("rollup.snapshots")
        return version

    @classmethod
    def load(
        cls,
        directory: str | os.PathLike,
        version: int | None = None,
        config: RollupConfig | None = None,
    ) -> "RollupStore":
        """Load a snapshot; digest-verified, torn-read-safe.

        With ``version=None`` the manifest's latest version is loaded.
        A reader racing a writer may find the manifest's file already
        pruned or half-visible; it retries against a re-read manifest a
        few times before giving up.
        """
        directory = Path(directory)
        last_error = None
        for _ in range(3):
            manifest = _read_manifest(directory)
            if manifest is None:
                raise RollupError(
                    f"{directory / MANIFEST_NAME}: no rollup snapshot found;"
                    " hint: build one with 'repro stream ... --rollups-dir'"
                    " or 'repro query ... --build'"
                )
            mversion = manifest.get("schema_version")
            if mversion != ROLLUP_SCHEMA_VERSION:
                raise RollupError(
                    f"{directory / MANIFEST_NAME}: manifest schema_version "
                    f"mismatch: found {mversion!r}, expected "
                    f"{ROLLUP_SCHEMA_VERSION}; hint: rebuild the snapshot "
                    "with this version of the code ('repro query --build')"
                )
            want = int(manifest["latest"]) if version is None else int(version)
            entry = manifest["versions"].get(str(want))
            if entry is None:
                held = ", ".join(sorted(manifest["versions"])) or "none"
                raise RollupError(
                    f"{directory / MANIFEST_NAME}: rollup snapshot version "
                    f"mismatch: found versions [{held}], expected {want}; "
                    "hint: the requested version was pruned or never "
                    "written -- resume from a newer checkpoint, or rebuild "
                    "with 'repro query --build'"
                )
            path = directory / entry["file"]
            try:
                raw = path.read_bytes()
            except FileNotFoundError as exc:
                last_error = RollupError(
                    f"{path}: rollup payload vanished mid-read ({exc}); "
                    "hint: a concurrent writer pruned it -- retry, or load "
                    "the latest version"
                )
                continue
            digest = crc32c(raw)
            if digest != entry["crc32c"]:
                last_error = RollupError(
                    f"{path}: rollup digest mismatch: found {digest}, "
                    f"expected {entry['crc32c']}; hint: the snapshot is "
                    "torn or corrupt -- re-run the writer or rebuild with "
                    "'repro query --build'"
                )
                continue
            with np.load(io.BytesIO(raw)) as npz:
                arrays = {k: npz[k] for k in npz.files if k != "__meta__"}
                meta = json.loads(bytes(npz["__meta__"]).decode("utf-8"))
            store = cls._import(meta, arrays)
            if config is not None and store.config != config:
                raise RollupError(
                    f"{path}: rollup config mismatch: found "
                    f"{store.config.to_dict()}, expected {config.to_dict()};"
                    " hint: rebuild the snapshot with the requested"
                    " geometry, or drop the overriding flags"
                )
            return store
        raise last_error  # pragma: no cover - needs a pathological racer

    @staticmethod
    def latest_version(directory: str | os.PathLike) -> int | None:
        """The manifest's latest version number, or None when absent."""
        manifest = _read_manifest(Path(directory))
        return None if manifest is None else int(manifest["latest"])


def _read_manifest(directory: Path) -> dict | None:
    try:
        raw = (directory / MANIFEST_NAME).read_text()
    except FileNotFoundError:
        return None
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise RollupError(
            f"{directory / MANIFEST_NAME}: corrupt rollup manifest ({exc}); "
            "hint: rebuild the snapshot with 'repro query --build'"
        ) from exc
    if not isinstance(doc, dict):
        raise RollupError(
            f"{directory / MANIFEST_NAME}: rollup manifest must be a JSON "
            "object; hint: rebuild the snapshot with 'repro query --build'"
        )
    return doc
