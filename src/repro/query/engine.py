"""Read-optimized queries over rollup cubes, with a rescan oracle.

:func:`execute` answers a :class:`Query` purely from cube slices of a
:class:`~repro.query.rollup.RollupStore` -- filter by rack / slot /
mode / node / time window, group-by, top-k -- in microseconds, with
zero log rescan.  :func:`recompute` answers the *same* query from the
raw record arrays (full rescan, independent aggregation code path);
the two must agree element for element, which is what the CLI's
``repro query --check`` gate asserts.

Both paths share only the final deterministic formatting (group sort,
top-k tie-break, JSON layout), so an agreement failure localises to
the aggregation, not the presentation.

Semantics worth knowing:

* Time filters are **bucket-granular**: ``since``/``until`` snap to the
  enclosing bucket (``floor(t / bucket_s)``; windows for
  ``ce_windows``), inclusive on both ends.  Both paths snap the same
  way, by construction.
* Only nonzero groups are emitted, sorted by key; ``top_k`` re-sorts by
  ``(-value, key)`` so ties break deterministically.
* An empty ``group_by`` yields exactly one group with the (possibly
  zero) grand total.
"""

from __future__ import annotations

import numpy as np

from repro.faults.types import (
    ERROR_DTYPE,
    FAULT_DTYPE,
    FaultMode,
)
from repro.query.rollup import (
    N_BANKS,
    N_BITPOS,
    RollupConfig,
    RollupStore,
)

#: Bump on any change to the query answer document layout.
QUERY_SCHEMA_VERSION = 1

#: Everything ``select=`` accepts.
SELECTS = ("errors", "faults", "mode_errors", "ce_windows", "dropout")

_MODE_BY_LABEL = {m.label: m for m in FaultMode}

#: Canonical dimension order per cube; group_by is sorted into it.
_ERROR_CUBE_DIMS = ("rack", "slot", "bucket")
_FAULT_RSM_DIMS = ("rack", "slot", "mode")
_FAULT_MB_DIMS = ("mode", "bucket")
_CE_DIMS = ("node", "window")


class QueryError(ValueError):
    """A query is malformed or not answerable from the cubes."""


class Query:
    """A normalised, validated query.

    ``where`` accepts ``rack``/``slot``/``node`` (int or list of ints),
    ``mode`` (label string, int, or list of either), and ``since`` /
    ``until`` (epoch seconds).  ``group_by`` dimensions are reordered
    into the cube's canonical order.
    """

    def __init__(
        self,
        select: str,
        group_by=(),
        where: dict | None = None,
        top_k: int | None = None,
    ):
        if select not in SELECTS:
            raise QueryError(
                f"unknown select {select!r}; hint: one of {', '.join(SELECTS)}"
            )
        self.select = select
        where = dict(where or {})
        self.since = _opt_float(where.pop("since", None), "since")
        self.until = _opt_float(where.pop("until", None), "until")
        self.racks = _int_list(where.pop("rack", None), "rack")
        self.slots = _int_list(where.pop("slot", None), "slot")
        self.nodes = _int_list(where.pop("node", None), "node")
        self.modes = _mode_list(where.pop("mode", None))
        if where:
            raise QueryError(
                f"unknown where keys {sorted(where)}; hint: rack, slot, "
                "node, mode, since, until"
            )
        if top_k is not None and int(top_k) <= 0:
            raise QueryError("top_k must be positive")
        self.top_k = None if top_k is None else int(top_k)
        self.group_by = self._normalise_group_by(tuple(group_by))
        self._validate()

    # -- normalisation -------------------------------------------------
    def _normalise_group_by(self, group_by: tuple) -> tuple:
        allowed = {
            "errors": ("rack", "slot", "bucket", "node", "bitpos", "bank"),
            "faults": ("rack", "slot", "mode", "bucket"),
            "mode_errors": ("mode",),
            "ce_windows": ("node", "window"),
            "dropout": (),
        }[self.select]
        for dim in group_by:
            if dim not in allowed:
                raise QueryError(
                    f"cannot group {self.select} by {dim!r}; hint: "
                    f"{', '.join(allowed) or 'no dimensions'}"
                )
        if len(set(group_by)) != len(group_by):
            raise QueryError("duplicate group_by dimension")
        if self.select == "ce_windows" and not group_by:
            return _CE_DIMS
        if self.select == "dropout":
            # one pseudo-dimension so the stat tallies carry named keys
            return ("stat",)
        order = {
            "errors": ("rack", "slot", "bucket", "node", "bitpos", "bank"),
            "faults": ("rack", "slot", "mode", "bucket"),
            "mode_errors": ("mode",),
            "ce_windows": _CE_DIMS,
            "dropout": (),
        }[self.select]
        return tuple(d for d in order if d in group_by)

    def _validate(self) -> None:
        g = set(self.group_by)
        has_time = self.since is not None or self.until is not None
        if self.select == "errors":
            solo = g & {"node", "bitpos", "bank"}
            if solo and (len(g) > 1 or g - solo):
                raise QueryError(
                    f"{sorted(solo)[0]} cannot be combined with other "
                    "group_by dimensions; hint: it lives in its own "
                    "histogram cube"
                )
            if "bitpos" in g or "bank" in g:
                if self.racks or self.slots or self.nodes or has_time:
                    raise QueryError(
                        "bit-position/bank histograms carry no rack/slot/"
                        "node/time axes; hint: drop the where filters"
                    )
            elif "node" in g or self.nodes is not None:
                if g - {"node"}:
                    raise QueryError(
                        "node filters answer from the per-node cube; hint: "
                        "group by node (or nothing), without rack/slot/bucket"
                    )
                if self.racks or self.slots or has_time:
                    raise QueryError(
                        "the per-node cube has no rack/slot/time axes; "
                        "hint: filter by rack/slot/time without node, or "
                        "by node alone"
                    )
            if self.modes:
                raise QueryError(
                    "errors carry no fault mode; hint: select mode_errors "
                    "or faults"
                )
        elif self.select == "faults":
            if self.nodes:
                raise QueryError(
                    "fault cubes have no node axis; hint: filter by "
                    "rack/slot instead"
                )
            use_mb = "bucket" in g or has_time
            if use_mb and (g - set(_FAULT_MB_DIMS) or self.racks or self.slots):
                raise QueryError(
                    "time-bucketed fault queries answer from the "
                    "mode x bucket cube; hint: group by mode and/or bucket "
                    "only, without rack/slot filters"
                )
        elif self.select == "mode_errors":
            if self.racks or self.slots or self.nodes or has_time:
                raise QueryError(
                    "mode_errors is a fleet-wide total; hint: only a mode "
                    "filter applies"
                )
        elif self.select == "ce_windows":
            if self.group_by != _CE_DIMS:
                raise QueryError(
                    "ce_windows groups by (node, window); hint: omit "
                    "--group-by or pass exactly node window"
                )
            if self.racks or self.slots or self.modes:
                raise QueryError(
                    "ce_windows filters by node and time only"
                )
        elif self.select == "dropout":
            if self.racks or self.slots or self.nodes or self.modes \
                    or has_time:
                raise QueryError(
                    "dropout takes no group_by or where; hint: it returns "
                    "the fleet-wide tallies"
                )

    # -- document form -------------------------------------------------
    def where_doc(self) -> dict:
        doc = {}
        if self.racks is not None:
            doc["rack"] = self.racks
        if self.slots is not None:
            doc["slot"] = self.slots
        if self.nodes is not None:
            doc["node"] = self.nodes
        if self.modes is not None:
            doc["mode"] = [FaultMode(m).label for m in self.modes]
        if self.since is not None:
            doc["since"] = self.since
        if self.until is not None:
            doc["until"] = self.until
        return doc

    def bucket_range(self, bucket_s: float) -> tuple:
        lo = None if self.since is None else int(np.floor(self.since / bucket_s))
        hi = None if self.until is None else int(np.floor(self.until / bucket_s))
        return lo, hi


def _opt_float(v, name: str):
    if v is None:
        return None
    try:
        return float(v)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"{name} must be a number, got {v!r}") from exc


def _int_list(v, name: str):
    if v is None:
        return None
    if isinstance(v, (list, tuple, np.ndarray)):
        vals = [int(x) for x in v]
    else:
        vals = [int(v)]
    if not vals:
        return None
    if any(x < 0 for x in vals):
        raise QueryError(f"{name} filter values must be non-negative")
    return sorted(set(vals))


def _mode_list(v):
    if v is None:
        return None
    items = v if isinstance(v, (list, tuple)) else [v]
    out = set()
    for item in items:
        if isinstance(item, str):
            if item not in _MODE_BY_LABEL:
                raise QueryError(
                    f"unknown fault mode {item!r}; hint: one of "
                    f"{', '.join(m.label for m in FaultMode)}"
                )
            out.add(int(_MODE_BY_LABEL[item]))
        else:
            try:
                out.add(int(FaultMode(int(item))))
            except ValueError as exc:
                raise QueryError(
                    f"unknown fault mode {item!r}"
                ) from exc
    return sorted(out) if out else None


# ----------------------------------------------------------------------
# Shared deterministic formatting
# ----------------------------------------------------------------------
def _render_key(dim: str, value):
    if dim == "mode":
        return FaultMode(int(value)).label
    if dim == "stat":
        return str(value)
    return int(value)


def _format_answer(
    groups: dict, query: Query, config: RollupConfig, served_from: str
) -> dict:
    """groups: {key tuple (ints) -> count}; deterministic final doc."""
    items = sorted(groups.items())
    total = sum(v for _, v in items)
    if query.top_k is not None:
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        items = items[: query.top_k]
    keys = [
        [_render_key(d, k) for d, k in zip(query.group_by, key)]
        for key, _ in items
    ]
    values = [v for _, v in items]
    return {
        "schema_version": QUERY_SCHEMA_VERSION,
        "select": query.select,
        "group_by": list(query.group_by),
        "where": query.where_doc(),
        "top_k": query.top_k,
        "bucket_s": config.bucket_s,
        "window_s": config.window_s,
        "keys": keys,
        "values": values,
        "n_groups": len(values),
        "total": total,
        "served_from": served_from,
    }


def answers_equal(a: dict, b: dict) -> bool:
    """Element-for-element identity, ignoring which path served it."""
    strip = lambda d: {k: v for k, v in d.items() if k != "served_from"}
    return strip(a) == strip(b)


def _emit_cube(sub: np.ndarray, dims: tuple, labels: list, group_by) -> dict:
    """Reduce a cube slice to {group key -> count} for ``group_by``."""
    drop = tuple(i for i, d in enumerate(dims) if d not in group_by)
    red = sub.sum(axis=drop) if drop else sub
    kept = [labels[i] for i, d in enumerate(dims) if d in group_by]
    if not group_by:
        return {(): int(red)}
    groups = {}
    nz = np.nonzero(red)
    vals = red[nz]
    for idx, v in zip(zip(*(a.tolist() for a in nz)), vals.tolist()):
        key = tuple(int(kept[i][j]) for i, j in enumerate(idx))
        groups[key] = int(v)
    return groups


def _axis_ids(filt, size: int) -> np.ndarray:
    if filt is None:
        return np.arange(size, dtype=np.int64)
    return np.array([i for i in filt if i < size], dtype=np.int64)


def _bucket_axis_ids(store_b0, n_buckets: int, lo, hi) -> np.ndarray:
    ids = np.arange(n_buckets, dtype=np.int64)
    if store_b0 is None:
        return ids
    absolute = store_b0 + ids
    mask = np.ones(n_buckets, dtype=bool)
    if lo is not None:
        mask &= absolute >= lo
    if hi is not None:
        mask &= absolute <= hi
    return ids[mask]


# ----------------------------------------------------------------------
# Fast path: answer from cube slices
# ----------------------------------------------------------------------
def execute(store: RollupStore, query: Query) -> dict:
    """Answer ``query`` from the store's cubes (no record access)."""
    from repro import obs

    with obs.span(
        "query.execute", transient=True,
        attrs={"select": query.select, "group_by": list(query.group_by)},
    ):
        groups = _execute_groups(store, query)
        obs.count("query.executed")
        return _format_answer(groups, query, store.config, "rollup")


def _execute_groups(store: RollupStore, query: Query) -> dict:
    c = store.config
    g = set(query.group_by)
    lo, hi = query.bucket_range(c.bucket_s)
    if query.select == "errors":
        if "bitpos" in g:
            hist = store.bitpos
            labels = np.arange(N_BITPOS, dtype=np.int64)
            labels[N_BITPOS - 1] = -1  # sentinel slot reads as NO_BIT
            return _emit_cube(hist, ("bitpos",), [labels], query.group_by)
        if "bank" in g:
            hist = store.bank
            labels = np.arange(N_BANKS, dtype=np.int64) - 1
            return _emit_cube(hist, ("bank",), [labels], query.group_by)
        if "node" in g or query.nodes is not None:
            ids = _axis_ids(query.nodes, store.n_nodes_seen)
            sub = store.node_errors[ids]
            return _emit_cube(sub, ("node",), [ids], query.group_by)
        racks = _axis_ids(query.racks, store.n_racks)
        slots = _axis_ids(query.slots, c.n_slots)
        buckets = _bucket_axis_ids(store.bucket0, store.n_buckets, lo, hi)
        sub = store.rack_slot_bucket[np.ix_(racks, slots, buckets)]
        b0 = 0 if store.bucket0 is None else store.bucket0
        return _emit_cube(
            sub, _ERROR_CUBE_DIMS, [racks, slots, b0 + buckets],
            query.group_by,
        )
    if query.select == "faults":
        modes = _axis_ids(query.modes, len(FaultMode))
        if "bucket" in g or lo is not None or hi is not None:
            buckets = _bucket_axis_ids(store.bucket0, store.n_buckets, lo, hi)
            sub = store.fault_mode_bucket[np.ix_(modes, buckets)]
            b0 = 0 if store.bucket0 is None else store.bucket0
            return _emit_cube(
                sub, _FAULT_MB_DIMS, [modes, b0 + buckets], query.group_by
            )
        racks = _axis_ids(query.racks, store.n_racks)
        slots = _axis_ids(query.slots, c.n_slots)
        sub = store.fault_rack_slot_mode[np.ix_(racks, slots, modes)]
        return _emit_cube(
            sub, _FAULT_RSM_DIMS, [racks, slots, modes], query.group_by
        )
    if query.select == "mode_errors":
        modes = _axis_ids(query.modes, len(FaultMode))
        sub = store.mode_error_totals[modes]
        return _emit_cube(sub, ("mode",), [modes], query.group_by)
    if query.select == "ce_windows":
        nodes, windows, counts = store.ce_window_items()
        return _ce_groups(nodes, windows, counts, query, c.window_s)
    # dropout
    t = store.sensor_tallies()
    return {
        ("dropouts",): t["dropouts"],
        ("gap_seconds",): float(t["gap_seconds"]),
        ("samples",): t["samples"],
    }


def _ce_groups(nodes, windows, counts, query: Query, window_s: float) -> dict:
    lo = None if query.since is None else int(np.floor(query.since / window_s))
    hi = None if query.until is None else int(np.floor(query.until / window_s))
    mask = np.ones(nodes.shape, dtype=bool)
    if query.nodes is not None:
        mask &= np.isin(nodes, np.array(query.nodes, dtype=np.int64))
    if lo is not None:
        mask &= windows >= lo
    if hi is not None:
        mask &= windows <= hi
    return {
        (int(n), int(w)): int(v)
        for n, w, v in zip(nodes[mask], windows[mask], counts[mask])
    }


# ----------------------------------------------------------------------
# Slow oracle: answer from the raw records
# ----------------------------------------------------------------------
def recompute(
    query: Query,
    config: RollupConfig,
    errors: np.ndarray | None = None,
    faults: np.ndarray | None = None,
    sensor_times: np.ndarray | None = None,
) -> dict:
    """Answer ``query`` by a full rescan of the raw arrays.

    Independent aggregation code: filtered column extraction plus
    ``np.unique`` counting, no cube involved.  Feeding it the same
    records the store consumed must reproduce :func:`execute`'s answer
    exactly (``answers_equal``).
    """
    from repro import obs

    groups = _recompute_groups(query, config, errors, faults, sensor_times)
    obs.count("query.rescans")
    return _format_answer(groups, query, config, "rescan")


def _need(arr, what: str, query: Query):
    if arr is None:
        raise QueryError(
            f"recomputing a {query.select} query needs the {what} array"
        )
    return arr


def _recompute_groups(query, config, errors, faults, sensor_times) -> dict:
    c = config
    g = query.group_by
    if query.select == "errors":
        errors = _need(errors, "errors", query)
        if errors.dtype != ERROR_DTYPE:
            raise QueryError(f"expected ERROR_DTYPE, got {errors.dtype}")
        cols = {}
        if errors.size:
            nodes = errors["node"].astype(np.int64)
            bits = errors["bit_pos"].astype(np.int64)
            cols = {
                "rack": nodes // c.nodes_per_rack,
                "slot": errors["slot"].astype(np.int64),
                "bucket": np.floor(
                    errors["time"] / c.bucket_s
                ).astype(np.int64),
                "node": nodes,
                "bitpos": np.where(
                    (bits < 0) | (bits >= N_BITPOS - 1), -1, bits
                ),
                "bank": np.clip(
                    errors["bank"].astype(np.int64), -1, N_BANKS - 2
                ),
            }
        mask = _where_mask(query, cols, errors.size, c)
        return _count_groups(g, cols, mask)
    if query.select == "faults":
        faults = _need(faults, "faults", query)
        if faults.dtype != FAULT_DTYPE:
            raise QueryError(f"expected FAULT_DTYPE, got {faults.dtype}")
        cols = {}
        if faults.size:
            nodes = faults["node"].astype(np.int64)
            cols = {
                "rack": nodes // c.nodes_per_rack,
                "slot": faults["slot"].astype(np.int64),
                "mode": faults["mode"].astype(np.int64),
                "bucket": np.floor(
                    faults["first_time"] / c.bucket_s
                ).astype(np.int64),
            }
        mask = _where_mask(query, cols, faults.size, c)
        return _count_groups(g, cols, mask)
    if query.select == "mode_errors":
        faults = _need(faults, "faults", query)
        sums = np.zeros(len(FaultMode), dtype=np.int64)
        if faults.size:
            modes = faults["mode"].astype(np.int64)
            weights = faults["n_errors"].astype(np.int64)
            if query.modes is not None:
                keep = np.isin(modes, np.array(query.modes, dtype=np.int64))
                modes, weights = modes[keep], weights[keep]
            np.add.at(sums, modes, weights)
        if g:
            return {(int(m),): int(sums[m]) for m in np.nonzero(sums)[0]}
        return {(): int(sums.sum())}
    if query.select == "ce_windows":
        errors = _need(errors, "errors", query)
        if errors.size == 0:
            return {}
        nodes = errors["node"].astype(np.int64)
        windows = np.floor(errors["time"] / c.window_s).astype(np.int64)
        stacked = np.stack([nodes, windows], axis=1)
        uniq, counts = np.unique(stacked, axis=0, return_counts=True)
        return _ce_groups(
            uniq[:, 0], uniq[:, 1], counts.astype(np.int64), query, c.window_s
        )
    # dropout
    sensor_times = _need(sensor_times, "sensor_times", query)
    ts = np.unique(np.asarray(sensor_times, dtype=np.float64))
    gap_limit = c.dropout_min_gap * c.dropout_cadence_s
    prev = None
    n_drop = 0
    gap_s = 0.0
    for t in ts.tolist():
        if prev is not None and t > prev and (t - prev) > gap_limit:
            n_drop += 1
            gap_s += t - prev
        prev = t if prev is None else max(prev, t)
    return {
        ("dropouts",): n_drop,
        ("gap_seconds",): float(gap_s),
        ("samples",): int(np.asarray(sensor_times).size),
    }


def _where_mask(query: Query, cols: dict, n: int, c: RollupConfig):
    mask = np.ones(n, dtype=bool)
    if not n:
        return mask
    for name, vals in (
        ("rack", query.racks),
        ("slot", query.slots),
        ("node", query.nodes),
        ("mode", query.modes),
    ):
        if vals is not None and name in cols:
            mask &= np.isin(cols[name], np.array(vals, dtype=np.int64))
    lo, hi = query.bucket_range(c.bucket_s)
    if lo is not None and "bucket" in cols:
        mask &= cols["bucket"] >= lo
    if hi is not None and "bucket" in cols:
        mask &= cols["bucket"] <= hi
    return mask


def _count_groups(group_by: tuple, cols: dict, mask: np.ndarray) -> dict:
    if not group_by:
        return {(): int(mask.sum())}
    if not mask.size or not mask.any():
        return {}
    stacked = np.stack([cols[d][mask] for d in group_by], axis=1)
    uniq, counts = np.unique(stacked, axis=0, return_counts=True)
    return {
        tuple(int(x) for x in row): int(v)
        for row, v in zip(uniq, counts)
    }


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_store(
    errors: np.ndarray,
    faults: np.ndarray | None = None,
    config: RollupConfig | None = None,
    sensor_samples: np.ndarray | None = None,
    source: str = "batch",
    policy: str | None = None,
) -> RollupStore:
    """One-shot store from whole arrays (the rescan-equivalent build)."""
    store = RollupStore(config)
    store.source = source
    store.policy = policy
    store.update(errors)
    if sensor_samples is not None:
        store.observe_sensors(sensor_samples)
    if faults is not None:
        store.set_faults(faults)
    return store
