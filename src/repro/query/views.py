"""Figure-facing read views over a campaign's attached rollups.

The hot figure paths (fig04 mode totals, fig05 per-node counts, fig12
per-rack counts) can be served from cube slices instead of rescanning
``campaign.errors``.  Each helper returns ``None`` when the campaign
carries no rollups or the cube geometry does not match the campaign's
topology -- callers fall back to the rescan path, so attaching a stale
or foreign rollup can never change a figure silently.  fig04 keeps an
explicit identity check against the monthly-series totals (the gate
demanded before any figure trusts a cube).
"""

from __future__ import annotations

import numpy as np

from repro.faults.types import REPORTED_MODES
from repro.query.rollup import RollupStore


def campaign_rollups(campaign) -> RollupStore | None:
    """The campaign's rollup store, if one compatible with it is attached."""
    store = getattr(campaign, "rollups", None)
    if store is None:
        return None
    topo = campaign.topology
    if store.config.nodes_per_rack != topo.nodes_per_rack:
        return None
    if store.n_nodes_seen > topo.n_nodes:
        return None
    if store.errors_seen != int(campaign.errors.size):
        return None
    return store


def rollup_per_node_errors(campaign) -> np.ndarray | None:
    """fig05's per-node CE counts from the node cube, or None."""
    store = campaign_rollups(campaign)
    if store is None:
        return None
    from repro import obs

    obs.count("query.figure_reads")
    return store.node_errors_padded(campaign.topology.n_nodes)


def rollup_per_rack_errors(campaign) -> np.ndarray | None:
    """fig12's per-rack CE counts from the rack cube, or None."""
    store = campaign_rollups(campaign)
    if store is None:
        return None
    from repro import obs

    obs.count("query.figure_reads")
    return store.rack_error_totals(campaign.topology.n_racks)


def rollup_reported_mode_totals(campaign) -> dict | None:
    """fig04's per-mode attributed error totals from the fault cube.

    Returns ``{mode: count, ..., "total": errors_seen}`` in the shape of
    :func:`repro.analysis.trends.reported_mode_totals`, or ``None`` when
    no usable rollup (or no fault refresh) is attached.
    """
    store = campaign_rollups(campaign)
    if store is None or store.n_faults == 0:
        return None
    from repro import obs

    obs.count("query.figure_reads")
    totals = {
        mode: int(store.mode_error_totals[mode]) for mode in REPORTED_MODES
    }
    totals["total"] = int(store.errors_seen)
    return totals
