"""Rollup cubes and the read-optimized query engine (DESIGN.md §14).

``rollup``
    :class:`RollupStore` -- incrementally maintained, exactly mergeable
    NumPy aggregates with versioned atomic snapshots.
``engine``
    :class:`Query`, :func:`execute` (cube-served), :func:`recompute`
    (full-rescan oracle), and :func:`build_store`.
``views``
    Figure-facing reads over a campaign's attached rollups.
"""

from repro.query.engine import (
    QUERY_SCHEMA_VERSION,
    SELECTS,
    Query,
    QueryError,
    answers_equal,
    build_store,
    execute,
    recompute,
)
from repro.query.rollup import (
    MANIFEST_NAME,
    ROLLUP_SCHEMA_VERSION,
    RollupConfig,
    RollupError,
    RollupStore,
)
from repro.query.views import (
    campaign_rollups,
    rollup_per_node_errors,
    rollup_per_rack_errors,
    rollup_reported_mode_totals,
)

__all__ = [
    "MANIFEST_NAME",
    "QUERY_SCHEMA_VERSION",
    "ROLLUP_SCHEMA_VERSION",
    "SELECTS",
    "Query",
    "QueryError",
    "RollupConfig",
    "RollupError",
    "RollupStore",
    "answers_equal",
    "build_store",
    "campaign_rollups",
    "execute",
    "recompute",
    "rollup_per_node_errors",
    "rollup_per_rack_errors",
    "rollup_reported_mode_totals",
]
