"""Machine-readable run reports: per-experiment metrics and JSON output.

The JSON report sits next to the text report and carries what a CI job
or dashboard needs without parsing rendered text: per-experiment wall
times, execution mode (parallel / serial / serial-fallback), record
counts, the evaluated shape checks, notes, and the campaign-cache
outcome (hit/miss and the generate/load/store timings that make cache
behaviour observable).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

#: Bumped when the JSON layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1


def _series_record_count(series: dict) -> int:
    """Total number of data points across a result's series."""
    total = 0
    for values in series.values():
        if isinstance(values, np.ndarray):
            total += int(values.size)
        elif isinstance(values, (list, tuple, dict)):
            total += len(values)
        else:
            total += 1
    return total


@dataclass
class ExperimentMetrics:
    """Timing and outcome of one experiment within a run."""

    exp_id: str
    title: str
    wall_s: float
    #: ``"parallel"``, ``"serial"``, or ``"serial-fallback"`` (the worker
    #: failed and the experiment was re-run in the parent process).
    mode: str
    n_series: int = 0
    n_records: int = 0
    n_checks: int = 0
    checks_passed: int = 0
    checks: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    #: Exception text when the experiment failed even serially.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Ran to completion with every shape check passing."""
        return self.error is None and self.checks_passed == self.n_checks

    @classmethod
    def from_result(cls, result, wall_s: float, mode: str) -> "ExperimentMetrics":
        """Build metrics from an :class:`ExperimentResult`."""
        return cls(
            exp_id=result.exp_id,
            title=result.title,
            wall_s=wall_s,
            mode=mode,
            n_series=len(result.series),
            n_records=_series_record_count(result.series),
            n_checks=len(result.checks),
            checks_passed=sum(bool(v) for v in result.checks.values()),
            checks={k: bool(v) for k, v in result.checks.items()},
            notes=list(result.notes),
        )

    @classmethod
    def from_error(cls, exp_id: str, wall_s: float, mode: str, exc) -> "ExperimentMetrics":
        """Build metrics for an experiment that raised."""
        return cls(
            exp_id=exp_id,
            title="",
            wall_s=wall_s,
            mode=mode,
            error=f"{type(exc).__name__}: {exc}",
        )


@dataclass
class RunReport:
    """One full run: campaign context, cache outcome, per-experiment metrics."""

    seed: int
    scale: float
    n_errors: int
    jobs: int
    total_wall_s: float = 0.0
    #: Time spent warming the coalesced fault stream before the fan-out.
    setup_s: float = 0.0
    #: ``CacheOutcome.to_dict()`` when a campaign cache was consulted.
    cache: dict | None = None
    experiments: list = field(default_factory=list)
    created: float = field(default_factory=time.time)

    @property
    def all_pass(self) -> bool:
        """Every experiment completed with all shape checks passing."""
        return all(m.ok for m in self.experiments)

    @property
    def n_failed(self) -> int:
        """Experiments with an error or at least one failed check."""
        return sum(not m.ok for m in self.experiments)

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "n_errors": self.n_errors,
            "jobs": self.jobs,
            "total_wall_s": self.total_wall_s,
            "setup_s": self.setup_s,
            "cache": self.cache,
            "all_pass": self.all_pass,
            "n_failed": self.n_failed,
            "created": self.created,
            "experiments": [asdict(m) for m in self.experiments],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str | os.PathLike) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def summary(self) -> str:
        """One-paragraph human summary for the CLI footer."""
        lines = [
            f"ran {len(self.experiments)} experiments in "
            f"{self.total_wall_s:.2f}s (jobs={self.jobs})"
        ]
        if self.cache is not None:
            state = "hit" if self.cache.get("hit") else "miss"
            lines.append(
                f"campaign cache: {state} {self.cache.get('key', '?')} "
                f"({self.cache.get('path', '?')})"
            )
        if self.n_failed:
            lines.append(f"experiments failing checks or erroring: {self.n_failed}")
        return "\n".join(lines)
