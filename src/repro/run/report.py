"""Machine-readable run reports: per-experiment metrics and JSON output.

The JSON report sits next to the text report and carries what a CI job
or dashboard needs without parsing rendered text: per-experiment wall
times, execution mode (parallel / serial / serial-fallback), record
counts, the evaluated shape checks, notes, and the campaign-cache
outcome (hit/miss and the generate/load/store timings that make cache
behaviour observable).

Schema version 2 adds the dirty-telemetry fields: per-experiment
degradation ``status`` (pass / pass-degraded / fail /
skipped-insufficient-data / error / timeout), per-family input
``coverage``, retry ``attempts`` and ``timed_out`` flags, and run-level
``ingest`` (per-family IngestStats), ``injection`` (the fault-injection
manifest, when --inject was used), ``ingest_policy`` and
``min_coverage``.

Schema version 3 adds the observability section: ``created_iso``
(ISO-8601 UTC alongside the float ``created`` epoch), ``trace`` (the
span tree, with child-process spans merged in, when ``--trace-out``
tracing was on), ``metrics`` (the counters/gauges/histograms snapshot),
and ``profiles`` (per-experiment cProfile hotspot rows under
``--profile``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

#: Bumped when the JSON layout changes incompatibly.
REPORT_SCHEMA_VERSION = 3


def series_record_count(series: dict) -> int:
    """Total number of data points across a result's series."""
    total = 0
    for values in series.values():
        if isinstance(values, np.ndarray):
            total += int(values.size)
        elif isinstance(values, (list, tuple, dict)):
            total += len(values)
        else:
            total += 1
    return total


#: Back-compat alias for the pre-v3 private name.
_series_record_count = series_record_count


@dataclass
class ExperimentMetrics:
    """Timing and outcome of one experiment within a run."""

    exp_id: str
    title: str
    wall_s: float
    #: ``"parallel"``, ``"serial"``, or ``"serial-fallback"`` (the worker
    #: failed and the experiment was re-run in the parent process).
    mode: str
    n_series: int = 0
    n_records: int = 0
    n_checks: int = 0
    checks_passed: int = 0
    checks: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    #: Degradation-aware verdict: ``pass`` / ``pass-degraded`` / ``fail``
    #: / ``skipped-insufficient-data`` / ``error`` / ``timeout``.
    status: str = "pass"
    #: Per-family input coverage for the families this experiment reads.
    coverage: dict = field(default_factory=dict)
    #: Execution attempts (1 = first try; >1 means retries happened).
    attempts: int = 1
    #: The experiment exceeded the per-experiment timeout.
    timed_out: bool = False
    #: Exception text when the experiment failed even serially.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Ran to completion with every shape check passing."""
        return self.error is None and self.checks_passed == self.n_checks

    @classmethod
    def from_result(
        cls, result, wall_s: float, mode: str, attempts: int = 1
    ) -> "ExperimentMetrics":
        """Build metrics from an :class:`ExperimentResult`."""
        return cls(
            exp_id=result.exp_id,
            title=result.title,
            wall_s=wall_s,
            mode=mode,
            n_series=len(result.series),
            n_records=_series_record_count(result.series),
            n_checks=len(result.checks),
            checks_passed=sum(bool(v) for v in result.checks.values()),
            checks={k: bool(v) for k, v in result.checks.items()},
            notes=list(result.notes),
            status=getattr(result, "status", "pass"),
            coverage=dict(getattr(result, "coverage", {}) or {}),
            attempts=attempts,
        )

    @classmethod
    def from_error(
        cls,
        exp_id: str,
        wall_s: float,
        mode: str,
        exc,
        attempts: int = 1,
        timed_out: bool = False,
    ) -> "ExperimentMetrics":
        """Build metrics for an experiment that raised (or timed out)."""
        return cls(
            exp_id=exp_id,
            title="",
            wall_s=wall_s,
            mode=mode,
            status="timeout" if timed_out else "error",
            attempts=attempts,
            timed_out=timed_out,
            error=f"{type(exc).__name__}: {exc}",
        )


@dataclass
class RunReport:
    """One full run: campaign context, cache outcome, per-experiment metrics."""

    seed: int
    scale: float
    n_errors: int
    jobs: int
    total_wall_s: float = 0.0
    #: Time spent warming the coalesced fault stream before the fan-out.
    setup_s: float = 0.0
    #: ``CacheOutcome.to_dict()`` when a campaign cache was consulted.
    cache: dict | None = None
    #: Per-family ``IngestStats.to_dict()`` when the campaign came from
    #: stored (possibly dirty) telemetry.
    ingest: dict | None = None
    #: ``InjectionManifest.to_dict()`` when --inject corrupted the input.
    injection: dict | None = None
    #: Ingest policy the telemetry was loaded under (strict/repair/skip).
    ingest_policy: str | None = None
    #: Coverage floor below which experiments were skipped.
    min_coverage: float = 0.0
    experiments: list = field(default_factory=list)
    created: float = field(default_factory=time.time)
    #: Span tree from :mod:`repro.obs` (child-process spans merged in),
    #: populated when tracing was enabled for the run.
    trace: dict | None = None
    #: ``MetricsRegistry.export()`` snapshot taken at the end of the run.
    metrics: dict | None = None
    #: Per-experiment cProfile hotspot rows (``--profile`` only).
    profiles: dict | None = None

    @property
    def created_iso(self) -> str:
        """ISO-8601 UTC rendering of :attr:`created` (second resolution)."""
        from repro._util import iso

        return iso(self.created) + "Z"

    @property
    def all_pass(self) -> bool:
        """Every experiment completed with all shape checks passing."""
        return all(m.ok for m in self.experiments)

    @property
    def n_failed(self) -> int:
        """Experiments with an error or at least one failed check."""
        return sum(not m.ok for m in self.experiments)

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "seed": self.seed,
            "scale": self.scale,
            "n_errors": self.n_errors,
            "jobs": self.jobs,
            "total_wall_s": self.total_wall_s,
            "setup_s": self.setup_s,
            "cache": self.cache,
            "ingest": self.ingest,
            "injection": self.injection,
            "ingest_policy": self.ingest_policy,
            "min_coverage": self.min_coverage,
            "all_pass": self.all_pass,
            "n_failed": self.n_failed,
            "created": self.created,
            "created_iso": self.created_iso,
            "experiments": [asdict(m) for m in self.experiments],
            "trace": self.trace,
            "metrics": self.metrics,
            "profiles": self.profiles,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path: str | os.PathLike) -> None:
        """Write the JSON report to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    def summary(self) -> str:
        """One-paragraph human summary for the CLI footer."""
        lines = [
            f"ran {len(self.experiments)} experiments in "
            f"{self.total_wall_s:.2f}s (jobs={self.jobs})"
        ]
        if self.cache is not None:
            state = "hit" if self.cache.get("hit") else "miss"
            lines.append(
                f"campaign cache: {state} {self.cache.get('key', '?')} "
                f"({self.cache.get('path', '?')})"
            )
        if self.injection is not None:
            lines.append(
                f"fault injection: profile={self.injection.get('profile', '?')} "
                f"seed={self.injection.get('seed', '?')} "
                f"({self.injection.get('n_events', 0)} fault events)"
            )
        if self.ingest:
            cov = ", ".join(
                f"{family}={stats.get('coverage', 1.0):.1%}"
                for family, stats in sorted(self.ingest.items())
            )
            policy = f" (policy={self.ingest_policy})" if self.ingest_policy else ""
            lines.append(f"telemetry coverage: {cov}{policy}")
        degraded = sum(m.status == "pass-degraded" for m in self.experiments)
        skipped = sum(
            m.status == "skipped-insufficient-data" for m in self.experiments
        )
        timeouts = sum(m.timed_out for m in self.experiments)
        if degraded:
            lines.append(f"experiments passing on degraded data: {degraded}")
        if skipped:
            lines.append(f"experiments skipped for insufficient coverage: {skipped}")
        if timeouts:
            lines.append(f"experiments timed out: {timeouts}")
        if self.n_failed:
            lines.append(f"experiments failing checks or erroring: {self.n_failed}")
        return "\n".join(lines)
