"""Concurrent experiment execution with a graceful serial fallback.

Experiments are independent read-only consumers of the campaign arrays,
so a full regeneration run is embarrassingly parallel across
experiments.  The runner fans registered experiment ids out over a
:class:`~concurrent.futures.ProcessPoolExecutor`; each task ships only
its id string, and workers obtain the campaign either by fork
inheritance (free on Linux), by unpickling it once per worker at
initialisation, or by loading a campaign directory's binary mirrors.

Any worker or pool failure degrades to re-running the affected
experiments serially in the parent (mode ``"serial-fallback"`` in the
metrics) -- a failed worker never loses an experiment, it only loses
the speedup.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.run.report import ExperimentMetrics, RunReport

# Campaign handed to pool workers. Under the ``fork`` start method the
# worker inherits the parent's module state, so the campaign (and its
# warmed fault cache) is shared copy-on-write with no serialisation.
_WORKER_CAMPAIGN = None


def _worker_init(campaign, campaign_dir) -> None:
    """Pool initializer: bind the campaign in this worker process."""
    global _WORKER_CAMPAIGN
    if campaign is not None:
        _WORKER_CAMPAIGN = campaign
    elif campaign_dir is not None:
        from repro.logs.campaign_io import (
            campaign_from_records,
            load_campaign_records,
        )

        _WORKER_CAMPAIGN = campaign_from_records(
            load_campaign_records(campaign_dir)
        )
    else:  # pragma: no cover - defensive; triggers the serial fallback
        raise RuntimeError("worker has no campaign source")


def _worker_run(exp_id: str):
    """Run one experiment in a worker; returns (exp_id, result, wall_s)."""
    from repro import experiments

    t0 = time.perf_counter()
    result = experiments.run(exp_id, _WORKER_CAMPAIGN)
    return exp_id, result, time.perf_counter() - t0


@dataclass
class ExperimentRunner:
    """Run registered experiments, optionally ``jobs``-way in parallel.

    ``jobs <= 1`` runs serially (the correctness baseline); ``jobs > 1``
    uses a process pool with serial fallback.  ``campaign_dir`` lets
    workers load the campaign from a stored directory's binary mirrors
    instead of receiving a pickled copy -- preferred under the ``spawn``
    start method where fork inheritance is unavailable.
    """

    jobs: int = 0
    campaign_dir: str | os.PathLike | None = None
    include_extensions: bool = False

    # ------------------------------------------------------------------
    def run(self, campaign, exp_ids=None):
        """Execute experiments; returns ``(results, report)``.

        ``results`` maps exp id to :class:`ExperimentResult` in the
        requested order (experiments that raised are omitted); the
        :class:`RunReport` carries per-experiment metrics for every id,
        including failures.
        """
        from repro import experiments

        if exp_ids is None:
            exp_ids = [
                e
                for e, _ in experiments.list_experiments(
                    include_extensions=self.include_extensions
                )
            ]
        exp_ids = list(exp_ids)
        known = dict(experiments.list_experiments(include_extensions=True))
        unknown = [e for e in exp_ids if e not in known]
        if unknown:
            raise ValueError(
                f"unknown experiment ids: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )

        report = RunReport(
            seed=int(campaign.seed),
            scale=float(campaign.scale),
            n_errors=int(campaign.n_errors),
            jobs=int(self.jobs),
        )
        t_total = time.perf_counter()
        metrics: dict[str, ExperimentMetrics] = {}
        results: dict = {}

        if self.jobs > 1 and len(exp_ids) > 1:
            # Warm the coalesced fault stream once in the parent so forked
            # workers share it instead of each re-coalescing the stream.
            t0 = time.perf_counter()
            campaign.faults()
            report.setup_s = time.perf_counter() - t0
            pending = self._run_parallel(campaign, exp_ids, metrics, results)
        else:
            pending = exp_ids

        for exp_id in pending:
            mode = "serial" if self.jobs <= 1 or len(exp_ids) <= 1 else "serial-fallback"
            t0 = time.perf_counter()
            try:
                result = experiments.run(exp_id, campaign)
            except Exception as exc:
                metrics[exp_id] = ExperimentMetrics.from_error(
                    exp_id, time.perf_counter() - t0, mode, exc
                )
                continue
            wall = time.perf_counter() - t0
            results[exp_id] = result
            metrics[exp_id] = ExperimentMetrics.from_result(result, wall, mode)

        report.total_wall_s = time.perf_counter() - t_total
        report.experiments = [metrics[e] for e in exp_ids if e in metrics]
        ordered = {e: results[e] for e in exp_ids if e in results}
        return ordered, report

    # ------------------------------------------------------------------
    def _run_parallel(self, campaign, exp_ids, metrics, results) -> list:
        """Fan out over a process pool; returns ids needing a serial run."""
        if multiprocessing.get_start_method() == "fork":
            # Fork shares the campaign (initargs are not serialised).
            initargs = (campaign, None)
        elif self.campaign_dir is not None:
            initargs = (None, str(self.campaign_dir))
        else:
            initargs = (campaign, None)  # pickled once per worker

        pending: list = []
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(exp_ids)),
                initializer=_worker_init,
                initargs=initargs,
            ) as pool:
                futures = {pool.submit(_worker_run, e): e for e in exp_ids}
                for future in as_completed(futures):
                    exp_id = futures[future]
                    try:
                        _, result, wall = future.result()
                    except Exception:
                        pending.append(exp_id)
                        continue
                    results[exp_id] = result
                    metrics[exp_id] = ExperimentMetrics.from_result(
                        result, wall, "parallel"
                    )
        except (BrokenProcessPool, OSError):
            # Pool never came up (restricted environment): run everything
            # not yet finished serially.
            pending = [e for e in exp_ids if e not in metrics]
        return pending
