"""Concurrent experiment execution with timeouts, retries and fallback.

Experiments are independent read-only consumers of the campaign arrays,
so a full regeneration run is embarrassingly parallel across
experiments.  The runner fans registered experiment ids out over a
:class:`~concurrent.futures.ProcessPoolExecutor`; each task ships only
its id string, and workers obtain the campaign either by fork
inheritance (free on Linux), by unpickling it once per worker at
initialisation, or by loading a campaign directory's binary mirrors.

Robustness model:

- a worker that *raises* degrades to re-running the experiment serially
  in the parent (mode ``"serial-fallback"``), with bounded
  retry-with-backoff on top;
- a worker that *wedges* past the per-experiment ``timeout_s`` is
  abandoned (its slot is written off, its process terminated at
  shutdown) and the experiment is re-submitted up to ``retries`` times
  before being reported as ``timeout`` -- one stuck experiment costs
  its own result, never the whole parallel run;
- a pool that never comes up (restricted environments) runs everything
  serially, as before.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro import obs
from repro._util import full_jitter_backoff
from repro.obs.trace import attach_tree
from repro.run.report import ExperimentMetrics, RunReport

# Campaign handed to pool workers. Under the ``fork`` start method the
# worker inherits the parent's module state, so the campaign (and its
# warmed fault cache) is shared copy-on-write with no serialisation.
_WORKER_CAMPAIGN = None


def _worker_init(campaign, campaign_dir) -> None:
    """Pool initializer: bind the campaign in this worker process."""
    global _WORKER_CAMPAIGN
    if campaign is not None:
        _WORKER_CAMPAIGN = campaign
    elif campaign_dir is not None:
        from repro.logs.campaign_io import (
            campaign_from_records,
            load_campaign_records,
        )

        _WORKER_CAMPAIGN = campaign_from_records(
            load_campaign_records(campaign_dir)
        )
    else:  # pragma: no cover - defensive; triggers the serial fallback
        raise RuntimeError("worker has no campaign source")


def _worker_run(
    exp_id: str,
    min_coverage: float = 0.0,
    want_trace: bool = False,
    want_profile: bool = False,
):
    """Run one experiment in a worker.

    Returns ``(exp_id, result, wall_s, obs_payload)``: the worker
    captures its own spans/metrics/profiles into a fresh store (never
    the state a fork inherited) and ships them back for the parent to
    merge, so parallel runs produce one trace tree and one registry.
    """
    from repro import experiments, obs

    t0 = time.perf_counter()
    with obs.capture(trace=want_trace) as cap:
        obs.configure(profile=want_profile)
        try:
            result = experiments.run(
                exp_id, _WORKER_CAMPAIGN, min_coverage=min_coverage
            )
        finally:
            obs.configure(profile=False)
    return exp_id, result, time.perf_counter() - t0, cap.payload()


@dataclass
class ExperimentRunner:
    """Run registered experiments, optionally ``jobs``-way in parallel.

    ``jobs <= 1`` runs serially (the correctness baseline); ``jobs > 1``
    uses a process pool with serial fallback.  ``campaign_dir`` lets
    workers load the campaign from a stored directory's binary mirrors
    instead of receiving a pickled copy -- preferred under the ``spawn``
    start method where fork inheritance is unavailable.

    ``timeout_s`` bounds each experiment's wall time in the parallel
    path (a wedged worker is abandoned, not waited on); ``retries``
    bounds how often a failing or timed-out experiment is re-attempted,
    with full-jitter exponential backoff starting at ``backoff_s`` and
    capped at ``max_backoff_s`` for in-process retries (the jitter RNG
    is seeded by ``backoff_seed``, so retry schedules reproduce in
    tests).  ``min_coverage`` is forwarded to the experiment registry,
    which skips experiments whose input telemetry coverage is below it.
    """

    jobs: int = 0
    campaign_dir: str | os.PathLike | None = None
    include_extensions: bool = False
    timeout_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.25
    max_backoff_s: float = 5.0
    backoff_seed: int = 0
    min_coverage: float = 0.0

    @property
    def _backoff_rng(self) -> random.Random:
        rng = getattr(self, "_backoff_rng_cached", None)
        if rng is None:
            rng = random.Random(self.backoff_seed)
            self._backoff_rng_cached = rng
        return rng

    # ------------------------------------------------------------------
    def run(self, campaign, exp_ids=None):
        """Execute experiments; returns ``(results, report)``.

        ``results`` maps exp id to :class:`ExperimentResult` in the
        requested order (experiments that raised are omitted); the
        :class:`RunReport` carries per-experiment metrics for every id,
        including failures and timeouts.
        """
        from repro import experiments

        if exp_ids is None:
            exp_ids = [
                e
                for e, _ in experiments.list_experiments(
                    include_extensions=self.include_extensions
                )
            ]
        exp_ids = list(exp_ids)
        known = dict(experiments.list_experiments(include_extensions=True))
        unknown = [e for e in exp_ids if e not in known]
        if unknown:
            raise ValueError(
                f"unknown experiment ids: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )

        report = RunReport(
            seed=int(campaign.seed),
            scale=float(campaign.scale),
            n_errors=int(campaign.n_errors),
            jobs=int(self.jobs),
            min_coverage=float(self.min_coverage),
        )
        ingest = getattr(campaign, "ingest", None)
        if ingest:
            report.ingest = {
                family: stats.to_dict() for family, stats in ingest.items()
            }
        metrics: dict[str, ExperimentMetrics] = {}
        results: dict = {}
        worker_traces: dict[str, list] = {}

        with obs.span("run", attrs={"jobs": int(self.jobs)}) as run_sp:
            run_sp.add(experiments=len(exp_ids))
            if self.jobs > 1 and len(exp_ids) > 1:
                # Warm the coalesced fault stream once in the parent so
                # forked workers share it instead of each re-coalescing.
                with obs.span("runner.setup", transient=True) as setup_sp:
                    campaign.faults()
                report.setup_s = setup_sp.wall_s
                pending = self._run_parallel(
                    campaign, exp_ids, metrics, results, worker_traces
                )
            else:
                pending = exp_ids

            for exp_id in pending:
                mode = (
                    "serial"
                    if self.jobs <= 1 or len(exp_ids) <= 1
                    else "serial-fallback"
                )
                self._run_serial_one(campaign, exp_id, mode, metrics, results)

            # Merge child-process spans under the run span in *requested*
            # order -- never completion order -- so the trace tree shape
            # is identical between serial and parallel runs.
            for exp_id in exp_ids:
                for root in worker_traces.get(exp_id, ()):
                    attach_tree(run_sp, root)

        report.total_wall_s = run_sp.wall_s
        report.experiments = [metrics[e] for e in exp_ids if e in metrics]
        ordered = {e: results[e] for e in exp_ids if e in results}
        return ordered, report

    # ------------------------------------------------------------------
    def _run_serial_one(self, campaign, exp_id, mode, metrics, results) -> None:
        """Run one experiment in-process with bounded retry-with-backoff."""
        from repro import experiments

        attempts = 0
        while True:
            attempts += 1
            # Transient wrapper: the retry structure is environment-driven
            # noise in the trace; the experiment span inside it (opened by
            # the registry) is the stable node.
            with obs.span(
                "runner.attempt",
                transient=True,
                attrs={"exp_id": exp_id, "mode": mode, "attempt": attempts},
            ) as sp:
                try:
                    result = experiments.run(
                        exp_id, campaign, min_coverage=self.min_coverage
                    )
                except Exception as exc:
                    failure = exc
                else:
                    failure = None
            if failure is not None:
                if attempts <= self.retries:
                    # Full jitter (shared with the fleet supervisor):
                    # decorrelates experiments that failed together and
                    # caps the worst-case sleep however high the retry
                    # budget goes.
                    time.sleep(
                        full_jitter_backoff(
                            attempts,
                            self.backoff_s,
                            self.max_backoff_s,
                            self._backoff_rng,
                        )
                    )
                    continue
                obs.observe(f"experiment.wall_s.{exp_id}", sp.wall_s)
                metrics[exp_id] = ExperimentMetrics.from_error(
                    exp_id, sp.wall_s, mode, failure, attempts=attempts
                )
                return
            results[exp_id] = result
            obs.observe(f"experiment.wall_s.{exp_id}", sp.wall_s)
            metrics[exp_id] = ExperimentMetrics.from_result(
                result, sp.wall_s, mode, attempts=attempts
            )
            return

    # ------------------------------------------------------------------
    def _run_parallel(
        self, campaign, exp_ids, metrics, results, worker_traces
    ) -> list:
        """Fan out over a process pool; returns ids needing a serial run.

        Tasks are fed to the pool at most ``max_workers`` at a time so a
        per-experiment deadline measures *run* time, not queue time.  A
        future past its deadline is abandoned: the experiment is
        re-queued (up to ``retries`` times) and the wedged worker's slot
        is written off; if slots run out, the remainder falls back to
        the serial path.
        """
        if multiprocessing.get_start_method() == "fork":
            # Fork shares the campaign (initargs are not serialised).
            initargs = (campaign, None)
        elif self.campaign_dir is not None:
            initargs = (None, str(self.campaign_dir))
        else:
            initargs = (campaign, None)  # pickled once per worker

        max_workers = min(self.jobs, len(exp_ids))
        pending_serial: list = []
        abandoned = 0
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_worker_init,
                initargs=initargs,
            )
            queue = deque((e, 1) for e in exp_ids)
            in_flight: dict = {}  # future -> (exp_id, attempt, deadline)

            while queue or in_flight:
                capacity = max_workers - abandoned
                if capacity <= 0:
                    # Every slot is wedged; the rest runs serially.
                    pending_serial.extend(e for e, _ in queue)
                    queue.clear()
                    break
                while queue and len(in_flight) < capacity:
                    exp_id, attempt = queue.popleft()
                    future = pool.submit(
                        _worker_run,
                        exp_id,
                        self.min_coverage,
                        obs.tracing_enabled(),
                        obs.profiling_enabled(),
                    )
                    deadline = (
                        time.monotonic() + self.timeout_s
                        if self.timeout_s
                        else None
                    )
                    in_flight[future] = (exp_id, attempt, deadline)
                if not in_flight:
                    continue

                poll = 0.05 if self.timeout_s else None
                done, _ = wait(
                    list(in_flight), timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in done:
                    exp_id, attempt, _ = in_flight.pop(future)
                    try:
                        _, result, wall, payload = future.result()
                    except Exception:
                        # Worker raised or died: the serial fallback (with
                        # its own retry budget) picks this experiment up.
                        pending_serial.append(exp_id)
                        continue
                    roots = obs.merge_payload(payload)
                    if roots:
                        worker_traces[exp_id] = roots
                    results[exp_id] = result
                    obs.observe(f"experiment.wall_s.{exp_id}", wall)
                    metrics[exp_id] = ExperimentMetrics.from_result(
                        result, wall, "parallel", attempts=attempt
                    )

                now = time.monotonic()
                for future, (exp_id, attempt, deadline) in list(in_flight.items()):
                    if deadline is None or now <= deadline or future.done():
                        continue
                    # Past deadline: abandon the future (the worker may be
                    # wedged; it is terminated at shutdown) and either
                    # retry in a fresh slot or report the timeout.
                    del in_flight[future]
                    abandoned += 1
                    if attempt <= self.retries:
                        queue.append((exp_id, attempt + 1))
                    else:
                        metrics[exp_id] = ExperimentMetrics.from_error(
                            exp_id,
                            self.timeout_s,
                            "parallel",
                            TimeoutError(
                                f"experiment exceeded --timeout={self.timeout_s}s"
                            ),
                            attempts=attempt,
                            timed_out=True,
                        )
        except (BrokenProcessPool, OSError):
            # Pool never came up (restricted environment): run everything
            # not yet finished serially.
            pending_serial = [
                e for e in exp_ids if e not in metrics and e not in results
            ]
        finally:
            if pool is not None:
                if abandoned:
                    # Waiting would block on wedged workers; cut them loose
                    # and terminate whatever is still running.
                    pool.shutdown(wait=False, cancel_futures=True)
                    processes = getattr(pool, "_processes", None) or {}
                    for proc in list(processes.values()):
                        try:
                            proc.terminate()
                        except (OSError, AttributeError):  # pragma: no cover
                            pass
                else:
                    pool.shutdown(wait=True)
        return pending_serial
