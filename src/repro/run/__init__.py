"""Run subsystem: campaign caching, parallel experiment execution, run reports.

Sridharan-style coalescing studies are repeated batch analyses over a
fixed telemetry corpus; this subpackage makes that shape fast:

- :mod:`repro.run.cache` -- a content-addressed :class:`CampaignCache`
  keyed on (seed, scale, calibration fingerprint, package version) that
  persists generated campaigns (including the coalesced fault stream)
  via the :mod:`repro.logs.campaign_io` binary mirrors, so repeated CLI
  runs, benchmarks, and tests skip minutes of regeneration;
- :mod:`repro.run.runner` -- an :class:`ExperimentRunner` that executes
  registered experiments concurrently with a process pool (experiments
  are independent read-only consumers of the campaign arrays), with a
  graceful serial fallback when workers fail;
- :mod:`repro.run.report` -- per-experiment wall-time/record-count
  metrics and a machine-readable JSON :class:`RunReport`.
"""

from repro.run.cache import (
    CacheOutcome,
    CampaignCache,
    calibration_fingerprint,
    campaign_key,
    default_cache_dir,
)
from repro.run.report import ExperimentMetrics, RunReport
from repro.run.runner import ExperimentRunner

__all__ = [
    "CacheOutcome",
    "CampaignCache",
    "ExperimentMetrics",
    "ExperimentRunner",
    "RunReport",
    "calibration_fingerprint",
    "campaign_key",
    "default_cache_dir",
]
