"""Content-addressed campaign cache.

A cache entry is keyed on everything that determines a generated
campaign bit-for-bit: the RNG seed, the volume scale, a fingerprint of
the calibration constants, and the package version.  Entries are stored
as ordinary campaign directories (the :mod:`repro.logs.campaign_io`
binary mirrors -- an entry is itself loadable with ``astra-memrepro
analyze``), plus the coalesced fault stream (``faults.npy``) and a
``meta.json`` provenance record.

Invalidation is purely by key: changing the seed, the scale, any
calibration constant, or upgrading the package lands on a different
entry and regenerates.  Corrupt or truncated entries (checksum mismatch,
missing files) are treated as misses and rewritten.

Entries carry a provenance flag: ``"generated"`` entries were produced
by :class:`repro.synth.CampaignGenerator` inside this cache and may
satisfy :meth:`CampaignCache.get_or_generate`; ``"adopted"`` entries
were copied from a user-supplied campaign directory by
:meth:`CampaignCache.warm_from_records` and are only served back after
their record streams are verified equal to that directory's -- they
never masquerade as freshly generated data.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import asdict, dataclass, fields
from pathlib import Path

import numpy as np

import repro
from repro import obs
from repro.synth.config import PaperCalibration

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "ASTRA_MEMREPRO_CACHE_DIR"

_META_NAME = "meta.json"
_FAULTS_NAME = "faults.npy"


def default_cache_dir() -> Path:
    """The cache root: ``$ASTRA_MEMREPRO_CACHE_DIR``, else XDG cache."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "astra-memrepro"


def calibration_fingerprint(calibration: PaperCalibration | None = None) -> str:
    """Stable short hash of every calibration constant.

    Any edit to a :class:`PaperCalibration` field changes the
    fingerprint and therefore invalidates cached campaigns.
    """
    calibration = calibration or PaperCalibration()
    payload = {
        f.name: repr(getattr(calibration, f.name)) for f in fields(calibration)
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def campaign_key(
    seed: int, scale: float, calibration: PaperCalibration | None = None
) -> str:
    """Content-address for a generated campaign.

    Covers (seed, scale, calibration fingerprint, package version) --
    the full input surface of :class:`repro.synth.CampaignGenerator`
    under default machine config.
    """
    blob = json.dumps(
        {
            "seed": int(seed),
            "scale": repr(float(scale)),
            "calibration": calibration_fingerprint(calibration),
            "version": repro.__version__,
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:24]


@dataclass
class CacheOutcome:
    """What the cache did for one request (reported in the JSON report)."""

    key: str
    path: str
    hit: bool
    generate_s: float = 0.0
    load_s: float = 0.0
    store_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


def _errors_checksum(errors: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(errors).tobytes()).hexdigest()


class CampaignCache:
    """Persistent store of generated campaigns under a cache directory."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    # ------------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        """Directory holding the entry for ``key`` (may not exist)."""
        return self.directory / key

    # ------------------------------------------------------------------
    def get_or_generate(
        self,
        seed: int = 0,
        scale: float = 1.0,
        calibration: PaperCalibration | None = None,
    ):
        """Return ``(campaign, outcome)``, generating and storing on miss.

        A hit rebuilds a fully analysable campaign: record streams come
        from the entry's binary mirrors, the coalesced fault stream is
        pre-warmed from ``faults.npy``, and the ground-truth population
        and sensor field are regenerated deterministically from the seed
        (both are cheap next to error expansion and coalescing).
        """
        key = campaign_key(seed, scale, calibration)
        with obs.span("cache.lookup", prune=True, attrs={"key": key}) as sp:
            campaign = self._load(key, seed, scale, calibration)
        if campaign is not None:
            obs.count("cache.hit")
            outcome = CacheOutcome(
                key=key,
                path=str(self.entry_path(key)),
                hit=True,
                load_s=sp.wall_s,
            )
            return campaign, outcome
        obs.count("cache.miss")

        from repro.synth import CampaignGenerator

        with obs.span("campaign.generate", prune=True) as gen_sp:
            campaign = CampaignGenerator(
                seed=seed, scale=scale, calibration=calibration
            ).generate()
            campaign.faults()  # warm the coalesced stream so it persists
            gen_sp.add(records=int(campaign.n_errors))

        with obs.span("cache.store", prune=True, attrs={"key": key}) as st_sp:
            path = self._store(campaign, key, provenance="generated")
        outcome = CacheOutcome(
            key=key,
            path=str(path),
            hit=False,
            generate_s=gen_sp.wall_s,
            store_s=st_sp.wall_s,
        )
        return campaign, outcome

    # ------------------------------------------------------------------
    def warm_from_records(self, records):
        """Cache-accelerate a campaign loaded from a stored directory.

        ``records`` is a :class:`repro.logs.campaign_io.CampaignRecords`.
        If an entry exists whose record streams equal these records, the
        campaign is served with the persisted coalesced fault stream
        pre-warmed (the expensive part of repeated ``analyze`` runs).
        Otherwise the campaign is built from ``records``, its faults are
        coalesced once, and the result is stored (provenance
        ``"adopted"``) for the next run.
        """
        from repro.logs.campaign_io import campaign_from_records

        key = campaign_key(records.seed, records.scale)
        entry = self.entry_path(key)
        with obs.span("cache.lookup", prune=True, attrs={"key": key}) as sp:
            cached = self._read_entry(key)
            verified = cached is not None and all(
                np.array_equal(getattr(cached[0], name), getattr(records, name))
                for name in ("errors", "replacements", "het")
            )
        if verified:
            obs.count("cache.hit")
            stored, faults = cached
            campaign = campaign_from_records(stored)
            campaign._faults_cache = faults
            outcome = CacheOutcome(
                key=key,
                path=str(entry),
                hit=True,
                load_s=sp.wall_s,
            )
            return campaign, outcome
        obs.count("cache.miss")

        with obs.span("campaign.coalesce_warm", prune=True) as gen_sp:
            campaign = campaign_from_records(records)
            campaign.faults()
        with obs.span("cache.store", prune=True, attrs={"key": key}) as st_sp:
            path = self._store(campaign, key, provenance="adopted")
        outcome = CacheOutcome(
            key=key,
            path=str(path),
            hit=False,
            generate_s=gen_sp.wall_s,
            store_s=st_sp.wall_s,
        )
        return campaign, outcome

    # ------------------------------------------------------------------
    def evict(self, key: str) -> bool:
        """Remove one entry; returns whether anything was deleted."""
        entry = self.entry_path(key)
        if entry.is_dir():
            shutil.rmtree(entry)
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        for child in self.directory.iterdir():
            if child.is_dir() and (child / _META_NAME).exists():
                shutil.rmtree(child)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _store(self, campaign, key: str, provenance: str) -> Path:
        """Atomically write one entry (tmp directory + rename)."""
        from repro.logs.campaign_io import write_campaign

        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.directory / f".tmp-{key}-{uuid.uuid4().hex[:8]}"
        try:
            write_campaign(campaign, tmp, text_logs=False)
            faults = campaign.faults()
            np.save(tmp / _FAULTS_NAME, faults, allow_pickle=False)
            meta = {
                "key": key,
                "seed": int(campaign.seed),
                "scale": float(campaign.scale),
                "version": repro.__version__,
                "calibration": calibration_fingerprint(campaign.calibration),
                "n_errors": int(campaign.n_errors),
                "provenance": provenance,
                "sha256_errors": _errors_checksum(campaign.errors),
                "created": time.time(),
            }
            (tmp / _META_NAME).write_text(json.dumps(meta, indent=2) + "\n")
            final = self.entry_path(key)
            if final.exists():
                shutil.rmtree(final)
            os.replace(tmp, final)
            return final
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)

    def _read_entry(self, key: str):
        """Load an entry's (records, faults); ``None`` on miss/corruption."""
        from repro.faults.types import FAULT_DTYPE
        from repro.logs.campaign_io import load_campaign_records

        entry = self.entry_path(key)
        if not (entry / _META_NAME).exists():
            return None
        try:
            meta = json.loads((entry / _META_NAME).read_text())
            records = load_campaign_records(entry)
            faults = np.load(entry / _FAULTS_NAME, allow_pickle=False)
            if faults.dtype != FAULT_DTYPE:
                raise ValueError("fault dtype mismatch")
            if meta.get("sha256_errors") != _errors_checksum(records.errors):
                raise ValueError("errors checksum mismatch")
            records._provenance = meta.get("provenance", "generated")
            return records, faults
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None

    def _load(self, key: str, seed: int, scale: float, calibration):
        """Rebuild a generated-provenance campaign; ``None`` on miss."""
        cached = self._read_entry(key)
        if cached is None:
            return None
        records, faults = cached
        if getattr(records, "_provenance", None) != "generated":
            return None
        if records.seed != seed or records.scale != float(scale):
            return None

        from repro.synth import CampaignGenerator
        from repro.synth.campaign import Campaign
        from repro.synth.population import FaultPopulationGenerator
        from repro.synth.sensors import SensorFieldModel
        from repro.machine.cooling import CoolingModel

        gen = CampaignGenerator(seed=seed, scale=scale, calibration=calibration)
        population = FaultPopulationGenerator(
            seed=gen.seed,
            scale=gen.scale,
            calibration=gen.calibration,
            topology=gen.topology,
            address_map=gen.address_map,
        ).generate()
        return Campaign(
            seed=gen.seed,
            scale=gen.scale,
            calibration=gen.calibration,
            topology=gen.topology,
            node_config=gen.node_config,
            address_map=gen.address_map,
            population=population,
            errors=records.errors,
            replacements=records.replacements,
            het=records.het,
            sensors=SensorFieldModel(
                seed=gen.seed,
                cooling=CoolingModel(topology=gen.topology),
                calibration=gen.calibration,
            ),
            _faults_cache=faults,
        )
