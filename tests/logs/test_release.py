"""Tests for the section 2.4 data-release packager."""

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.logs.release import (
    FAILURE_HEADER,
    read_release,
    write_release,
)


@pytest.fixture(scope="module")
def release_dir(tmp_path_factory, small_campaign):
    directory = tmp_path_factory.mktemp("release")
    return write_release(
        small_campaign,
        directory,
        sensor_cadence_s=6 * 3600.0,
        sensor_nodes=[0, 1, 2, 3],
    )


class TestLayout:
    def test_files_present(self, release_dir):
        assert (release_dir / "memory_failures.txt").exists()
        assert (release_dir / "environment.txt").exists()
        assert (release_dir / "README.txt").exists()

    def test_header_matches_paper_fields(self, release_dir):
        first = (release_dir / "memory_failures.txt").read_text().splitlines()[0]
        assert first == FAILURE_HEADER
        # The paper's exact field list -- note: no column (derivable).
        for field in ("timestamp", "node", "socket", "failure_type",
                      "dimm_slot", "row", "rank", "bank", "bit_position",
                      "physical_address", "syndrome"):
            assert field in first
        assert "column" not in first

    def test_readme_describes_contents(self, release_dir, small_campaign):
        text = (release_dir / "README.txt").read_text()
        assert str(small_campaign.n_errors) in text
        assert "synthetic" in text


class TestRoundTrip:
    def test_ce_count_preserved(self, release_dir, small_campaign):
        data = read_release(release_dir)
        assert data.errors.size == small_campaign.n_errors

    def test_due_records_preserved(self, release_dir, small_campaign):
        data = read_release(release_dir)
        assert data.due_times.size == int(
            small_campaign.het["non_recoverable"].sum()
        )

    @staticmethod
    def _aligned(data, campaign):
        """Sort both sides on second-resolution time (what the release
        stores) so tie-breaking is identical."""
        original = campaign.errors.copy()
        original["time"] = np.floor(original["time"])
        order = ("time", "node", "address", "bit_pos")
        return np.sort(data.errors, order=order), np.sort(original, order=order)

    def test_fields_roundtrip(self, release_dir, small_campaign):
        data = read_release(release_dir)
        a, b = self._aligned(data, small_campaign)
        np.testing.assert_array_equal(a["time"], b["time"])
        for field in ("node", "socket", "slot", "rank", "bank", "bit_pos",
                      "address", "syndrome"):
            np.testing.assert_array_equal(a[field], b[field])

    def test_column_recovered_from_address(self, release_dir, small_campaign):
        """The release omits the column; the loader re-derives it."""
        data = read_release(release_dir)
        a, b = self._aligned(data, small_campaign)
        valid = b["address"] > 0
        np.testing.assert_array_equal(a["column"][valid], b["column"][valid])

    def test_analysis_runs_on_release(self, release_dir, small_campaign):
        """The full fault pipeline runs from the released text."""
        data = read_release(release_dir)
        faults = coalesce(data.errors)
        assert faults.size == small_campaign.faults().size

    def test_environment_slice(self, release_dir):
        data = read_release(release_dir)
        assert data.environment.size > 0
        assert set(np.unique(data.environment["node"])) == {0, 1, 2, 3}

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "r"
        bad.mkdir()
        (bad / "memory_failures.txt").write_text("wrong,header\n")
        (bad / "environment.txt").write_text("timestamp,node,sensor,value\n")
        with pytest.raises(ValueError):
            read_release(bad)
