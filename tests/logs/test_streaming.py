"""Tests for the streaming CE-log reader."""

import numpy as np
import pytest

from repro.logs.syslog import iter_ce_log, read_ce_log, write_ce_log
from util import bit_error, make_errors


@pytest.fixture()
def log_path(tmp_path):
    errors = make_errors(
        [bit_error(node=i % 7, t=float(i)) for i in range(250)]
    )
    path = tmp_path / "ce.log"
    write_ce_log(errors, path)
    return path, errors


class TestStreaming:
    def test_chunks_cover_log(self, log_path):
        path, errors = log_path
        chunks = list(iter_ce_log(path, chunk_records=100))
        sizes = [c.size for c, _ in chunks]
        assert sizes == [100, 100, 50]
        merged = np.concatenate([c for c, _ in chunks])
        np.testing.assert_array_equal(merged, read_ce_log(path).errors)

    def test_single_chunk(self, log_path):
        path, errors = log_path
        chunks = list(iter_ce_log(path, chunk_records=10_000))
        assert len(chunks) == 1
        assert chunks[0][0].size == 250

    def test_malformed_counted_per_chunk(self, log_path):
        path, _ = log_path
        with open(path, "a") as fh:
            fh.write("garbage line\n")
        chunks = list(iter_ce_log(path, chunk_records=10_000))
        assert sum(bad for _, bad in chunks) == 1

    def test_strict_raises(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("garbage\n")
        with pytest.raises(ValueError):
            list(iter_ce_log(path, strict=True))

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_text("")
        assert list(iter_ce_log(path)) == []

    def test_bad_chunk_size(self, log_path):
        path, _ = log_path
        with pytest.raises(ValueError):
            list(iter_ce_log(path, chunk_records=0))

    def test_streamed_aggregation_matches_batch(self, log_path):
        """Per-chunk counting + merge equals whole-file counting."""
        from repro.analysis.counts import counts_by
        from repro.parallel.sharding import merge_counts

        path, errors = log_path
        partials = [
            counts_by(chunk, "node", minlength=7)[0]
            for chunk, _ in iter_ce_log(path, chunk_records=64)
        ]
        merged = merge_counts(partials)
        direct, _ = counts_by(errors, "node", minlength=7)
        np.testing.assert_array_equal(merged, direct)
