"""Tests for the CE syslog format."""

import numpy as np
import pytest

from repro.logs.syslog import format_ce_record, read_ce_log, write_ce_log
from repro.faults.types import empty_errors
from util import bit_error, make_errors


@pytest.fixture()
def sample_errors():
    return make_errors(
        [
            bit_error(node=123, slot=9, rank=0, bank=3, column=17, bit=42, t=86400.0),
            bit_error(node=5, slot=0, rank=1, bank=15, column=0, bit=0, t=90000.0),
            # A storm record with no positional payload.
            dict(
                time=95000.0,
                node=7,
                socket=1,
                slot=10,
                rank=0,
                bank=-1,
                column=-1,
                bit_pos=-1,
                address=0,
                syndrome=0,
            ),
        ]
    )


class TestFormat:
    def test_line_shape(self, sample_errors):
        line = format_ce_record(sample_errors[0])
        assert line.startswith("1970-01-02T00:00:00 astra-n0123 kernel: EDAC CE")
        assert "slot=J" in line
        assert "bank=3" in line
        assert "row=-" in line  # Astra: no row info
        assert "bit=42" in line

    def test_missing_payload_dashes(self, sample_errors):
        line = format_ce_record(sample_errors[2])
        assert "bank=-" in line and "col=-" in line and "bit=-" in line


class TestRoundTrip:
    def test_write_read(self, tmp_path, sample_errors):
        path = tmp_path / "ce.log"
        n = write_ce_log(sample_errors, path)
        assert n == 3
        result = read_ce_log(path)
        assert result.n_malformed == 0
        np.testing.assert_array_equal(result.errors, sample_errors)

    def test_empty_log(self, tmp_path):
        path = tmp_path / "ce.log"
        write_ce_log(empty_errors(0), path)
        result = read_ce_log(path)
        assert result.errors.size == 0

    def test_large_roundtrip(self, tmp_path):
        """Chunked writer handles > one chunk of records."""
        rng = np.random.default_rng(0)
        n = 70_000
        e = empty_errors(n)
        e["time"] = np.sort(rng.uniform(0, 1e6, n)).round()
        e["node"] = rng.integers(0, 2592, n)
        e["slot"] = rng.integers(0, 16, n)
        e["socket"] = e["slot"] // 8
        e["rank"] = rng.integers(0, 2, n)
        e["bank"] = rng.integers(0, 16, n)
        e["column"] = rng.integers(0, 1024, n)
        e["bit_pos"] = rng.integers(0, 72, n)
        e["address"] = rng.integers(0, 2**40, n).astype(np.uint64)
        e["syndrome"] = rng.integers(0, 256, n)
        path = tmp_path / "big.log"
        write_ce_log(e, path)
        back = read_ce_log(path).errors
        np.testing.assert_array_equal(back, e)

    def test_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_ce_log(np.zeros(3), tmp_path / "x.log")


class TestMalformed:
    def test_garbage_lines_skipped(self, tmp_path, sample_errors):
        path = tmp_path / "ce.log"
        write_ce_log(sample_errors, path)
        with open(path, "a") as fh:
            fh.write("this is not a CE record\n")
            fh.write("2019-01-01T00:00:00 astra-n0001 kernel: EDAC CE broken\n")
        result = read_ce_log(path)
        assert result.errors.size == 3
        assert result.n_malformed == 2

    def test_strict_mode_raises(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("garbage\n")
        with pytest.raises(ValueError):
            read_ce_log(path, strict=True)

    def test_blank_lines_ignored(self, tmp_path, sample_errors):
        path = tmp_path / "ce.log"
        write_ce_log(sample_errors, path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        result = read_ce_log(path)
        assert result.errors.size == 3
        assert result.n_malformed == 0


class TestPipelineFromText:
    def test_synthetic_campaign_roundtrip(self, tmp_path, small_campaign):
        """The full analysis input can be reconstructed from text logs."""
        sub = small_campaign.errors[:5000]
        path = tmp_path / "ce.log"
        write_ce_log(sub, path)
        back = read_ce_log(path).errors
        # Timestamps render at second resolution; everything else exact.
        assert np.max(np.abs(back["time"] - sub["time"])) < 1.0
        for field in sub.dtype.names:
            if field == "time":
                continue
            np.testing.assert_array_equal(back[field], sub[field])
