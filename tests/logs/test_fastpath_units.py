"""Unit tests for the vectorised fast-path primitives.

Each parser primitive's accept/reject behaviour must be a strict subset
of the per-line grammar it mirrors (``int``, ``float``,
``np.datetime64``, ``str.strip``), and each emit primitive must render
byte-for-byte what the f-string writers would.
"""

import io

import numpy as np
import pytest

from repro.logs import fastpath


def _spans(*tokens):
    """Pack byte tokens into one buffer; returns (data, starts, ends)."""
    buf = b"\x00".join(tokens)
    starts, ends, pos = [], [], 0
    for t in tokens:
        starts.append(pos)
        ends.append(pos + len(t))
        pos += len(t) + 1
    return (
        np.frombuffer(buf, dtype=np.uint8),
        np.array(starts, dtype=np.int64),
        np.array(ends, dtype=np.int64),
    )


class TestIterBlocks:
    @pytest.mark.parametrize("chunk_bytes", [3, 7, 64, 1 << 20])
    @pytest.mark.parametrize(
        "content",
        [
            b"alpha\nbeta\ngamma\n",
            b"no trailing newline",
            b"crlf\r\nlines\r\n",
            b"lone\rcarriage\rreturns",
            b"\r\nsplit\r\npair\r",
            b"\n\nblank\n\n\nlines\n",
            b"",
        ],
    )
    def test_matches_text_mode(self, tmp_path, content, chunk_bytes):
        """Line splitting matches text-mode universal newlines exactly."""
        path = tmp_path / "log"
        path.write_bytes(content)
        with open(path) as fh:
            expected = [line.rstrip("\n") for line in fh]
        got = []
        with open(path, "rb") as fh:
            for data, starts, ends in fastpath.iter_blocks(fh, chunk_bytes):
                raw = data.tobytes()
                got.extend(
                    raw[s:e].decode() for s, e in zip(starts, ends)
                )
        assert got == expected

    def test_split_crlf_across_reads(self):
        """A \\r\\n pair cut by the read boundary is still one newline."""
        content = b"ab\r\ncd\r\nef"
        for chunk_bytes in range(2, len(content) + 1):
            got = []
            for data, starts, ends in fastpath.iter_blocks(
                io.BytesIO(content), chunk_bytes
            ):
                raw = data.tobytes()
                got.extend(raw[s:e] for s, e in zip(starts, ends))
            assert got == [b"ab", b"cd", b"ef"], chunk_bytes


class TestCleanSpans:
    def test_strip_and_triage(self):
        data, starts, ends = _spans(
            b"  padded  ", b"", b"\ttabs\t", b"ok", b"non-ascii \xc3\xa9", b"   "
        )
        cs, ce, empty, dirty = fastpath.clean_spans(data, starts, ends)
        raw = data.tobytes()
        assert raw[cs[0]:ce[0]] == b"padded"
        assert raw[cs[2]:ce[2]] == b"tabs"
        assert raw[cs[3]:ce[3]] == b"ok"
        assert list(empty) == [False, True, False, False, False, True]
        assert list(dirty) == [False, False, False, False, True, False]

    def test_pathological_whitespace_goes_dirty(self):
        data, starts, ends = _spans(b" " * 40 + b"x" + b" " * 40)
        _, _, empty, dirty = fastpath.clean_spans(data, starts, ends)
        assert not empty[0] and dirty[0]


class TestSplitTokens:
    def test_exact_token_count(self):
        data, starts, ends = _spans(b"a b c", b"a b", b"a  b c", b"a b c d")
        ts, te, ok = fastpath.split_tokens(data, starts, ends, 3)
        assert list(ok) == [True, False, False, False]
        raw = data.tobytes()
        assert [raw[ts[0, k]:te[0, k]] for k in range(3)] == [b"a", b"b", b"c"]

    def test_head_tokens_free_tail(self):
        data, starts, ends = _spans(b"a b tail with spaces", b"a b", b"one")
        ts, te, ok = fastpath.split_head_tokens(data, starts, ends, 2)
        assert list(ok) == [True, False, False]
        raw = data.tobytes()
        assert raw[ts[0, 2]:te[0, 2]] == b"tail with spaces"

    def test_no_separators_anywhere(self):
        data, starts, ends = _spans(b"abc", b"def")
        _, _, ok = fastpath.split_tokens(data, starts, ends, 2)
        assert not ok.any()


class TestMatching:
    def test_prefix_vocab_equals(self):
        data, starts, ends = _spans(b"socket=1", b"sock", b"socket=", b"x")
        ok = fastpath.has_prefix(data, starts, ends, b"socket=")
        assert list(ok) == [True, False, True, False]
        eq = fastpath.token_equals(data, starts, ends, b"sock")
        assert list(eq) == [False, True, False, False]
        idx, okv = fastpath.match_vocab(data, starts, ends, [b"x", b"sock"])
        assert list(okv) == [False, True, False, True]
        assert idx[1] == 1 and idx[3] == 0

    def test_has_prefixes_table(self):
        table = fastpath.compile_prefixes([b"row=", b"addr=0x"])
        data, s, e = _spans(b"row=1 addr=0x2", b"row=1 addr=1")
        ts, te, _ = fastpath.split_tokens(data, s, e, 2)
        ok = fastpath.has_prefixes(data, ts, te, table)
        assert list(ok) == [True, False]


class TestParsers:
    def test_uint_matches_int(self):
        tokens = [b"0", b"7", b"042", b"123456", b"", b"12a", b"-3",
                  b"9" * 18, b"9" * 19]
        data, s, e = _spans(*tokens)
        val, ok = fastpath.parse_uint(data, s, e)
        for i, t in enumerate(tokens):
            valid = t.isdigit() and len(t) <= 18
            assert ok[i] == valid, t
            if valid:
                assert val[i] == int(t)

    def test_leading_zero(self):
        data, s, e = _spans(b"042", b"0", b"40", b"")
        assert list(fastpath.leading_zero(data, s, e)) == [
            True, False, False, False,
        ]

    def test_hex_matches_int(self):
        tokens = [b"0", b"ff", b"00012345678a", b"xyz", b"", b"ABC"]
        data, s, e = _spans(*tokens)
        val, ok = fastpath.parse_hex(data, s, e)
        for i, t in enumerate(tokens):
            try:
                expected = int(t, 16)
            except ValueError:
                expected = None
            assert ok[i] == (expected is not None), t
            if expected is not None:
                assert val[i] == expected

    def test_decimal_bit_identical_to_float(self):
        # (token, fast-grammar accepts).  The accepted set is a strict
        # subset of float(): ".5" and "3." parse on the slow path but
        # the fast grammar requires digits on both sides of the dot.
        cases = [
            (b"41.50", True), (b"-0.25", True), (b"123456.78", True),
            (b"0.00", True), (b"1e3", False), (b"nan", False),
            (b"12", False), (b".5", False), (b"3.", False),
            (b"1.2.3", False),
        ]
        data, s, e = _spans(*[t for t, _ in cases])
        val, ok = fastpath.parse_decimal(data, s, e)
        for i, (t, accepted) in enumerate(cases):
            assert ok[i] == accepted, t
            if accepted:
                assert val[i] == float(t.decode())  # exact, not approximate

    def test_iso_matches_datetime64(self):
        # (token, fast-grammar accepts).  Rejections are a superset of
        # datetime64's: the space-separated form parses on the slow path
        # but the fast grammar requires the canonical T separator.
        cases = [
            (b"2019-03-04T12:34:56", True),
            (b"2020-02-29T00:00:00", True),   # leap day
            (b"2019-02-29T00:00:00", False),  # not a leap year
            (b"2100-02-29T00:00:00", False),  # century non-leap
            (b"2000-02-29T23:59:59", True),   # 400-year leap
            (b"2019-13-01T00:00:00", False),
            (b"2019-00-01T00:00:00", False),
            (b"2019-04-31T00:00:00", False),
            (b"2019-01-01T24:00:00", False),
            (b"2019-01-01T00:60:00", False),
            (b"2019-01-01", False),
            (b"2019-01-01 00:00:00", False),
        ]
        data, s, e = _spans(*[t for t, _ in cases])
        val, ok = fastpath.parse_iso_seconds(data, s, e)
        for i, (t, accepted) in enumerate(cases):
            assert ok[i] == accepted, t
            if accepted:
                expected = int(np.datetime64(t.decode(), "s").astype(np.int64))
                assert val[i] == expected


class TestEmit:
    def test_uint_digits(self):
        mat, widths = fastpath.uint_digits([0, 7, 123, 4567], 4)
        assert list(widths) == [4, 4, 4, 4]
        lines = fastpath.build_lines(4, [(mat, widths)])
        assert lines == b"0000\n0007\n0123\n4567\n"

    def test_opt_uint_digits_dash(self):
        mat, widths = fastpath.opt_uint_digits([-1, 5])
        assert fastpath.build_lines(2, [(mat, widths)]) == b"-\n5\n"

    def test_hex_digits(self):
        mat, widths = fastpath.hex_digits([0x2B, 0], 2)
        assert fastpath.build_lines(2, [(mat, widths)]) == b"2b\n00\n"

    def test_choice_bytes(self):
        mat, widths = fastpath.choice_bytes([0, 2, 1], [b"-", b"A", b"BB"])
        assert fastpath.build_lines(3, [(mat, widths)]) == b"-\nBB\nA\n"

    def test_iso_bytes_round_trip(self):
        times = [0, 1551702896, 253402300799]
        mat, widths = fastpath.iso_bytes(times)
        rendered = fastpath.build_lines(3, [(mat, widths)]).split(b"\n")[:3]
        for t, line in zip(times, rendered):
            assert line.decode() == str(np.datetime64(int(t), "s"))

    def test_str_matrix_left_align(self):
        mat, widths = fastpath.str_matrix(np.asarray(["ab", "c", ""], dtype="S"))
        out = fastpath.build_lines(
            3, [b"<", (mat, widths, "left"), b">"]
        )
        assert out == b"<ab>\n<c>\n<>\n"

    def test_build_lines_mixed_segments(self):
        umat, uw = fastpath.uint_digits([5, 42])
        out = fastpath.build_lines(2, [b"n=", (umat, uw), b"!"])
        assert out == b"n=5!\nn=42!\n"

    def test_build_lines_empty(self):
        assert fastpath.build_lines(0, [b"x"]) == b""
