"""Regression tests for the benchmark report differ (PR 6 bugfix)."""

import json

from repro.logs.bench_compare import compare, load_times, main


def _write_report(path, results):
    path.write_text(json.dumps({"schema": 1, "results": results}))
    return path


class TestOneSidedFamilies:
    def test_new_and_removed_labels(self):
        old = {("ce", "emit"): 1.0, ("legacy", "ingest-clean"): 2.0}
        new = {("ce", "emit"): 1.0, ("fleet", "aggregate"): 3.0}
        regressions, improvements, uncompared = compare(old, new, 0.10)
        assert regressions == [] and improvements == []
        assert (("fleet", "aggregate"), "new") in uncompared
        assert (("legacy", "ingest-clean"), "removed") in uncompared

    def test_one_sided_family_does_not_fail_exit_code(self, tmp_path, capsys):
        old = _write_report(
            tmp_path / "old.json",
            {"ce": {"emit": {"fast_s": 1.0}}},
        )
        new = _write_report(
            tmp_path / "new.json",
            {"ce": {"emit": {"fast_s": 1.0}},
             "fleet": {"aggregate": {"fast_s": 9.9}}},
        )
        assert main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "new" in out and "fleet/aggregate" in out

    def test_true_regression_still_exits_one(self, tmp_path):
        old = _write_report(
            tmp_path / "old.json", {"ce": {"emit": {"fast_s": 1.0}}}
        )
        new = _write_report(
            tmp_path / "new.json",
            {"ce": {"emit": {"fast_s": 2.0}},
             "only-new": {"op": {"fast_s": 1.0}}},
        )
        assert main([str(old), str(new)]) == 1


class TestMalformedEntries:
    def test_non_dict_and_null_entries_are_skipped(self, tmp_path):
        path = _write_report(
            tmp_path / "r.json",
            {
                "ce": {"emit": {"fast_s": 1.5}, "note": "hand annotation"},
                "comment": "not an ops dict",
                "het": {"ingest-clean": {"fast_s": None}},
                "bmc": {"ingest-clean": {"slow_s": 2.0}},
            },
        )
        assert load_times(path) == {("ce", "emit"): 1.5}

    def test_results_not_a_dict(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"results": ["oops"]}))
        assert load_times(path) == {}
