"""Differential parity: vectorised fast-path ingest vs the per-line gear.

Every text family (CE syslog, HET, BMC CSV, inventory) is run through
both gears under every ingest policy, on clean logs and on logs
corrupted by each :mod:`repro.inject` profile.  The two gears must be
indistinguishable: identical parsed records, identical
:class:`IngestStats` (minus the fast path's own ``fast_lines`` field),
identical quarantine sidecar bytes, identical obs counters (minus
``*.fastpath_lines``), and identical strict-mode errors.
"""

import shutil

import numpy as np
import pytest

from repro import obs
from repro._util import DAY_S, epoch
from repro.faults.types import empty_errors
from repro.inject.corruptor import LogCorruptor
from repro.logs.bmc import ingest_bmc_log, write_bmc_log
from repro.logs.het import ingest_het_log, write_het_log
from repro.logs.ingest import MalformedRecordError, quarantine_path
from repro.logs.inventory import (
    InventoryModel,
    ingest_inventory_snapshots,
    write_inventory_snapshots,
)
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.het import EVENT_TYPES, HET_DTYPE, NON_RECOVERABLE_EVENTS
from repro.synth.replacements import REPLACEMENT_DTYPE, Component
from repro.synth.sensors import SensorFieldModel

T0 = epoch("2019-03-04")
PROFILES = ["clean", "light", "moderate", "hostile"]
POLICIES = ["strict", "repair", "skip"]


# ----------------------------------------------------------------------
# Clean log builders (one per family)
# ----------------------------------------------------------------------
def _build_ce(path):
    rng = np.random.default_rng(42)
    n = 3000
    e = empty_errors(n)
    e["time"] = T0 + np.sort(rng.integers(0, 86400, n)).astype(float)
    e["node"] = rng.integers(0, 2592, n)
    e["socket"] = rng.integers(0, 2, n)
    e["slot"] = rng.integers(-1, 16, n)
    e["rank"] = rng.integers(0, 2, n)
    e["bank"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 8, n))
    e["row"] = np.where(rng.random(n) < 0.8, -1, rng.integers(0, 1 << 17, n))
    e["column"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 1024, n))
    e["bit_pos"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 72, n))
    e["address"] = rng.integers(0, 1 << 40, n).astype(np.uint64)
    e["syndrome"] = rng.integers(0, 256, n)
    write_ce_log(e, path)


def _build_het(path):
    rng = np.random.default_rng(43)
    n = 2000
    h = np.zeros(n, dtype=HET_DTYPE)
    h["time"] = T0 + np.sort(rng.integers(0, 86400, n)).astype(float)
    h["node"] = rng.integers(0, 2592, n)
    h["event"] = rng.integers(0, len(EVENT_TYPES), n)
    h["non_recoverable"] = np.isin(h["event"], sorted(NON_RECOVERABLE_EVENTS))
    write_het_log(h, path)


def _build_bmc(path):
    model = SensorFieldModel(seed=2)
    write_bmc_log(path, model, [1, 2, 3], T0, T0 + 1800.0)


def _build_inventory(path):
    tiny = AstraTopology(n_racks=1, chassis_per_rack=3, nodes_per_chassis=2)
    events = np.zeros(3, dtype=REPLACEMENT_DTYPE)
    events[0] = (T0 + 0.5 * DAY_S, Component.PROCESSOR, 1, 0, -1)
    events[1] = (T0 + 1.5 * DAY_S, Component.DIMM, 2, -1, 9)
    events[2] = (T0 + 2.5 * DAY_S, Component.MOTHERBOARD, 3, -1, -1)
    model = InventoryModel(events, tiny, NodeConfig())
    write_inventory_snapshots(path, model, [T0 + i * DAY_S for i in range(4)])


def _ingest_ce(path, policy):
    r = ingest_ce_log(path, policy=policy)
    return r.errors, r.stats


FAMILIES = {
    "ce": ("ce.log", _build_ce, _ingest_ce, False),
    "het": ("het.log", _build_het, ingest_het_log, False),
    "bmc": ("bmc.csv", _build_bmc, ingest_bmc_log, True),
    "inventory": ("inventory.log", _build_inventory,
                  ingest_inventory_snapshots, False),
}


@pytest.fixture(scope="module")
def log_files(tmp_path_factory):
    """{(family, profile): pristine log path}, built once."""
    root = tmp_path_factory.mktemp("parity-logs")
    paths = {}
    for family, (filename, build, _, has_header) in FAMILIES.items():
        clean = root / f"clean-{filename}"
        build(clean)
        paths[(family, "clean")] = clean
        for profile in PROFILES[1:]:
            corrupted = root / f"{profile}-{filename}"
            shutil.copyfile(clean, corrupted)
            LogCorruptor(profile, seed=7).corrupt_text_file(
                corrupted, has_header=has_header
            )
            paths[(family, profile)] = corrupted
    return paths


def _run_gear(ingest, path, policy, slow, monkeypatch):
    """One ingest run; returns (result, stats_dict, error, sidecar, counters)."""
    if slow:
        monkeypatch.setenv("ASTRA_MEMREPRO_SLOW_INGEST", "1")
    else:
        monkeypatch.delenv("ASTRA_MEMREPRO_SLOW_INGEST", raising=False)
    sidecar = quarantine_path(path)
    if sidecar.exists():
        sidecar.unlink()
    obs.reset()
    result, stats, error = None, None, None
    try:
        result, stats = ingest(path, policy)
    except MalformedRecordError as exc:
        error = str(exc)
    counters = {
        k: v
        for k, v in obs.get_metrics().export()["counters"].items()
        if "fastpath" not in k
    }
    sidecar_bytes = sidecar.read_bytes() if sidecar.exists() else None
    stats_dict = None
    if stats is not None:
        stats_dict = stats.to_dict()
        stats_dict.pop("fast_lines")
    monkeypatch.delenv("ASTRA_MEMREPRO_SLOW_INGEST", raising=False)
    return result, stats_dict, error, sidecar_bytes, counters


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_gears_indistinguishable(family, profile, policy, log_files,
                                 tmp_path, monkeypatch):
    _, _, ingest, _ = FAMILIES[family]
    path = tmp_path / log_files[(family, profile)].name
    shutil.copyfile(log_files[(family, profile)], path)

    fast = _run_gear(ingest, path, policy, slow=False, monkeypatch=monkeypatch)
    slow = _run_gear(ingest, path, policy, slow=True, monkeypatch=monkeypatch)

    f_result, f_stats, f_error, f_sidecar, f_counters = fast
    s_result, s_stats, s_error, s_sidecar, s_counters = slow

    assert f_error == s_error
    assert f_stats == s_stats
    assert f_sidecar == s_sidecar
    assert f_counters == s_counters
    if isinstance(s_result, np.ndarray):
        assert np.array_equal(f_result, s_result)
    else:
        assert f_result == s_result


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_fast_path_engages_on_clean_logs(family, log_files, tmp_path,
                                         monkeypatch):
    """Every line of a writer-produced log takes the vectorised path."""
    _, _, ingest, _ = FAMILIES[family]
    path = tmp_path / log_files[(family, "clean")].name
    shutil.copyfile(log_files[(family, "clean")], path)
    monkeypatch.delenv("ASTRA_MEMREPRO_SLOW_INGEST", raising=False)
    obs.reset()
    _, stats = ingest(path, "strict")
    assert stats.fast_lines == stats.seen > 0
    counter = f"ingest.{stats.family}.fastpath_lines"
    assert obs.get_metrics().counter_value(counter) == stats.fast_lines


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_slow_gear_reports_no_fast_lines(family, log_files, tmp_path,
                                         monkeypatch):
    _, _, ingest, _ = FAMILIES[family]
    path = tmp_path / log_files[(family, "clean")].name
    shutil.copyfile(log_files[(family, "clean")], path)
    monkeypatch.setenv("ASTRA_MEMREPRO_SLOW_INGEST", "1")
    obs.reset()
    _, stats = ingest(path, "strict")
    assert stats.fast_lines == 0
    counter = f"ingest.{stats.family}.fastpath_lines"
    assert obs.get_metrics().counter_value(counter) == 0


# ----------------------------------------------------------------------
# Writer byte parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_writers_emit_identical_bytes(family, tmp_path, monkeypatch):
    _, build, _, _ = FAMILIES[family]
    fast_path = tmp_path / "fast.log"
    slow_path = tmp_path / "slow.log"
    monkeypatch.delenv("ASTRA_MEMREPRO_SLOW_INGEST", raising=False)
    build(fast_path)
    monkeypatch.setenv("ASTRA_MEMREPRO_SLOW_INGEST", "1")
    build(slow_path)
    assert fast_path.read_bytes() == slow_path.read_bytes()


def test_ce_writer_falls_back_on_abnormal_records(tmp_path, monkeypatch):
    """Records outside the column assembler's domain still match."""
    e = empty_errors(3)
    e["time"] = [T0, T0 + 1, T0 + 2]
    e["node"] = [1, 2, 3]
    # 13-hex-digit address: wider than the %012x fast column.
    e["address"][1] = np.uint64(1) << np.uint64(49)
    fast_path = tmp_path / "fast.log"
    slow_path = tmp_path / "slow.log"
    monkeypatch.delenv("ASTRA_MEMREPRO_SLOW_INGEST", raising=False)
    write_ce_log(e, fast_path)
    monkeypatch.setenv("ASTRA_MEMREPRO_SLOW_INGEST", "1")
    write_ce_log(e, slow_path)
    assert fast_path.read_bytes() == slow_path.read_bytes()


def test_strict_error_identifies_same_line(log_files, tmp_path, monkeypatch):
    """Both gears point strict failures at the same line and reason."""
    path = tmp_path / "bad-ce.log"
    shutil.copyfile(log_files[("ce", "moderate")], path)
    fast = _run_gear(_ingest_ce, path, "strict", False, monkeypatch)
    slow = _run_gear(_ingest_ce, path, "strict", True, monkeypatch)
    assert fast[2] is not None
    assert fast[2] == slow[2]
