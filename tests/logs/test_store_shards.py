"""Regression tests for the record store's sharding fixes."""

import numpy as np

from repro.faults.types import ERROR_DTYPE, empty_errors
from repro.logs.store import (
    iter_shards,
    load_records,
    load_shards,
    save_records,
    shard_by_rack,
)
from repro.machine.topology import AstraTopology

#: A structured layout with no "time" field (like aggregate records).
_TIMELESS_DTYPE = np.dtype([("node", np.int32), ("count", np.int64)])


class TestLoadShardsWithoutTime:
    def test_concatenates_in_shard_order(self, tmp_path):
        a = np.array([(1, 10), (2, 20)], dtype=_TIMELESS_DTYPE)
        b = np.array([(3, 30)], dtype=_TIMELESS_DTYPE)
        save_records(tmp_path / "a.npy", a)
        save_records(tmp_path / "b.npy", b)
        out = load_shards([tmp_path / "a.npy", tmp_path / "b.npy"])
        assert out["node"].tolist() == [1, 2, 3]
        assert out["count"].tolist() == [10, 20, 30]

    def test_timed_streams_still_sorted(self, tmp_path):
        errors = empty_errors(4)
        errors["time"] = [4.0, 1.0, 3.0, 2.0]
        errors["node"] = [0, 0, 1, 1]
        save_records(tmp_path / "a.npy", errors[:2])
        save_records(tmp_path / "b.npy", errors[2:])
        out = load_shards([tmp_path / "a.npy", tmp_path / "b.npy"])
        assert out["time"].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_empty_with_dtype(self):
        out = load_shards([], expected_dtype=_TIMELESS_DTYPE)
        assert out.size == 0 and out.dtype == _TIMELESS_DTYPE


class TestShardFilenamePadding:
    def _errors_on_racks(self, topo, racks):
        errors = empty_errors(len(racks))
        errors["node"] = [topo.node_id(r, 0, 0) for r in racks]
        errors["time"] = np.arange(len(racks), dtype=np.float64)
        return errors

    def test_default_topology_keeps_two_digits(self, tmp_path):
        topo = AstraTopology()
        errors = self._errors_on_racks(topo, [0, 35])
        paths = shard_by_rack(errors, tmp_path, topo)
        assert [p.name for p in paths] == [
            "errors-rack00.npy",
            "errors-rack35.npy",
        ]

    def test_large_topology_pads_past_rack_99(self, tmp_path):
        topo = AstraTopology(n_racks=120)
        errors = self._errors_on_racks(topo, [5, 99, 100, 119])
        paths = shard_by_rack(errors, tmp_path, topo)
        names = [p.name for p in paths]
        assert names == [
            "errors-rack005.npy",
            "errors-rack099.npy",
            "errors-rack100.npy",
            "errors-rack119.npy",
        ]
        # Lexicographic order equals rack order past rack 99.
        assert sorted(names) == names

    def test_shards_roundtrip(self, tmp_path):
        topo = AstraTopology(n_racks=120)
        errors = self._errors_on_racks(topo, [100, 5, 119])
        paths = shard_by_rack(errors, tmp_path, topo)
        out = load_shards(paths, expected_dtype=ERROR_DTYPE)
        assert out.size == errors.size
        np.testing.assert_array_equal(np.sort(out["node"]), np.sort(errors["node"]))


class TestEmptyShards:
    """Zero-row shard files must round-trip, not raise (PR 6 bugfix)."""

    def test_zero_row_shard_loads_to_expected_dtype(self, tmp_path):
        save_records(tmp_path / "empty.npy", empty_errors(0))
        for mmap in (False, True):
            out = load_records(tmp_path / "empty.npy", ERROR_DTYPE, mmap=mmap)
            assert out.size == 0 and out.dtype == ERROR_DTYPE

    def test_shard_set_with_empty_rack_roundtrips(self, tmp_path):
        topo = AstraTopology(n_racks=4)
        errors = empty_errors(3)
        errors["node"] = [topo.node_id(0, 0, 0), topo.node_id(0, 0, 1),
                          topo.node_id(2, 0, 0)]
        errors["time"] = [1.0, 2.0, 3.0]
        paths = shard_by_rack(errors, tmp_path, topo, include_empty=True)
        assert len(paths) == topo.n_racks  # racks 1 and 3 are zero-row
        for mmap in (False, True):
            out = load_shards(paths, expected_dtype=ERROR_DTYPE, mmap=mmap)
            assert out.size == errors.size
            assert out["time"].tolist() == [1.0, 2.0, 3.0]

    def test_empty_stream_roundtrips_through_include_empty(self, tmp_path):
        topo = AstraTopology(n_racks=3)
        paths = shard_by_rack(empty_errors(0), tmp_path, topo,
                              include_empty=True)
        assert len(paths) == 3
        out = load_shards(paths)  # dtype recovered from the files
        assert out.size == 0 and out.dtype == ERROR_DTYPE

    def test_empty_stream_without_include_empty_writes_nothing(self, tmp_path):
        paths = shard_by_rack(empty_errors(0), tmp_path, AstraTopology())
        assert paths == []


class TestMmapViews:
    def test_mmap_load_is_a_readonly_view(self, tmp_path):
        errors = empty_errors(5)
        errors["node"] = np.arange(5)
        save_records(tmp_path / "e.npy", errors)
        view = load_records(tmp_path / "e.npy", ERROR_DTYPE, mmap=True)
        assert isinstance(view, np.memmap)
        assert not view.flags.writeable
        np.testing.assert_array_equal(view["node"], errors["node"])

    def test_iter_shards_yields_per_shard_views(self, tmp_path):
        topo = AstraTopology(n_racks=2)
        errors = empty_errors(4)
        errors["node"] = [0, 1, topo.nodes_per_rack, topo.nodes_per_rack + 1]
        errors["time"] = np.arange(4, dtype=np.float64)
        paths = shard_by_rack(errors, tmp_path, topo)
        views = list(iter_shards(paths, ERROR_DTYPE))
        assert [v.size for v in views] == [2, 2]
        np.testing.assert_array_equal(
            np.concatenate(views)["node"], errors["node"]
        )
