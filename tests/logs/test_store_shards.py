"""Regression tests for the record store's sharding fixes."""

import numpy as np

from repro.faults.types import ERROR_DTYPE, empty_errors
from repro.logs.store import load_shards, save_records, shard_by_rack
from repro.machine.topology import AstraTopology

#: A structured layout with no "time" field (like aggregate records).
_TIMELESS_DTYPE = np.dtype([("node", np.int32), ("count", np.int64)])


class TestLoadShardsWithoutTime:
    def test_concatenates_in_shard_order(self, tmp_path):
        a = np.array([(1, 10), (2, 20)], dtype=_TIMELESS_DTYPE)
        b = np.array([(3, 30)], dtype=_TIMELESS_DTYPE)
        save_records(tmp_path / "a.npy", a)
        save_records(tmp_path / "b.npy", b)
        out = load_shards([tmp_path / "a.npy", tmp_path / "b.npy"])
        assert out["node"].tolist() == [1, 2, 3]
        assert out["count"].tolist() == [10, 20, 30]

    def test_timed_streams_still_sorted(self, tmp_path):
        errors = empty_errors(4)
        errors["time"] = [4.0, 1.0, 3.0, 2.0]
        errors["node"] = [0, 0, 1, 1]
        save_records(tmp_path / "a.npy", errors[:2])
        save_records(tmp_path / "b.npy", errors[2:])
        out = load_shards([tmp_path / "a.npy", tmp_path / "b.npy"])
        assert out["time"].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_empty_with_dtype(self):
        out = load_shards([], expected_dtype=_TIMELESS_DTYPE)
        assert out.size == 0 and out.dtype == _TIMELESS_DTYPE


class TestShardFilenamePadding:
    def _errors_on_racks(self, topo, racks):
        errors = empty_errors(len(racks))
        errors["node"] = [topo.node_id(r, 0, 0) for r in racks]
        errors["time"] = np.arange(len(racks), dtype=np.float64)
        return errors

    def test_default_topology_keeps_two_digits(self, tmp_path):
        topo = AstraTopology()
        errors = self._errors_on_racks(topo, [0, 35])
        paths = shard_by_rack(errors, tmp_path, topo)
        assert [p.name for p in paths] == [
            "errors-rack00.npy",
            "errors-rack35.npy",
        ]

    def test_large_topology_pads_past_rack_99(self, tmp_path):
        topo = AstraTopology(n_racks=120)
        errors = self._errors_on_racks(topo, [5, 99, 100, 119])
        paths = shard_by_rack(errors, tmp_path, topo)
        names = [p.name for p in paths]
        assert names == [
            "errors-rack005.npy",
            "errors-rack099.npy",
            "errors-rack100.npy",
            "errors-rack119.npy",
        ]
        # Lexicographic order equals rack order past rack 99.
        assert sorted(names) == names

    def test_shards_roundtrip(self, tmp_path):
        topo = AstraTopology(n_racks=120)
        errors = self._errors_on_racks(topo, [100, 5, 119])
        paths = shard_by_rack(errors, tmp_path, topo)
        out = load_shards(paths, expected_dtype=ERROR_DTYPE)
        assert out.size == errors.size
        np.testing.assert_array_equal(np.sort(out["node"]), np.sort(errors["node"]))
