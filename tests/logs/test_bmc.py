"""Tests for BMC sensor logs."""

import numpy as np
import pytest

from repro._util import epoch
from repro.logs.bmc import (
    SENSOR_SAMPLE_DTYPE,
    filter_valid_samples,
    read_bmc_log,
    write_bmc_log,
)
from repro.synth.sensors import SensorFieldModel

T0 = epoch("2019-06-01")


@pytest.fixture(scope="module")
def model():
    return SensorFieldModel(seed=2)


class TestRoundTrip:
    def test_write_read(self, tmp_path, model):
        path = tmp_path / "bmc.csv"
        n = write_bmc_log(path, model, [1, 2], T0, T0 + 600.0, cadence_s=60.0)
        assert n == 2 * 10 * 7  # nodes x minutes x sensors
        samples = read_bmc_log(path)
        assert samples.size == n
        assert samples.dtype == SENSOR_SAMPLE_DTYPE
        assert set(np.unique(samples["node"])) == {1, 2}
        assert set(np.unique(samples["sensor"])) == set(range(7))

    def test_values_match_model(self, tmp_path, model):
        path = tmp_path / "bmc.csv"
        write_bmc_log(path, model, [5], T0, T0 + 180.0, sensors=(0,))
        samples = read_bmc_log(path)
        expected = model.raw_samples(
            samples["node"], samples["sensor"], samples["time"]
        )
        np.testing.assert_allclose(samples["value"], expected, atol=0.01)

    def test_sensor_subset(self, tmp_path, model):
        path = tmp_path / "bmc.csv"
        write_bmc_log(path, model, [0], T0, T0 + 120.0, sensors=(6,))
        samples = read_bmc_log(path)
        assert np.all(samples["sensor"] == 6)
        assert np.all(samples["value"] > 100)  # watts

    def test_empty_window_rejected(self, tmp_path, model):
        with pytest.raises(ValueError):
            write_bmc_log(tmp_path / "x.csv", model, [0], T0, T0)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("2019-06-01T00:00:00,0001,cpu0,55.0\n")
        with pytest.raises(ValueError):
            read_bmc_log(path)


class TestValidity:
    def test_filter_drops_invalids(self, tmp_path, model):
        path = tmp_path / "bmc.csv"
        # Enough samples that some invalids are expected (~0.5%).
        write_bmc_log(path, model, list(range(20)), T0, T0 + 7200.0)
        samples = read_bmc_log(path)
        valid, frac = filter_valid_samples(samples)
        assert 0 < frac < 0.01  # paper: "significantly less than 1%"
        assert valid.size < samples.size
        # All surviving temperatures are physical.
        temps = valid[valid["sensor"] < 6]
        assert temps["value"].min() > 5.0

    def test_filter_empty(self):
        empty = np.zeros(0, dtype=SENSOR_SAMPLE_DTYPE)
        valid, frac = filter_valid_samples(empty)
        assert valid.size == 0 and frac == 0.0

    def test_filter_wrong_dtype(self):
        with pytest.raises(ValueError):
            filter_valid_samples(np.zeros(3))
