"""Tests for HET logs, the binary store, and campaign IO."""

import numpy as np
import pytest

from repro.faults.types import ERROR_DTYPE
from repro.logs.het import read_het_log, write_het_log
from repro.logs.store import load_records, load_shards, save_records, shard_by_rack
from repro.logs.campaign_io import load_campaign_records, write_campaign
from repro.machine.topology import AstraTopology
from repro.synth.het import HET_DTYPE, HetGenerator


@pytest.fixture(scope="module")
def het_events():
    return HetGenerator(seed=8, scale=1.0).generate()


class TestHetLog:
    def test_roundtrip(self, tmp_path, het_events):
        path = tmp_path / "het.log"
        n = write_het_log(het_events, path)
        assert n == het_events.size
        back = read_het_log(path)
        assert np.max(np.abs(back["time"] - het_events["time"])) < 1.0
        for field in ("node", "event", "non_recoverable"):
            np.testing.assert_array_equal(back[field], het_events[field])

    def test_event_names_with_spaces_roundtrip(self, tmp_path, het_events):
        # "powerSupplyFailureDetected de-asserted" has a space.
        from repro.synth.het import EVENT_TYPES

        idx = EVENT_TYPES.index("powerSupplyFailureDetected de-asserted")
        sel = het_events[het_events["event"] == idx]
        if sel.size == 0:
            pytest.skip("no such events generated for this seed")
        path = tmp_path / "spaces.log"
        write_het_log(sel, path)
        back = read_het_log(path)
        assert np.all(back["event"] == idx)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("nothing to see here\n")
        with pytest.raises(ValueError):
            read_het_log(path)

    def test_unknown_event_rejected(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(
            "2019-08-30T00:00:00 astra-n0001 HET severity=INFORMATIONAL "
            "event=mysteryEvent\n"
        )
        with pytest.raises(ValueError):
            read_het_log(path)

    def test_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_het_log(np.zeros(3), tmp_path / "x.log")


class TestStore:
    def test_save_load(self, tmp_path, het_events):
        path = tmp_path / "records.npy"
        save_records(path, het_events)
        back = load_records(path, HET_DTYPE)
        np.testing.assert_array_equal(back, het_events)

    def test_dtype_check(self, tmp_path, het_events):
        path = tmp_path / "records.npy"
        save_records(path, het_events)
        with pytest.raises(ValueError):
            load_records(path, ERROR_DTYPE)

    def test_unstructured_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_records(tmp_path / "x.npy", np.zeros(3))

    def test_shard_roundtrip(self, tmp_path, small_campaign):
        paths = shard_by_rack(
            small_campaign.errors, tmp_path / "shards", small_campaign.topology
        )
        assert len(paths) >= 1
        back = load_shards(paths, ERROR_DTYPE)
        assert back.size == small_campaign.errors.size
        # Same multiset of records: compare after identical sorting.
        key = ("time", "node", "address")
        a = np.sort(small_campaign.errors, order=key)
        b = np.sort(back, order=key)
        np.testing.assert_array_equal(a, b)

    def test_shards_pure_by_rack(self, tmp_path, small_campaign):
        topo = small_campaign.topology
        paths = shard_by_rack(small_campaign.errors, tmp_path / "s2", topo)
        for p in paths:
            shard = load_records(p, ERROR_DTYPE)
            racks = np.unique(topo.rack_of(shard["node"]))
            assert racks.size == 1

    def test_load_shards_empty(self):
        with pytest.raises(ValueError):
            load_shards([])
        out = load_shards([], expected_dtype=ERROR_DTYPE)
        assert out.size == 0


class TestCampaignIO:
    def test_roundtrip(self, tmp_path, small_campaign):
        directory = write_campaign(small_campaign, tmp_path / "camp", text_logs=False)
        records = load_campaign_records(directory)
        np.testing.assert_array_equal(records.errors, small_campaign.errors)
        np.testing.assert_array_equal(
            records.replacements, small_campaign.replacements
        )
        np.testing.assert_array_equal(records.het, small_campaign.het)
        assert records.seed == small_campaign.seed
        assert records.scale == small_campaign.scale

    def test_text_logs_written(self, tmp_path, small_campaign):
        directory = write_campaign(small_campaign, tmp_path / "camp2", text_logs=True)
        assert (directory / "ce.log").exists()
        assert (directory / "het.log").exists()

    def test_shards_written(self, tmp_path, small_campaign):
        directory = write_campaign(
            small_campaign, tmp_path / "camp3", text_logs=False, shards=True
        )
        assert any((directory / "shards").iterdir())
