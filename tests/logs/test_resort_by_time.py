"""Regression tests for the repair policy's out-of-order re-sort.

The inversion tolerance must derive from the time dtype's resolution:
a fixed absolute epsilon (the old hardcoded 1e-9) flags one-ulp float
round-trip jitter as inversions on large epochs, silently reclassifying
parsed records as repaired.
"""

import numpy as np

from repro.logs.ingest import IngestPolicy, IngestStats, resort_by_time


def _records(times, dtype):
    out = np.zeros(len(times), dtype=np.dtype([("time", dtype), ("v", np.int32)]))
    out["time"] = times
    out["v"] = np.arange(len(times))
    return out


def _stats(n):
    return IngestStats(family="test", seen=n, parsed=n)


class TestTolerance:
    def test_one_ulp_float32_jitter_is_not_an_inversion(self):
        # 2**30 epoch seconds: one float32 ulp is 64 whole seconds, far
        # above any fixed nanosecond-scale epsilon.
        t0 = np.float32(2**30)
        t1 = np.nextafter(t0, np.float32(0))  # one ulp earlier
        records = _records([t0, t1], np.float32)
        stats = _stats(2)
        out = resort_by_time(records, stats, IngestPolicy.REPAIR)
        assert stats.repaired == 0
        np.testing.assert_array_equal(out["v"], [0, 1])

    def test_genuine_inversion_still_repaired(self):
        records = _records([2**30, 2**30 - 4000.0, 2**30 + 1], np.float32)
        stats = _stats(3)
        out = resort_by_time(records, stats, IngestPolicy.REPAIR)
        assert stats.repaired == 1
        assert stats.parsed == 2
        assert np.all(np.diff(out["time"]) >= 0)

    def test_integer_times_have_zero_tolerance(self):
        records = _records([100, 99, 101], np.int64)
        stats = _stats(3)
        out = resort_by_time(records, stats, IngestPolicy.REPAIR)
        assert stats.repaired == 1
        np.testing.assert_array_equal(out["time"], [99, 100, 101])

    def test_float64_epoch_second_inversions_detected(self):
        # At float64 resolution the tolerance stays far below 1 second
        # for any realistic epoch, so whole-second inversions repair.
        records = _records([1.5e9, 1.5e9 - 1.0], np.float64)
        stats = _stats(2)
        out = resort_by_time(records, stats, IngestPolicy.REPAIR)
        assert stats.repaired == 1
        assert np.all(np.diff(out["time"]) >= 0)


class TestPolicyGating:
    def test_only_repair_resorts(self):
        for policy in (IngestPolicy.STRICT, IngestPolicy.SKIP):
            records = _records([5.0, 1.0], np.float64)
            stats = _stats(2)
            out = resort_by_time(records, stats, policy)
            np.testing.assert_array_equal(out["time"], [5.0, 1.0])
            assert stats.repaired == 0

    def test_empty_and_timeless_records_untouched(self):
        stats = _stats(0)
        empty = _records([], np.float64)
        assert resort_by_time(empty, stats, IngestPolicy.REPAIR).size == 0
        plain = np.zeros(3, dtype=np.dtype([("v", np.int32)]))
        out = resort_by_time(plain, stats, IngestPolicy.REPAIR)
        assert out is plain
