"""Tests for inventory snapshots and diff-based replacement detection."""

import numpy as np
import pytest

from repro._util import DAY_S, epoch
from repro.logs.inventory import (
    InventoryModel,
    diff_inventories,
    read_inventory_snapshots,
    replacements_from_snapshot_file,
    write_inventory_snapshots,
)
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component

TINY = AstraTopology(n_racks=1, chassis_per_rack=3, nodes_per_chassis=2)
T0 = epoch("2019-02-17")


def make_events(rows):
    out = np.zeros(len(rows), dtype=REPLACEMENT_DTYPE)
    for i, (t, comp, node, sock, slot) in enumerate(rows):
        out[i] = (t, comp, node, sock, slot)
    return out[np.argsort(out["time"])]


@pytest.fixture()
def model():
    events = make_events(
        [
            (T0 + 0.5 * DAY_S, Component.PROCESSOR, 1, 0, -1),
            (T0 + 1.5 * DAY_S, Component.DIMM, 2, -1, 9),
            (T0 + 1.6 * DAY_S, Component.DIMM, 2, -1, 9),  # swapped twice
            (T0 + 2.5 * DAY_S, Component.MOTHERBOARD, 3, -1, -1),
        ]
    )
    return InventoryModel(events, TINY, NodeConfig())


class TestModel:
    def test_counts_before(self, model):
        counts = model.replacement_counts_before(T0 + 2 * DAY_S)
        assert counts[Component.PROCESSOR][1, 0] == 1
        assert counts[Component.DIMM][2, 9] == 2
        assert counts[Component.MOTHERBOARD][3, 0] == 0

    def test_serials_change_on_replacement(self, model):
        before = model.replacement_counts_before(T0)
        after = model.replacement_counts_before(T0 + 3 * DAY_S)
        s0 = model.serial(Component.PROCESSOR, 1, 0, int(before[Component.PROCESSOR][1, 0]))
        s1 = model.serial(Component.PROCESSOR, 1, 0, int(after[Component.PROCESSOR][1, 0]))
        assert s0 != s1

    def test_snapshot_covers_all_positions(self, model):
        snap = model.snapshot(T0)
        cfg = NodeConfig()
        expected = TINY.n_nodes * (cfg.n_sockets + 1 + cfg.dimms_per_node)
        assert len(snap) == expected

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError):
            InventoryModel(np.zeros(1), TINY, NodeConfig())


class TestDiffPipeline:
    def test_roundtrip_daily_counts(self, model, tmp_path):
        """events -> snapshots -> diff recovers per-day, per-kind counts."""
        path = tmp_path / "inventory.csv"
        days = [T0 + i * DAY_S for i in range(5)]
        write_inventory_snapshots(path, model, days)
        recovered = replacements_from_snapshot_file(path)
        # 4 events across 3 scan intervals; double swap at one position
        # collapses to one serial change -- exactly what a daily scan sees.
        assert recovered.size == 3
        kinds = np.bincount(recovered["component"], minlength=3)
        assert kinds[Component.PROCESSOR] == 1
        assert kinds[Component.DIMM] == 1
        assert kinds[Component.MOTHERBOARD] == 1

    def test_positions_recovered(self, model, tmp_path):
        path = tmp_path / "inventory.csv"
        days = [T0 + i * DAY_S for i in range(5)]
        write_inventory_snapshots(path, model, days)
        recovered = replacements_from_snapshot_file(path)
        dimm = recovered[recovered["component"] == Component.DIMM][0]
        assert dimm["node"] == 2 and dimm["slot"] == 9
        proc = recovered[recovered["component"] == Component.PROCESSOR][0]
        assert proc["node"] == 1 and proc["socket"] == 0

    def test_diff_ignores_one_sided_keys(self):
        prev = {("dimm", 0, 0): "a", ("dimm", 0, 1): "b"}
        curr = {("dimm", 0, 0): "a2"}
        events = diff_inventories(prev, curr)
        assert events.size == 1

    def test_identical_snapshots_no_events(self):
        snap = {("processor", 1, 0): "x"}
        assert diff_inventories(snap, snap).size == 0

    def test_read_rejects_unknown_component(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("2019-02-17,n0001,gpu,0,SN-X\n")
        with pytest.raises(ValueError):
            read_inventory_snapshots(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert replacements_from_snapshot_file(path).size == 0
