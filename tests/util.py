"""Shared helpers for building small record arrays in tests."""

from __future__ import annotations

import numpy as np

from repro.faults.types import empty_errors


def make_errors(rows: list[dict]) -> np.ndarray:
    """Build a CE record array from a list of field dicts.

    Unspecified fields keep the defaults from ``empty_errors`` (sentinels
    for positional fields, zeros elsewhere).
    """
    out = empty_errors(len(rows))
    for i, row in enumerate(rows):
        for key, value in row.items():
            out[i][key] = value
    return out


def bit_error(node=0, slot=0, rank=0, bank=0, column=5, bit=3, address=None, t=0.0, row=-1):
    """One CE record dict for a specific bit; address defaults per-column."""
    if address is None:
        address = 1000 + column * 64
    return dict(
        time=t,
        node=node,
        socket=slot // 8,
        slot=slot,
        rank=rank,
        bank=bank,
        row=row,
        column=column,
        bit_pos=bit,
        address=address,
        syndrome=0,
    )
