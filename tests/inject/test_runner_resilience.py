"""Runner timeout and retry behaviour under misbehaving experiments.

Fake experiment modules are patched into the registry; under the fork
start method pool workers inherit the patched state, so worker-side
behaviour (sleeping past the deadline) is controlled from the tests.
"""

import multiprocessing
import os
import time

import pytest

from repro.experiments import registry
from repro.experiments.base import ExperimentResult
from repro.run import ExperimentRunner

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fake experiments reach pool workers via fork inheritance",
)


class _DummyCampaign:
    seed = 0
    scale = 1.0
    n_errors = 0
    ingest: dict = {}

    def faults(self):
        return None


def _result(exp_id):
    result = ExperimentResult(exp_id, f"fake {exp_id}")
    result.check("ok", True)
    return result


def _install(monkeypatch, modules) -> None:
    import repro.experiments as experiments_pkg

    listing = [(m.EXP_ID, m.TITLE) for m in modules]
    for module in modules:
        monkeypatch.setitem(registry._ALL, module.EXP_ID, module)
    monkeypatch.setattr(
        experiments_pkg,
        "list_experiments",
        lambda include_extensions=False: listing,
    )


class _Quick:
    EXP_ID = "quick"
    TITLE = "returns immediately"

    @staticmethod
    def run(campaign, **params):
        return _result("quick")


def _sleepy_module(marker_path):
    """Sleeps forever on its first run, succeeds once the marker exists."""

    class _Sleepy:
        EXP_ID = "sleepy"
        TITLE = "wedges on first attempt"

        @staticmethod
        def run(campaign, **params):
            if not os.path.exists(marker_path):
                with open(marker_path, "w") as fh:
                    fh.write(str(os.getpid()))
                time.sleep(60)
            return _result("sleepy")

    return _Sleepy


class _AlwaysSleepy:
    EXP_ID = "sleepy"
    TITLE = "always wedges"

    @staticmethod
    def run(campaign, **params):
        time.sleep(60)


class TestTimeout:
    def test_wedged_experiment_reported_not_fatal(self, monkeypatch):
        _install(monkeypatch, [_AlwaysSleepy, _Quick])
        runner = ExperimentRunner(jobs=2, timeout_s=1.0, retries=0)
        t0 = time.monotonic()
        results, report = runner.run(_DummyCampaign(), ["sleepy", "quick"])
        assert time.monotonic() - t0 < 30  # never waits out the sleep
        by_id = {m.exp_id: m for m in report.experiments}
        assert by_id["sleepy"].timed_out
        assert by_id["sleepy"].status == "timeout"
        assert "--timeout=1.0s" in by_id["sleepy"].error
        assert "sleepy" not in results
        assert results["quick"].all_checks_pass
        assert by_id["quick"].error is None

    def test_timeout_retry_succeeds(self, monkeypatch, tmp_path):
        marker = tmp_path / "first-attempt"
        _install(monkeypatch, [_sleepy_module(str(marker)), _Quick])
        runner = ExperimentRunner(jobs=2, timeout_s=1.0, retries=1, backoff_s=0.0)
        results, report = runner.run(_DummyCampaign(), ["sleepy", "quick"])
        assert marker.exists()  # first attempt really started and wedged
        assert "sleepy" in results
        by_id = {m.exp_id: m for m in report.experiments}
        assert not by_id["sleepy"].timed_out
        assert by_id["sleepy"].attempts >= 2 or by_id["sleepy"].mode == "serial-fallback"

    def test_no_timeout_configured_waits(self, monkeypatch):
        _install(monkeypatch, [_Quick])
        runner = ExperimentRunner(jobs=2, retries=0)
        results, report = runner.run(_DummyCampaign(), ["quick"])
        assert results["quick"].all_checks_pass


class TestSerialRetry:
    def test_flaky_experiment_retried(self, monkeypatch):
        calls = {"n": 0}

        class _Flaky:
            EXP_ID = "flaky"
            TITLE = "fails twice then passes"

            @staticmethod
            def run(campaign, **params):
                calls["n"] += 1
                if calls["n"] < 3:
                    raise RuntimeError("transient")
                return _result("flaky")

        _install(monkeypatch, [_Flaky])
        runner = ExperimentRunner(jobs=0, retries=2, backoff_s=0.0)
        results, report = runner.run(_DummyCampaign(), ["flaky"])
        assert calls["n"] == 3
        assert results["flaky"].all_checks_pass
        assert report.experiments[0].attempts == 3

    def test_retries_exhausted_reports_error(self, monkeypatch):
        class _Broken:
            EXP_ID = "broken"
            TITLE = "always fails"

            @staticmethod
            def run(campaign, **params):
                raise RuntimeError("permanently broken")

        _install(monkeypatch, [_Broken])
        runner = ExperimentRunner(jobs=0, retries=1, backoff_s=0.0)
        results, report = runner.run(_DummyCampaign(), ["broken"])
        assert results == {}
        metric = report.experiments[0]
        assert metric.status == "error"
        assert metric.attempts == 2
        assert "permanently broken" in metric.error

    def test_backoff_is_jittered_exponential(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)

        class _Broken:
            EXP_ID = "broken"
            TITLE = "always fails"

            @staticmethod
            def run(campaign, **params):
                raise RuntimeError("nope")

        _install(monkeypatch, [_Broken])
        ExperimentRunner(jobs=0, retries=3, backoff_s=0.1).run(
            _DummyCampaign(), ["broken"]
        )
        # Full jitter: each delay is uniform in [0, backoff_s * 2**(n-1)],
        # drawn from the seeded RNG -- bounded by the exponential caps
        # and reproducible for a given backoff_seed.
        import random

        from repro._util import full_jitter_backoff

        rng = random.Random(0)
        expected = [full_jitter_backoff(n, 0.1, 5.0, rng) for n in (1, 2, 3)]
        assert sleeps == pytest.approx(expected)
        for sleep, cap in zip(sleeps, [0.1, 0.2, 0.4]):
            assert 0.0 <= sleep <= cap

    def test_backoff_caps_at_max(self):
        import random

        from repro._util import full_jitter_backoff

        rng = random.Random(123)
        for attempt in (10, 20, 60):
            assert full_jitter_backoff(attempt, 0.25, 5.0, rng) <= 5.0
