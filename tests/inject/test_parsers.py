"""Every corruption type against every hardened parser.

For each text parser (CE syslog, HET, BMC CSV, inventory snapshots) and
each line-fault kind, the corrupted log must ingest without crashing
under the lenient policies, with the stats invariant
``seen == parsed + repaired + quarantined`` intact and every quarantined
record present in the sidecar; under ``strict`` a damaged log raises a
typed :class:`MalformedRecordError`.
"""

import numpy as np
import pytest

from repro.inject import InjectionProfile, LogCorruptor
from repro.logs.bmc import ingest_bmc_log, sensor_dropout_windows
from repro.logs.het import ingest_het_log, write_het_log
from repro.logs.ingest import (
    IngestPolicy,
    MalformedRecordError,
    quarantine_path,
    read_quarantine,
)
from repro.logs.inventory import ingest_inventory_snapshots
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.machine.sensors import NodeSensorComplement
from repro.synth.het import HET_DTYPE
from util import bit_error, make_errors

N_RECORDS = 120

FAULTS = {
    "truncate": dict(truncate_rate=0.2),
    "garble": dict(garble_rate=0.2),
    "duplicate": dict(duplicate_rate=0.1),
    "reorder": dict(reorder_windows=2, reorder_span=16),
    "clock-skew": dict(clock_skew_windows=1, clock_skew_span=16),
    "drop-range": dict(drop_ranges=1, drop_span=20),
}


def _write_ce(path):
    errors = make_errors(
        [bit_error(node=i % 50, slot=i % 16, bank=i % 16, t=60.0 * i)
         for i in range(N_RECORDS)]
    )
    write_ce_log(errors, path)


def _write_het(path):
    events = np.zeros(N_RECORDS, dtype=HET_DTYPE)
    events["time"] = 60.0 * np.arange(N_RECORDS)
    events["node"] = np.arange(N_RECORDS) % 50
    events["event"] = np.arange(N_RECORDS) % 8
    events["non_recoverable"] = np.isin(events["event"], (4, 6))
    write_het_log(events, path)


def _write_bmc(path):
    name = NodeSensorComplement().names[0]
    with open(path, "w") as fh:
        fh.write("timestamp,node,sensor,value\n")
        for i in range(N_RECORDS):
            t = np.datetime64("2019-01-01T00:00:00") + np.timedelta64(60 * i, "s")
            fh.write(f"{t},{i % 50:04d},{name},{40 + i % 7}.50\n")


def _write_inventory(path):
    with open(path, "w") as fh:
        for i in range(N_RECORDS):
            kind = ("processor", "motherboard", "dimm")[i % 3]
            fh.write(f"2019-01-{1 + i // 60:02d},n{i % 50:04d},{kind},{i % 4},SN{i:06d}\n")


def _ingest_ce(path, policy):
    result = ingest_ce_log(path, policy=policy)
    return result.errors, result.stats


PARSERS = {
    "ce": (_write_ce, _ingest_ce, "ce.log"),
    "het": (_write_het, lambda p, pol: ingest_het_log(p, policy=pol), "het.log"),
    "bmc": (_write_bmc, lambda p, pol: ingest_bmc_log(p, policy=pol), "bmc.csv"),
    "inventory": (
        _write_inventory,
        lambda p, pol: ingest_inventory_snapshots(p, policy=pol),
        "inventory.log",
    ),
}


@pytest.fixture(params=sorted(PARSERS))
def parser(request, tmp_path):
    writer, ingest, filename = PARSERS[request.param]
    path = tmp_path / filename
    writer(path)
    return path, ingest


class TestEveryFaultEveryParser:
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    @pytest.mark.parametrize("policy", [IngestPolicy.REPAIR, IngestPolicy.SKIP])
    def test_lenient_ingest_accounts_for_everything(self, parser, fault, policy):
        path, ingest = parser
        profile = InjectionProfile(name=f"only-{fault}", **FAULTS[fault])
        corruptor = LogCorruptor(profile, seed=3)
        manifest = corruptor.corrupt_text_file(
            path, has_header=path.suffix == ".csv"
        )
        n_lines = sum(
            1 for line in path.read_text().splitlines() if line.strip()
        ) - (1 if path.suffix == ".csv" else 0)

        _, stats = ingest(path, policy)

        stats.check_invariant()
        assert stats.seen == n_lines  # every surviving line accounted for
        sidecar = quarantine_path(path)
        if stats.quarantined:
            assert len(read_quarantine(sidecar)) == stats.quarantined
        else:
            assert not sidecar.exists()
        # Damage never exceeds what was injected.
        assert stats.quarantined <= manifest.total()

    @pytest.mark.parametrize("fault", ["truncate"])
    def test_strict_raises_typed_error(self, parser, fault):
        path, ingest = parser
        profile = InjectionProfile(name="hacksaw", **FAULTS[fault])
        LogCorruptor(profile, seed=3).corrupt_text_file(
            path, has_header=path.suffix == ".csv"
        )
        with pytest.raises(MalformedRecordError) as err:
            ingest(path, IngestPolicy.STRICT)
        assert str(path) in str(err.value)
        assert err.value.line_no > 0

    def test_clean_log_full_coverage(self, parser):
        path, ingest = parser
        _, stats = ingest(path, IngestPolicy.REPAIR)
        assert stats.coverage == 1.0
        assert stats.quarantined == 0
        assert not quarantine_path(path).exists()


class TestRepairSemantics:
    def test_ce_truncated_lines_salvaged(self, tmp_path):
        path = tmp_path / "ce.log"
        _write_ce(path)
        profile = InjectionProfile(name="trunc", truncate_rate=0.3)
        LogCorruptor(profile, seed=1).corrupt_text_file(path)
        _, repair_stats = _ingest_ce(path, IngestPolicy.REPAIR)
        _, skip_stats = _ingest_ce(tmp_path / "ce.log", IngestPolicy.SKIP)
        assert repair_stats.repaired > 0
        assert repair_stats.coverage > skip_stats.coverage

    def test_ce_clock_skew_resorted(self, tmp_path):
        path = tmp_path / "ce.log"
        _write_ce(path)
        profile = InjectionProfile(
            name="skew", clock_skew_windows=1, clock_skew_span=16
        )
        LogCorruptor(profile, seed=1).corrupt_text_file(path)
        errors, stats = _ingest_ce(path, IngestPolicy.REPAIR)
        assert np.all(np.diff(errors["time"]) >= 0)  # monotone again
        assert stats.repaired > 0  # re-sorted records counted as repairs

    def test_het_severity_contradiction_repaired(self, tmp_path):
        path = tmp_path / "het.log"
        with open(path, "w") as fh:
            fh.write(
                "2019-01-01T00:00:00 astra-n0001 HET "
                "severity=BOGUS event=uncorrectableECC\n"
            )
        events, stats = ingest_het_log(path, policy=IngestPolicy.REPAIR)
        assert stats.repaired == 1
        assert bool(events["non_recoverable"][0])  # trusted the event type

    def test_bmc_dropout_detected(self, tmp_path):
        path = tmp_path / "bmc.csv"
        _write_bmc(path)
        profile = InjectionProfile(
            name="dropout", bmc_dropout_windows=1, bmc_dropout_fraction=0.2
        )
        LogCorruptor(profile, seed=2).corrupt_text_file(
            path, has_header=True, dropout_windows=1
        )
        samples, stats = ingest_bmc_log(path, policy=IngestPolicy.REPAIR)
        stats.check_invariant()
        windows = sensor_dropout_windows(samples, cadence_s=60.0, min_gap=3.0)
        assert len(windows) >= 1
        start, end = windows[0]
        assert end - start > 3 * 60.0
