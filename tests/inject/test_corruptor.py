"""Tests for the seeded LogCorruptor and its injection manifest."""

import json

import numpy as np
import pytest

from repro.inject import (
    InjectionManifest,
    InjectionProfile,
    LogCorruptor,
    get_profile,
)
from repro.inject.manifest import MANIFEST_NAME


def _profile(**kw) -> InjectionProfile:
    return InjectionProfile(name="custom", **kw)


def _write_log(path, n=200):
    with open(path, "w") as fh:
        for i in range(n):
            fh.write(f"2019-01-01T00:{i // 60:02d}:{i % 60:02d} astra-n{i:04d} line={i}\n")
    return path


class TestDeterminism:
    def test_same_seed_same_bytes(self, campaign_dir, tmp_path):
        import shutil

        other = tmp_path / "other"
        shutil.copytree(campaign_dir, other)
        m1 = LogCorruptor("moderate", seed=42).corrupt_campaign(campaign_dir)
        m2 = LogCorruptor("moderate", seed=42).corrupt_campaign(other)
        assert m1.to_dict() == m2.to_dict()
        for name in ("ce.log", "het.log", "errors.npy"):
            assert (campaign_dir / name).read_bytes() == (other / name).read_bytes()

    def test_different_seed_different_output(self, campaign_dir, tmp_path):
        import shutil

        other = tmp_path / "other"
        shutil.copytree(campaign_dir, other)
        LogCorruptor("moderate", seed=1).corrupt_campaign(campaign_dir)
        LogCorruptor("moderate", seed=2).corrupt_campaign(other)
        assert (campaign_dir / "ce.log").read_bytes() != (other / "ce.log").read_bytes()

    def test_rng_keyed_by_filename(self, tmp_path):
        a = _write_log(tmp_path / "a.log")
        b = _write_log(tmp_path / "b.log")
        corruptor = LogCorruptor(_profile(garble_rate=0.2), seed=0)
        corruptor.corrupt_text_file(a)
        corruptor.corrupt_text_file(b)
        # Same content, same seed, different file name -> different damage.
        assert a.read_bytes() != b.read_bytes()


class TestLineFaults:
    def test_truncate(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        before = path.read_text().splitlines()
        m = LogCorruptor(_profile(truncate_rate=0.1), seed=0).corrupt_text_file(path)
        after = path.read_text().splitlines()
        assert len(after) == len(before)
        shorter = sum(len(a) < len(b) for a, b in zip(after, before))
        assert shorter == m.total("truncated") > 0

    def test_garble(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        before = path.read_text().splitlines()
        m = LogCorruptor(_profile(garble_rate=0.1), seed=0).corrupt_text_file(path)
        after = path.read_text().splitlines()
        changed = sum(a != b for a, b in zip(after, before))
        assert 0 < changed <= m.total("garbled")
        assert all(len(a) == len(b) for a, b in zip(after, before))

    def test_duplicate(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        n_before = len(path.read_text().splitlines())
        m = LogCorruptor(_profile(duplicate_rate=0.05), seed=0).corrupt_text_file(path)
        after = path.read_text().splitlines()
        assert len(after) == n_before + m.total("duplicated")
        assert m.total("duplicated") > 0

    def test_drop_ranges(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        n_before = len(path.read_text().splitlines())
        m = LogCorruptor(
            _profile(drop_ranges=2, drop_span=20), seed=0
        ).corrupt_text_file(path)
        after = path.read_text().splitlines()
        assert len(after) == n_before - m.total("dropped-range")
        assert m.total("dropped-range") > 0

    def test_reorder_permutes_only(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        before = sorted(path.read_text().splitlines())
        m = LogCorruptor(
            _profile(reorder_windows=2, reorder_span=16), seed=0
        ).corrupt_text_file(path)
        after = path.read_text().splitlines()
        assert sorted(after) == before  # nothing lost, nothing invented
        assert m.total("reordered") > 0

    def test_clock_skew_shifts_timestamps(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        m = LogCorruptor(
            _profile(clock_skew_windows=1, clock_skew_s=3600.0, clock_skew_span=8),
            seed=0,
        ).corrupt_text_file(path)
        assert m.total("clock-skew") > 0
        # Skewed lines moved a whole hour backwards: some timestamps now
        # precede the log's original start.
        assert any(
            line.split(" ")[0] < "2019-01-01T00:00:00"
            for line in path.read_text().splitlines()
        )

    def test_dropout_windows(self, tmp_path):
        path = _write_log(tmp_path / "x.log", n=500)
        m = LogCorruptor(
            _profile(bmc_dropout_windows=1, bmc_dropout_fraction=0.1), seed=0
        ).corrupt_text_file(path, dropout_windows=1)
        assert m.total("sensor-dropout") >= 50
        assert len(path.read_text().splitlines()) == 500 - m.total("sensor-dropout")

    def test_csv_header_preserved(self, tmp_path):
        path = tmp_path / "bmc.csv"
        with open(path, "w") as fh:
            fh.write("timestamp,node,sensor,value\n")
            for i in range(100):
                fh.write(f"2019-01-01T00:00:{i % 60:02d},{i:04d},CPU1_TEMP,41.5\n")
        LogCorruptor(_profile(drop_ranges=1, drop_span=50), seed=0).corrupt_text_file(
            path, has_header=True
        )
        assert path.read_text().splitlines()[0] == "timestamp,node,sensor,value"


class TestBinaryFaults:
    def test_corrupt_mirror_unloadable(self, campaign_dir):
        LogCorruptor("moderate", seed=0).corrupt_binary(campaign_dir / "errors.npy")
        with pytest.raises((ValueError, OSError, EOFError)):
            np.load(campaign_dir / "errors.npy")

    def test_hostile_drops_replacements(self, campaign_dir):
        m = LogCorruptor("hostile", seed=0).corrupt_campaign(campaign_dir)
        assert not (campaign_dir / "replacements.npy").exists()
        assert m.total("mirror-dropped") == 1


class TestManifest:
    def test_written_and_loadable(self, campaign_dir):
        m = LogCorruptor("moderate", seed=5).corrupt_campaign(campaign_dir)
        assert (campaign_dir / MANIFEST_NAME).exists()
        back = InjectionManifest.load(campaign_dir)
        assert back.to_dict() == m.to_dict()
        assert back.profile == "moderate" and back.seed == 5

    def test_records_applied_faults(self, campaign_dir):
        m = LogCorruptor("moderate", seed=0).corrupt_campaign(campaign_dir)
        assert "mirror-corrupted" in m.faults_applied()
        assert m.total() > 0
        data = json.loads((campaign_dir / MANIFEST_NAME).read_text())
        assert data["profile"] == "moderate"
        assert data["n_events"] == len(data["events"]) > 0

    def test_zero_count_faults_elided(self, tmp_path):
        path = _write_log(tmp_path / "x.log")
        m = LogCorruptor(_profile(), seed=0).corrupt_text_file(path)
        assert m.total() == 0
        assert m.faults_applied() == set()


class TestProfiles:
    def test_known_profiles(self):
        for name in ("light", "moderate", "hostile"):
            assert get_profile(name).name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown injection profile"):
            get_profile("apocalyptic")

    def test_passthrough(self):
        p = _profile(garble_rate=0.5)
        assert get_profile(p) is p
