"""Tests for the shared ingest policy / stats / quarantine layer."""

import io

import numpy as np
import pytest

from repro.logs.ingest import (
    IngestPolicy,
    IngestStats,
    MalformedRecordError,
    Quarantine,
    coverage_map,
    ingest_lines,
    quarantine_path,
    read_quarantine,
    resort_by_time,
)


def _parse(line: str) -> int:
    return int(line)


def _repair(line: str) -> int:
    digits = "".join(c for c in line if c.isdigit())
    if not digits:
        raise ValueError("nothing to salvage")
    return int(digits)


DIRTY = "1\n2\n\nx7\n3\njunk\n4\n"


class TestPolicy:
    def test_coerce(self):
        assert IngestPolicy.coerce(None) is IngestPolicy.STRICT
        assert IngestPolicy.coerce("repair") is IngestPolicy.REPAIR
        assert IngestPolicy.coerce(IngestPolicy.SKIP) is IngestPolicy.SKIP

    def test_coerce_unknown(self):
        with pytest.raises(ValueError, match="unknown ingest policy"):
            IngestPolicy.coerce("yolo")


class TestIngestLines:
    def test_strict_raises_typed(self):
        stats = IngestStats(family="test")
        with pytest.raises(MalformedRecordError) as err:
            list(ingest_lines(io.StringIO(DIRTY), _parse, stats, IngestPolicy.STRICT))
        assert err.value.line_no == 4
        assert err.value.family == "test"
        assert isinstance(err.value, ValueError)  # back-compat contract

    def test_skip_quarantines(self):
        stats = IngestStats(family="test")
        rows = list(
            ingest_lines(io.StringIO(DIRTY), _parse, stats, IngestPolicy.SKIP)
        )
        assert rows == [1, 2, 3, 4]
        assert (stats.seen, stats.parsed, stats.repaired, stats.quarantined) == (
            6, 4, 0, 2,
        )
        stats.check_invariant()

    def test_repair_salvages(self):
        stats = IngestStats(family="test")
        rows = list(
            ingest_lines(
                io.StringIO(DIRTY), _parse, stats, IngestPolicy.REPAIR,
                repair_line=_repair,
            )
        )
        assert rows == [1, 2, 7, 3, 4]  # "x7" salvaged, "junk" dropped
        assert (stats.parsed, stats.repaired, stats.quarantined) == (4, 1, 1)
        stats.check_invariant()

    def test_blank_lines_not_counted(self):
        stats = IngestStats(family="test")
        list(ingest_lines(io.StringIO("1\n\n\n2\n"), _parse, stats, IngestPolicy.SKIP))
        assert stats.seen == 2

    def test_coverage(self):
        assert IngestStats(family="x").coverage == 1.0  # empty stream
        assert IngestStats(family="x", missing=True).coverage == 0.0
        stats = IngestStats(family="x", seen=10, parsed=8, repaired=1, quarantined=1)
        assert stats.coverage == pytest.approx(0.9)
        assert coverage_map({"x": stats}) == {"x": pytest.approx(0.9)}

    def test_invariant_violation_detected(self):
        stats = IngestStats(family="x", seen=3, parsed=1)
        with pytest.raises(AssertionError, match="seen=3"):
            stats.check_invariant()


class TestQuarantine:
    def test_round_trip(self, tmp_path):
        log = tmp_path / "x.log"
        q = Quarantine(log)
        q.add(3, "not a CE record", "garbage\tline")
        q.add(9, "missing fields", "EDAC CE trunc")
        path = q.flush()
        assert path == quarantine_path(log)
        back = read_quarantine(path)
        assert back == [
            (3, "not a CE record", "garbage\tline"),
            (9, "missing fields", "EDAC CE trunc"),
        ]

    def test_clean_ingest_leaves_no_sidecar(self, tmp_path):
        q = Quarantine(tmp_path / "x.log")
        assert q.flush() is None
        assert not quarantine_path(tmp_path / "x.log").exists()


class TestResort:
    def _records(self, times):
        arr = np.zeros(len(times), dtype=[("time", "f8"), ("tag", "i8")])
        arr["time"] = times
        arr["tag"] = np.arange(len(times))
        return arr

    def test_repair_resorts(self):
        stats = IngestStats(family="x", seen=4, parsed=4)
        out = resort_by_time(
            self._records([1.0, 5.0, 2.0, 6.0]), stats, IngestPolicy.REPAIR
        )
        assert list(out["time"]) == [1.0, 2.0, 5.0, 6.0]
        assert stats.repaired == 1 and stats.parsed == 3
        stats.check_invariant()

    def test_other_policies_untouched(self):
        stats = IngestStats(family="x", seen=3, parsed=3)
        out = resort_by_time(
            self._records([3.0, 1.0, 2.0]), stats, IngestPolicy.SKIP
        )
        assert list(out["time"]) == [3.0, 1.0, 2.0]
        assert stats.repaired == 0

    def test_sorted_input_no_repairs(self):
        stats = IngestStats(family="x", seen=3, parsed=3)
        resort_by_time(self._records([1.0, 2.0, 3.0]), stats, IngestPolicy.REPAIR)
        assert stats.repaired == 0
