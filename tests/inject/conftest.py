"""Shared fixtures for the fault-injection suite.

``stored_campaign_dir`` is a pristine on-disk campaign (binary mirrors
plus text logs) written once per session; tests that corrupt it copy it
to a per-test directory first.
"""

import shutil

import pytest

from repro.logs.campaign_io import write_campaign


@pytest.fixture(scope="session")
def stored_campaign_dir(small_campaign, tmp_path_factory):
    directory = tmp_path_factory.mktemp("clean-campaign") / "campaign"
    write_campaign(small_campaign, directory, text_logs=True)
    return directory


@pytest.fixture()
def campaign_dir(stored_campaign_dir, tmp_path):
    """A throwaway copy of the clean campaign, safe to corrupt."""
    directory = tmp_path / "campaign"
    shutil.copytree(stored_campaign_dir, directory)
    return directory
