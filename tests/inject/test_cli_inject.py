"""End-to-end CLI runs with --inject / --ingest-policy."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def tiny_campaign_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-inject") / "camp"
    assert main(
        ["synth", "--seed", "3", "--scale", "0.005", "--out", str(directory),
         "--text-logs"]
    ) == 0
    return directory


class TestInjectRepair:
    def test_moderate_repair_completes(self, tiny_campaign_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1", "fig05",
             "--inject", "moderate", "--ingest-policy", "repair",
             "--json-report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # shape checks may fail at tiny scale; no crash
        assert "injected profile=moderate" in out
        assert "telemetry coverage" in out

        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 3
        assert report["ingest_policy"] == "repair"
        assert report["injection"]["profile"] == "moderate"
        assert report["injection"]["n_events"] > 0
        for family in ("errors", "replacements", "het"):
            stats = report["ingest"][family]
            assert stats["seen"] == (
                stats["parsed"] + stats["repaired"] + stats["quarantined"]
            )
            assert 0.0 <= stats["coverage"] <= 1.0
        for metric in report["experiments"]:
            assert metric["error"] is None  # completed, never crashed
            assert metric["status"] in ("pass", "pass-degraded", "fail")
            assert metric["coverage"]  # families threaded through

    def test_original_directory_untouched(self, tiny_campaign_dir):
        # --inject corrupts a disposable copy, never the input.
        assert (tiny_campaign_dir / "errors.npy").exists()
        assert not (tiny_campaign_dir / "injection-manifest.json").exists()

    def test_inject_deterministic_across_runs(self, tiny_campaign_dir, tmp_path, capsys):
        reports = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            main(
                ["analyze", str(tiny_campaign_dir), "--exp", "table1",
                 "--inject", "moderate", "--inject-seed", "9",
                 "--ingest-policy", "repair", "--json-report", str(path)]
            )
            reports.append(json.loads(path.read_text()))
        capsys.readouterr()
        assert reports[0]["ingest"] == reports[1]["ingest"]
        assert reports[0]["injection"]["events"] == reports[1]["injection"]["events"]


class TestInjectStrict:
    def test_strict_exits_2_with_typed_error(self, tiny_campaign_dir, capsys):
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1",
             "--inject", "moderate", "--ingest-policy", "strict"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "malformed" in captured.err or "campaign" in captured.err

    def test_unrecoverable_directory_exits_2(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nowhere"), "--exp", "table1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "manifest.txt" in captured.err


class TestSkipPolicy:
    def test_skip_quarantines_without_repair(self, tiny_campaign_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1",
             "--inject", "hostile", "--ingest-policy", "skip",
             "--min-coverage", "0.5", "--json-report", str(report_path)]
        )
        capsys.readouterr()
        assert code in (0, 1)
        report = json.loads(report_path.read_text())
        stats = report["ingest"]["errors"]
        assert stats["repaired"] == 0  # skip never repairs
        assert stats["quarantined"] > 0
        # hostile deletes replacements.npy (no text fallback): zero coverage.
        assert report["ingest"]["replacements"]["missing"]
        assert report["ingest"]["replacements"]["coverage"] == 0.0
        # table1 consumes replacements and must be skipped, not crashed.
        metric = report["experiments"][0]
        assert metric["status"] == "skipped-insufficient-data"
