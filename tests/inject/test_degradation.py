"""Coverage-aware experiment verdicts: pass / pass-degraded / skipped."""

import pytest

from repro.experiments import registry
from repro.experiments.base import ExperimentResult
from repro.logs.ingest import IngestStats


def _stats(family, seen=100, parsed=100, **kw):
    quarantined = seen - parsed - kw.pop("repaired", 0)
    return IngestStats(
        family=family, seen=seen, parsed=parsed, quarantined=quarantined, **kw
    )


@pytest.fixture()
def degraded_campaign(small_campaign):
    """The small campaign re-labelled as 70%-coverage errors telemetry."""
    import copy

    campaign = copy.copy(small_campaign)
    campaign.ingest = {
        "errors": _stats("errors", seen=100, parsed=70),
        "replacements": _stats("replacements"),
        "het": _stats("het"),
    }
    return campaign


class TestResultStatus:
    def test_pass(self):
        r = ExperimentResult("x", "t")
        r.check("ok", True)
        assert r.status == "pass" and not r.degraded

    def test_pass_degraded(self):
        r = ExperimentResult("x", "t", coverage={"errors": 0.7})
        r.check("ok", True)
        assert r.status == "pass-degraded" and r.degraded

    def test_fail_beats_degraded(self):
        r = ExperimentResult("x", "t", coverage={"errors": 0.7})
        r.check("ok", False)
        assert r.status == "fail"

    def test_skipped(self):
        r = ExperimentResult("x", "t", skipped_reason="coverage below floor")
        assert r.status == "skipped-insufficient-data"

    def test_render_banners(self):
        r = ExperimentResult("x", "t", coverage={"errors": 0.7})
        assert "[DEGRADED]" in r.render() and "70.0%" in r.render()
        r = ExperimentResult("x", "t", skipped_reason="nope")
        assert "[SKIPPED] nope" in r.render()


class TestRegistryGating:
    def test_clean_campaign_plain_pass(self, small_campaign):
        result = registry.run("table1", small_campaign)
        assert result.status in ("pass", "fail")  # never degraded
        assert not result.degraded

    def test_degraded_pass(self, degraded_campaign):
        result = registry.run("fig05", degraded_campaign, min_coverage=0.5)
        assert result.coverage == {"errors": pytest.approx(0.7)}
        assert result.skipped_reason is None
        assert result.status in ("pass-degraded", "fail")

    def test_skip_below_floor(self, degraded_campaign):
        result = registry.run("fig05", degraded_campaign, min_coverage=0.9)
        assert result.status == "skipped-insufficient-data"
        assert "min-coverage" in result.skipped_reason
        assert result.series == {} and result.checks == {}

    def test_unrelated_family_not_gated(self, degraded_campaign):
        # table1 consumes replacements (full coverage); the starved
        # errors family must not block it.
        result = registry.run("table1", degraded_campaign, min_coverage=0.9)
        assert result.skipped_reason is None
        assert result.coverage == {"replacements": 1.0}

    def test_every_module_declares_families(self):
        for exp_id, module in registry._ALL.items():
            assert hasattr(module, "FAMILIES"), exp_id
            assert all(
                f in ("errors", "replacements", "het") for f in module.FAMILIES
            ), exp_id


class TestReportPlumbing:
    def test_metrics_carry_status_and_coverage(self, degraded_campaign):
        from repro.run import ExperimentRunner

        runner = ExperimentRunner(jobs=0, min_coverage=0.9)
        results, report = runner.run(degraded_campaign, ["fig05", "table1"])
        by_id = {m.exp_id: m for m in report.experiments}
        assert by_id["fig05"].status == "skipped-insufficient-data"
        assert by_id["table1"].status in ("pass", "fail")
        assert by_id["fig05"].coverage == {"errors": pytest.approx(0.7)}
        assert report.min_coverage == 0.9
        assert set(report.ingest) == {"errors", "replacements", "het"}
        data = report.to_dict()
        assert data["schema_version"] == 3
        assert data["ingest"]["errors"]["coverage"] == pytest.approx(0.7)
        summary = report.summary()
        assert "skipped for insufficient coverage: 1" in summary
        assert "telemetry coverage" in summary
