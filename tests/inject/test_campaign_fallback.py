"""Loading corrupted campaign directories: fallbacks and typed errors."""

import numpy as np
import pytest

from repro.inject import LogCorruptor
from repro.logs.campaign_io import (
    campaign_from_records,
    load_campaign_records,
)
from repro.logs.ingest import CampaignFormatError, IngestPolicy


class TestCleanLoad:
    def test_binary_mirrors_full_coverage(self, campaign_dir):
        records = load_campaign_records(campaign_dir)
        assert set(records.ingest) == {"errors", "replacements", "het"}
        for stats in records.ingest.values():
            assert stats.source == "binary"
            assert stats.coverage == 1.0
            stats.check_invariant()
        campaign = campaign_from_records(records)
        assert campaign.coverage == {"errors": 1.0, "replacements": 1.0, "het": 1.0}


class TestTextFallback:
    def test_corrupt_mirror_falls_back_to_text(self, campaign_dir, small_campaign):
        corruptor = LogCorruptor("light", seed=0)
        corruptor.corrupt_binary(campaign_dir / "errors.npy")
        records = load_campaign_records(campaign_dir, policy=IngestPolicy.REPAIR)
        stats = records.ingest["errors"]
        assert stats.source == "text-fallback"
        assert stats.coverage > 0.99  # light profile barely dents the log
        assert records.errors.size > 0.99 * small_campaign.errors.size
        # Untouched families still come from their mirrors.
        assert records.ingest["het"].source == "binary"

    def test_corrupt_mirror_no_text_strict_raises(self, campaign_dir):
        (campaign_dir / "ce.log").unlink()
        LogCorruptor("light", seed=0).corrupt_binary(campaign_dir / "errors.npy")
        with pytest.raises(CampaignFormatError) as err:
            load_campaign_records(campaign_dir)
        assert "errors.npy" in str(err.value)
        assert "manifest.txt" in str(err.value)  # names the expected layout

    def test_missing_mirror_lenient_zero_coverage(self, campaign_dir):
        (campaign_dir / "replacements.npy").unlink()  # no text fallback exists
        records = load_campaign_records(campaign_dir, policy=IngestPolicy.REPAIR)
        stats = records.ingest["replacements"]
        assert stats.missing and stats.source == "missing"
        assert stats.coverage == 0.0
        assert records.replacements.size == 0

    def test_missing_mirror_strict_raises(self, campaign_dir):
        (campaign_dir / "replacements.npy").unlink()
        with pytest.raises(CampaignFormatError, match="replacements"):
            load_campaign_records(campaign_dir)


class TestDirectoryErrors:
    def test_not_a_campaign_dir(self, tmp_path):
        with pytest.raises(CampaignFormatError, match="manifest.txt"):
            load_campaign_records(tmp_path)

    def test_error_is_a_valueerror(self, tmp_path):
        # Back-compat: callers catching ValueError keep working.
        with pytest.raises(ValueError):
            load_campaign_records(tmp_path)


class TestModerateEndToEnd:
    def test_acceptance_accounting(self, campaign_dir, small_campaign):
        """ISSUE acceptance: moderate + repair loads, accounts, degrades."""
        manifest = LogCorruptor("moderate", seed=0).corrupt_campaign(campaign_dir)
        assert manifest.total() > 0
        records = load_campaign_records(campaign_dir, policy=IngestPolicy.REPAIR)
        for stats in records.ingest.values():
            stats.check_invariant()
        # Both corrupted mirrors fell back to their text logs.
        assert records.ingest["errors"].source == "text-fallback"
        assert records.ingest["het"].source == "text-fallback"
        assert records.ingest["replacements"].source == "binary"
        campaign = campaign_from_records(records)
        cov = campaign.coverage
        assert 0.9 < cov["errors"] < 1.0  # dented but usable
        # Most records survived the moderate profile.
        assert records.errors.size > 0.9 * small_campaign.errors.size
        assert np.all(np.diff(records.errors["time"]) >= 0)  # repaired order
