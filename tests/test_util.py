"""Tests for the shared utilities (time handling, hash noise)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util import (
    DAY_S,
    HOURS_PER_YEAR,
    MONTH_S,
    day_index,
    epoch,
    hash_normalish,
    hash_uniform,
    iso,
    month_index,
    splitmix64,
)


class TestTime:
    def test_epoch_origin(self):
        assert epoch("1970-01-01") == 0.0
        assert epoch("1970-01-02") == DAY_S

    def test_epoch_datetime(self):
        assert epoch("1970-01-01T01:00") == 3600.0

    def test_iso_roundtrip(self):
        t = epoch("2019-05-20")
        assert iso(t) == "2019-05-20T00:00:00"

    def test_month_index(self):
        t0 = epoch("2019-01-20")
        assert month_index(t0, t0) == 0
        assert month_index(t0 + MONTH_S + 1, t0) == 1
        out = month_index(np.array([t0, t0 + 2.5 * MONTH_S]), t0)
        assert out.tolist() == [0, 2]

    def test_day_index(self):
        t0 = epoch("2019-01-20")
        assert day_index(t0 + 3.5 * DAY_S, t0) == 3

    def test_constants(self):
        assert HOURS_PER_YEAR == 8760
        assert MONTH_S == pytest.approx(30.44 * DAY_S, rel=0.001)


class TestHashNoise:
    def test_deterministic(self):
        a = hash_uniform(np.arange(100), seed=5)
        b = hash_uniform(np.arange(100), seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_sensitivity(self):
        a = hash_uniform(np.arange(100), seed=5)
        b = hash_uniform(np.arange(100), seed=6)
        assert not np.array_equal(a, b)

    def test_uniform_range_and_moments(self):
        u = hash_uniform(np.arange(200_000), seed=1)
        assert u.min() >= 0.0 and u.max() < 1.0
        assert u.mean() == pytest.approx(0.5, abs=0.01)
        assert u.std() == pytest.approx(np.sqrt(1 / 12), abs=0.01)

    def test_multi_key_broadcast(self):
        out = hash_uniform(np.arange(5)[:, None], np.arange(3)[None, :])
        assert out.shape == (5, 3)
        assert np.unique(out).size == 15

    def test_normalish_moments(self):
        z = hash_normalish(np.arange(100_000), seed=2)
        assert z.mean() == pytest.approx(0.0, abs=0.02)
        assert z.std() == pytest.approx(1.0, abs=0.02)

    def test_splitmix_avalanche(self):
        """Adjacent inputs produce uncorrelated outputs (bit avalanche)."""
        a = splitmix64(np.arange(10_000, dtype=np.uint64))
        b = splitmix64(np.arange(1, 10_001, dtype=np.uint64))
        flips = np.bitwise_count(a ^ b).astype(float)
        assert flips.mean() == pytest.approx(32.0, abs=1.0)


@given(st.integers(0, 2**63), st.integers(0, 1000))
@settings(max_examples=50)
def test_property_hash_stable_per_key(key, seed):
    a = hash_uniform(np.uint64(key), seed=seed)
    b = hash_uniform(np.uint64(key), seed=seed)
    assert a == b
    assert 0.0 <= float(a) < 1.0
