"""End-to-end `repro query` over real campaign directories.

Covers the acceptance matrix: build/query/--check on a clean campaign,
--check catching a corrupted snapshot, --json validating against the
checked-in schema, and the stream -> query round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.schema import validate_file
from repro.query.rollup import RollupStore


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """A small text-log campaign with stream-built rollups."""
    directory = tmp_path_factory.mktemp("query-cli") / "camp"
    assert main([
        "synth", "--seed", "3", "--scale", "0.005",
        "--out", str(directory), "--text-logs",
    ]) == 0
    assert main([
        "stream", str(directory),
        "--rollups-dir", str(directory / "rollups"),
    ]) == 0
    return directory


class TestQueryCLI:
    def test_check_passes_on_clean_campaign(self, campaign_dir, capsys):
        code = main([
            "query", str(campaign_dir),
            "--select", "errors", "--group-by", "rack", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "element-identical" in out
        assert "source=stream" in out

    def test_json_doc_matches_schema(self, campaign_dir, tmp_path, capsys):
        code = main([
            "query", str(campaign_dir),
            "--select", "faults", "--group-by", "mode",
            "--check", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["check"]["identical"] is True
        artifact = tmp_path / "answer.json"
        artifact.write_text(json.dumps(doc))
        from repro.obs.schema import schema_dir

        assert validate_file(
            schema_dir() / "query.schema.json", artifact
        ) == []

    def test_manifest_matches_schema(self, campaign_dir):
        from repro.obs.schema import schema_dir

        assert validate_file(
            schema_dir() / "rollup.schema.json",
            campaign_dir / "rollups" / "rollup.json",
        ) == []

    def test_build_then_check_on_binary_campaign(self, campaign_dir, tmp_path):
        rollups = tmp_path / "built"
        assert main([
            "query", str(campaign_dir), "--rollups", str(rollups),
            "--build", "--select", "mode_errors", "--check",
        ]) == 0
        assert RollupStore.latest_version(rollups) == 1

    def test_top_k_human_output(self, campaign_dir, capsys):
        code = main([
            "query", str(campaign_dir),
            "--select", "errors", "--group-by", "node", "--top-k", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "served_from=rollup" in out

    def test_malformed_query_exits_2_with_hint(self, campaign_dir, capsys):
        code = main([
            "query", str(campaign_dir),
            "--select", "faults", "--group-by", "bitpos",
        ])
        assert code == 2
        assert "hint" in capsys.readouterr().err

    def test_missing_rollups_exits_2_with_hint(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main([
            "synth", "--seed", "4", "--scale", "0.004", "--out", str(directory),
        ]) == 0
        capsys.readouterr()
        code = main([
            "query", str(directory), "--select", "errors",
        ])
        assert code == 2
        assert "hint" in capsys.readouterr().err


class TestCorruption:
    def test_check_refuses_corrupted_snapshot(self, campaign_dir, tmp_path,
                                              capsys):
        import shutil

        rollups = tmp_path / "rollups"
        shutil.copytree(campaign_dir / "rollups", rollups)
        victim = next(rollups.glob("rollup-*.npz"))
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        code = main([
            "query", str(campaign_dir), "--rollups", str(rollups),
            "--select", "errors", "--group-by", "rack",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "found" in err and "expected" in err and "hint" in err

    def test_check_fails_on_stale_rollups(self, campaign_dir, tmp_path,
                                          capsys):
        """Appended log lines the cubes never saw must fail --check."""
        import shutil

        stale = tmp_path / "camp"
        shutil.copytree(campaign_dir, stale)
        # Duplicate the final (well-formed, time-ordered) CE line: one
        # extra record the snapshotted cubes never folded.
        with open(stale / "ce.log") as fh:
            last = fh.readlines()[-1]
        with open(stale / "ce.log", "a") as fh:
            fh.write(last)
        code = main([
            "query", str(stale),
            "--select", "errors", "--group-by", "rack", "--check",
        ])
        assert code == 1
        assert "check FAILED" in capsys.readouterr().err
