"""Figure reads through rollup views: parity and the safety gates.

fig04/fig05/fig12 may serve from an attached store, but only when the
cube geometry and error count match the campaign exactly -- a stale or
foreign store must be ignored, never silently change a figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.engine import build_store
from repro.query.rollup import RollupConfig
from repro.query.views import (
    campaign_rollups,
    rollup_per_node_errors,
    rollup_per_rack_errors,
    rollup_reported_mode_totals,
)


@pytest.fixture(scope="module")
def rollup_campaign(tmp_path_factory):
    """The small campaign with a matching store attached."""
    from repro.run import CampaignCache

    campaign, _ = CampaignCache().get_or_generate(seed=7, scale=0.02)
    campaign.rollups = build_store(
        campaign.errors, faults=campaign.faults(), config=RollupConfig()
    )
    return campaign


class TestGates:
    def test_matching_store_is_served(self, rollup_campaign):
        assert campaign_rollups(rollup_campaign) is not None

    def test_no_store_returns_none(self, rollup_campaign):
        bare = rollup_campaign
        store = bare.rollups
        try:
            bare.rollups = None
            assert campaign_rollups(bare) is None
            assert rollup_per_node_errors(bare) is None
        finally:
            bare.rollups = store

    def test_stale_store_is_rejected(self, rollup_campaign):
        stale = build_store(
            rollup_campaign.errors[:-5], config=RollupConfig()
        )
        store = rollup_campaign.rollups
        try:
            rollup_campaign.rollups = stale
            assert campaign_rollups(rollup_campaign) is None
        finally:
            rollup_campaign.rollups = store

    def test_foreign_geometry_is_rejected(self, rollup_campaign):
        foreign = build_store(
            rollup_campaign.errors,
            config=RollupConfig(nodes_per_rack=64),
        )
        store = rollup_campaign.rollups
        try:
            rollup_campaign.rollups = foreign
            assert campaign_rollups(rollup_campaign) is None
        finally:
            rollup_campaign.rollups = store


class TestParity:
    def test_per_node_view_matches_rescan(self, rollup_campaign):
        from repro.analysis.distributions import per_node_counts

        n = rollup_campaign.topology.n_nodes
        assert np.array_equal(
            rollup_per_node_errors(rollup_campaign),
            per_node_counts(rollup_campaign.errors, n),
        )

    def test_per_rack_view_matches_rescan(self, rollup_campaign):
        from repro.analysis.positional import counts_by_rack

        assert np.array_equal(
            rollup_per_rack_errors(rollup_campaign),
            counts_by_rack(
                rollup_campaign.errors, rollup_campaign.topology
            ),
        )

    def test_mode_totals_view_matches_series(self, rollup_campaign):
        from repro.analysis.trends import (
            mode_monthly_series,
            reported_mode_totals,
        )

        series = mode_monthly_series(
            rollup_campaign.errors,
            rollup_campaign.calibration.error_window,
        )
        assert rollup_reported_mode_totals(rollup_campaign) == (
            reported_mode_totals(series)
        )


class TestFigureParity:
    @pytest.mark.parametrize("exp_id", ["fig04", "fig05", "fig12"])
    def test_figure_identical_with_and_without_rollups(
        self, rollup_campaign, exp_id
    ):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{exp_id}")
        with_store = mod.run(rollup_campaign)
        store = rollup_campaign.rollups
        try:
            rollup_campaign.rollups = None
            without = mod.run(rollup_campaign)
        finally:
            rollup_campaign.rollups = store
        assert any("rollup" in n for n in with_store.notes)
        checks = {
            k: v for k, v in with_store.checks.items() if "rollup" not in k
        }
        assert checks == without.checks
        assert str(with_store.series) == str(without.series)
