"""Query engine: cube answers vs the full-rescan oracle.

Every answerable query shape must produce an answer element-identical
to :func:`repro.query.engine.recompute` over the raw arrays -- the same
contract ``repro query --check`` enforces from the CLI.
"""

from __future__ import annotations

import pytest

from repro.query.engine import (
    Query,
    QueryError,
    answers_equal,
    execute,
    recompute,
)

from .conftest import DAY_S, T0

PANEL = [
    dict(select="errors", group_by=["rack"]),
    dict(select="errors", group_by=["rack", "slot"]),
    dict(select="errors", group_by=["rack", "bucket"],
         where={"slot": [0, 3, 7]}),
    dict(select="errors", group_by=["rack"],
         where={"since": T0 + 2 * DAY_S, "until": T0 + 9 * DAY_S}),
    dict(select="errors", group_by=["node"], top_k=5),
    dict(select="errors", group_by=["bitpos"]),
    dict(select="errors", group_by=["bank"]),
    dict(select="errors", group_by=[]),
    dict(select="faults", group_by=["mode"]),
    dict(select="faults", group_by=["rack", "slot", "mode"]),
    dict(select="faults", group_by=["mode", "bucket"],
         where={"mode": ["single-bit", "single-column"]}),
    dict(select="mode_errors", group_by=["mode"]),
    dict(select="ce_windows", group_by=["node", "window"], top_k=10),
    dict(select="ce_windows", group_by=["node", "window"],
         where={"since": T0, "until": T0 + 5 * DAY_S}),
    dict(select="dropout", group_by=[]),
]


@pytest.mark.parametrize(
    "spec", PANEL,
    ids=lambda s: f"{s['select']}:{','.join(s.get('group_by', [])) or '-'}",
)
def test_cube_answer_identical_to_rescan(spec, store, corpus, sensors):
    errors, faults = corpus
    query = Query(
        spec["select"],
        spec.get("group_by", ()),
        where=spec.get("where"),
        top_k=spec.get("top_k"),
    )
    answer = execute(store, query)
    reference = recompute(
        query,
        store.config,
        errors=errors,
        faults=faults,
        sensor_times=sensors["time"],
    )
    assert answer["served_from"] == "rollup"
    assert reference["served_from"] == "rescan"
    assert answers_equal(answer, reference)


def test_total_counts_all_groups_before_top_k(store):
    full = execute(store, Query("errors", ["node"]))
    topped = execute(store, Query("errors", ["node"], top_k=3))
    assert topped["n_groups"] == 3
    assert topped["total"] == full["total"]
    assert topped["values"] == sorted(topped["values"], reverse=True)


def test_empty_group_by_yields_grand_total(store, corpus):
    errors, _ = corpus
    answer = execute(store, Query("errors", []))
    assert answer["keys"] == [[]]
    assert answer["values"] == [errors.size]


class TestValidation:
    def test_unknown_select_hints_the_choices(self):
        with pytest.raises(QueryError, match="hint"):
            Query("bogus", [])

    def test_unknown_where_key_hints_the_choices(self):
        with pytest.raises(QueryError, match="hint"):
            Query("errors", ["rack"], where={"dimm": 3})

    def test_faults_reject_node_filter(self):
        with pytest.raises(QueryError):
            Query("faults", ["mode"], where={"node": [4]})

    def test_node_histogram_must_stand_alone(self):
        with pytest.raises(QueryError):
            Query("errors", ["node", "rack"])

    def test_unknown_mode_label_rejected(self):
        with pytest.raises(QueryError):
            Query("faults", ["mode"], where={"mode": "quadruple-bit"})

    def test_nonpositive_top_k_rejected(self):
        with pytest.raises(QueryError):
            Query("errors", ["rack"], top_k=0)
