"""Versioned snapshot durability: atomic replace, prune, torn writes.

Satellite contract: a reader racing a writer sees the old bytes or the
new bytes, never torn ones -- including when the writer is ``kill -9``ed
mid-replace.  Every loaded store must be byte-equal to the store a
clean rebuild of some committed prefix produces.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.query.rollup import (
    KEEP_VERSIONS,
    MANIFEST_NAME,
    RollupConfig,
    RollupError,
    RollupStore,
)

from .conftest import synth_errors

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Writer loop used by both the thread race and the kill -9 test:
#: fold one batch, snapshot, repeat.  Prefix states (by errors_seen)
#: are the only states a reader may ever observe.
BATCH = 1_000
N_BATCHES = 8


def _prefix_stores() -> dict:
    """{errors_seen: store} for every committed prefix of the corpus."""
    errors = synth_errors(BATCH * N_BATCHES)
    out = {}
    store = RollupStore(RollupConfig())
    for i in range(N_BATCHES):
        store.update(errors[i * BATCH : (i + 1) * BATCH])
        clone = RollupStore.from_payload(store.to_payload())
        out[clone.errors_seen] = clone
    return out


class TestSnapshotBasics:
    def test_round_trip_and_version_growth(self, store, tmp_path):
        assert store.snapshot(tmp_path) == 1
        loaded = RollupStore.load(tmp_path)
        assert store.equal(loaded)
        assert loaded.source == store.source
        assert store.snapshot(tmp_path) == 2
        assert RollupStore.latest_version(tmp_path) == 2

    def test_prune_keeps_only_recent_versions(self, store, tmp_path):
        for _ in range(KEEP_VERSIONS + 2):
            store.snapshot(tmp_path)
        payloads = sorted(tmp_path.glob("rollup-*.npz"))
        assert len(payloads) == KEEP_VERSIONS
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert len(manifest["versions"]) == KEEP_VERSIONS
        # The older retained version is still loadable by number.
        want = manifest["latest"] - 1
        assert RollupStore.load(tmp_path, version=want).equal(store)

    def test_corrupt_payload_reports_found_and_expected(self, store, tmp_path):
        store.snapshot(tmp_path)
        victim = next(tmp_path.glob("rollup-*.npz"))
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(RollupError, match="found.*expected") as exc:
            RollupStore.load(tmp_path)
        assert "hint" in str(exc.value)

    def test_missing_version_names_whats_held(self, store, tmp_path):
        store.snapshot(tmp_path)
        with pytest.raises(RollupError, match="found.*hint"):
            RollupStore.load(tmp_path, version=99)

    def test_absent_directory_hints_build(self, tmp_path):
        with pytest.raises(RollupError, match="hint"):
            RollupStore.load(tmp_path / "nowhere")


class TestConcurrentReaders:
    def test_reader_sees_old_or_new_never_torn(self, tmp_path):
        """Loads racing a snapshotting writer always see a committed state."""
        prefixes = _prefix_stores()
        errors = synth_errors(BATCH * N_BATCHES)
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            store = RollupStore(RollupConfig())
            for i in range(N_BATCHES):
                store.update(errors[i * BATCH : (i + 1) * BATCH])
                store.snapshot(tmp_path)
            stop.set()

        def reader():
            while not stop.is_set() or not reads:
                try:
                    loaded = RollupStore.load(tmp_path)
                except RollupError as exc:
                    if "no rollup snapshot found" in str(exc):
                        continue  # writer has not committed v1 yet
                    failures.append(f"load raised: {exc}")
                    return
                reads.append(loaded.errors_seen)
                ref = prefixes.get(loaded.errors_seen)
                if ref is None:
                    failures.append(
                        f"non-prefix state {loaded.errors_seen}"
                    )
                    return
                if not loaded.equal(ref):
                    failures.append(
                        f"state {loaded.errors_seen} differs from rebuild"
                    )
                    return

        reads: list[int] = []
        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures
        assert reads, "readers never observed a snapshot"


_KILL_WRITER = """
import sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from query.conftest import synth_errors
from repro.query.rollup import RollupConfig, RollupStore

errors = synth_errors({total})
store = RollupStore(RollupConfig())
for i in range({batches}):
    store.update(errors[i * {batch} : (i + 1) * {batch}])
    store.snapshot(sys.argv[1])
    time.sleep(0.05)
"""


@pytest.mark.slow
class TestKillMidReplace:
    def test_sigkill_during_snapshot_loop_leaves_loadable_store(
        self, tmp_path
    ):
        """kill -9 a snapshotting writer; the survivor must load clean."""
        rollup_dir = tmp_path / "rollups"
        rollup_dir.mkdir()
        script = _KILL_WRITER.format(
            src=REPO_SRC,
            tests=str(Path(__file__).resolve().parents[1]),
            total=BATCH * N_BATCHES,
            batches=N_BATCHES,
            batch=BATCH,
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(rollup_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if RollupStore.latest_version(rollup_dir) is not None:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("writer never committed version 1")
            # Land the kill at an arbitrary point of a later write cycle.
            time.sleep(0.08)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # Any .tmp litter is expected debris; the manifest must point at
        # an intact payload equal to a committed prefix rebuild.
        loaded = RollupStore.load(rollup_dir)
        prefixes = _prefix_stores()
        assert loaded.errors_seen in prefixes
        assert loaded.equal(prefixes[loaded.errors_seen])
