"""Rollups maintained by the streaming pipeline and the fleet engine.

The differential contract: cubes built per-batch by the stream, or
per-shard and merged by the fleet reduction, are byte-equal to a
one-shot build over the concatenated record stream -- and checkpoint
resume restores them exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.query.engine import build_store
from repro.query.rollup import RollupConfig, RollupStore


@pytest.fixture(scope="module")
def fleet_and_result(tmp_path_factory):
    from repro.fleet import FleetSpec, synth_fleet
    from repro.fleet.engine import process_fleet

    directory = tmp_path_factory.mktemp("rollup-fleet") / "fl"
    spec = FleetSpec(n_clusters=2, seed=11, scale=0.003)
    fleet = synth_fleet(spec, directory)
    result = process_fleet(fleet, jobs=2, rollups=True)
    return fleet, result


class TestFleetRollups:
    def test_merged_shards_equal_one_shot_build(self, fleet_and_result):
        from repro.fleet.handle import fleet_errors

        fleet, result = fleet_and_result
        errors = fleet_errors(fleet)
        reference = build_store(
            errors, faults=coalesce(errors), config=RollupConfig()
        )
        assert result.rollups is not None
        assert result.rollups.source == "fleet"
        assert result.rollups.equal(reference)

    def test_fleet_campaign_attaches_store(self, fleet_and_result):
        from repro.analysis.distributions import per_node_counts
        from repro.fleet.handle import fleet_campaign
        from repro.query.views import rollup_per_node_errors

        fleet, result = fleet_and_result
        campaign = fleet_campaign(fleet, result)
        served = rollup_per_node_errors(campaign)
        assert served is not None
        assert np.array_equal(
            served,
            per_node_counts(campaign.errors, campaign.topology.n_nodes),
        )

    def test_to_dict_summarises_rollups(self, fleet_and_result):
        _, result = fleet_and_result
        doc = result.to_dict()["rollups"]
        assert doc["errors_seen"] == result.rollups.errors_seen
        assert doc["n_faults"] == result.rollups.n_faults

    def test_resume_without_rollups_reruns_shards(self, tmp_path):
        """Cache commits lacking cube payloads must not satisfy a
        rollup-requiring resume with a silently partial store."""
        from repro.fleet import FleetSpec, synth_fleet
        from repro.fleet.engine import process_fleet

        spec = FleetSpec(n_clusters=2, seed=13, scale=0.002)
        fleet = synth_fleet(spec, tmp_path / "fl")
        plain = process_fleet(fleet, jobs=1)
        assert plain.rollups is None
        resumed = process_fleet(fleet, jobs=1, resume=True, rollups=True)
        assert not resumed.resumed_shards  # every shard re-ran
        assert resumed.rollups is not None
        again = process_fleet(fleet, jobs=1, resume=True, rollups=True)
        assert again.resumed_shards  # rollup-bearing cache now satisfies
        assert again.rollups.equal(resumed.rollups)


class TestStreamRollups:
    def test_interrupted_stream_restores_rollups_exactly(
        self, tmp_path
    ):
        from repro.cli import main
        from repro.stream import StreamPipeline

        directory = tmp_path / "camp"
        assert main([
            "synth", "--seed", "5", "--scale", "0.004",
            "--out", str(directory), "--text-logs",
        ]) == 0

        # Uninterrupted reference run.
        ref = StreamPipeline(
            directory=directory, resume=False,
            rollup_dir=tmp_path / "ref-rollups",
        )
        ref.run()
        ref.finalize()

        # Interrupted run: stop mid-stream, then resume from the
        # checkpoint (which snapshots the cubes before every save).
        ckpt = tmp_path / "ckpt"
        victim = StreamPipeline(
            directory=directory, resume=False, checkpoint_dir=ckpt,
            rollup_dir=tmp_path / "rollups", batch_bytes=1 << 15,
        )
        victim.run(max_batches=3)
        survivor = StreamPipeline(
            directory=directory, resume=True, checkpoint_dir=ckpt,
            rollup_dir=tmp_path / "rollups", batch_bytes=1 << 15,
        )
        survivor.run()
        survivor.finalize()
        assert survivor.rollups.errors_seen > 0
        assert ref.rollups.equal(survivor.rollups)

        # The persisted snapshot equals the in-memory store.
        assert RollupStore.load(tmp_path / "rollups").equal(ref.rollups)
