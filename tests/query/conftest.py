"""Shared fixtures for the rollup/query suite.

``corpus`` is a deterministic CE stream drawn from a bounded fault
population (the same shape the streaming benchmark uses): records
coalesce into a few dozen faults, positional fields stay within the
Astra topology, and sentinel values appear at realistic rates so the
cube update path sees every masking branch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import DAY_S, epoch
from repro.faults.coalesce import coalesce
from repro.faults.types import empty_errors
from repro.query.engine import build_store
from repro.query.rollup import RollupConfig

T0 = epoch("2019-06-01")

N_FAULTS = 48


def synth_errors(n: int, seed: int = 5) -> np.ndarray:
    """``n`` CE records from ``N_FAULTS`` distinct fault locations."""
    rng = np.random.default_rng(seed)
    e = empty_errors(n)
    e["time"] = T0 + np.sort(rng.integers(0, 20 * DAY_S, n)).astype(float)
    which = rng.integers(0, N_FAULTS, n)
    for field, values in (
        ("node", rng.integers(0, 2592, N_FAULTS)),
        ("socket", rng.integers(0, 2, N_FAULTS)),
        ("slot", rng.integers(0, 16, N_FAULTS)),
        ("rank", rng.integers(0, 2, N_FAULTS)),
        ("bank", np.where(rng.random(N_FAULTS) < 0.1, -1,
                          rng.integers(0, 8, N_FAULTS))),
        ("row", np.where(rng.random(N_FAULTS) < 0.8, -1,
                         rng.integers(0, 1 << 17, N_FAULTS))),
        ("column", rng.integers(0, 1024, N_FAULTS)),
        ("bit_pos", np.where(rng.random(N_FAULTS) < 0.1, -1,
                             rng.integers(0, 72, N_FAULTS))),
        ("address", rng.integers(0, 1 << 40, N_FAULTS).astype(np.uint64)),
    ):
        e[field] = values[which]
    return e


def synth_sensors(n: int, seed: int = 9) -> np.ndarray:
    """BMC-like samples with two injected dropout gaps."""
    rng = np.random.default_rng(seed)
    times = T0 + np.arange(n) * 60.0 + rng.random(n)
    times[n // 3 :] += 900.0  # one dropout gap
    times[2 * n // 3 :] += 1800.0  # and another
    out = np.zeros(n, dtype=[("time", "f8"), ("node", "i4")])
    out["time"] = times
    out["node"] = rng.integers(0, 64, n)
    return out


@pytest.fixture(scope="session")
def corpus():
    errors = synth_errors(20_000)
    return errors, coalesce(errors)


@pytest.fixture(scope="session")
def sensors():
    return synth_sensors(600)


@pytest.fixture()
def store(corpus, sensors):
    errors, faults = corpus
    return build_store(
        errors, faults=faults, config=RollupConfig(), sensor_samples=sensors
    )
