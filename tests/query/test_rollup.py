"""RollupStore unit and differential tests.

The load-bearing contracts: incremental batch updates build the exact
cubes a one-shot update builds; merging split stores reproduces the
whole-stream store; the payload round-trip is lossless; and every
mismatch error names what was found, what was expected, and a recovery
hint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.query.engine import build_store
from repro.query.rollup import RollupConfig, RollupError, RollupStore

from .conftest import synth_errors, synth_sensors


class TestIncremental:
    def test_batched_updates_equal_one_shot(self, corpus, sensors):
        errors, faults = corpus
        one_shot = build_store(
            errors, faults=faults, sensor_samples=sensors
        )
        inc = RollupStore(RollupConfig())
        for lo in range(0, errors.size, 997):  # deliberately ragged
            inc.update(errors[lo : lo + 997])
        for lo in range(0, sensors.size, 101):
            inc.observe_sensors(sensors[lo : lo + 101])
        inc.set_faults(faults)
        assert one_shot.equal(inc)

    def test_error_cubes_are_strictly_additive(self, corpus):
        errors, _ = corpus
        a = RollupStore(RollupConfig())
        a.update(errors)
        b = RollupStore(RollupConfig())
        b.update(errors)
        b.update(errors)
        assert b.errors_seen == 2 * a.errors_seen
        assert np.array_equal(b.node_errors_padded(2592),
                              2 * a.node_errors_padded(2592))

    def test_set_faults_refreshes_not_accumulates(self, corpus):
        errors, faults = corpus
        store = RollupStore(RollupConfig())
        store.update(errors)
        store.set_faults(faults)
        first = store.mode_error_totals.copy()
        store.set_faults(faults)
        assert np.array_equal(store.mode_error_totals, first)
        assert store.n_faults == faults.size

    def test_empty_update_is_a_noop(self):
        store = RollupStore(RollupConfig())
        store.update(synth_errors(0))
        assert store.errors_seen == 0
        assert store.n_nodes_seen == 0


class TestMerge:
    def test_split_halves_merge_to_whole(self, corpus, sensors):
        errors, faults = corpus
        whole = build_store(errors, faults=faults, sensor_samples=sensors)
        mid = errors.size // 2
        left = build_store(errors[:mid], sensor_samples=sensors)
        right = build_store(errors[mid:])
        left.merge(right)
        left.set_faults(faults)
        assert whole.equal(left)

    def test_merge_into_empty_store(self, corpus):
        errors, faults = corpus
        whole = build_store(errors, faults=faults)
        empty = RollupStore(RollupConfig())
        empty.merge_payload(whole.to_payload())
        assert whole.equal(empty)

    def test_node_offset_lifts_shard_local_ids(self, corpus):
        errors, _ = corpus
        offset = 5 * 72  # five racks
        shifted = RollupStore(RollupConfig())
        shifted.update(errors, node_offset=offset)
        direct = RollupStore(RollupConfig())
        lifted = errors.copy()
        lifted["node"] += offset
        direct.update(lifted)
        assert shifted.equal(direct)

    def test_config_mismatch_names_found_and_expected(self, corpus):
        errors, _ = corpus
        a = build_store(errors)
        b = RollupStore(RollupConfig(bucket_s=3600.0))
        with pytest.raises(RollupError, match="found.*expected"):
            a.merge(b)


class TestPayload:
    def test_payload_round_trip_is_lossless(self, store):
        clone = RollupStore.from_payload(store.to_payload())
        assert store.equal(clone)
        assert clone.source == store.source
        assert clone.sensor_tallies() == store.sensor_tallies()

    def test_equal_ignores_provenance(self, corpus):
        errors, faults = corpus
        a = build_store(errors, faults=faults, source="stream",
                        policy="repair")
        b = build_store(errors, faults=faults, source="fleet", policy="skip")
        assert a.equal(b)

    def test_equal_detects_any_cube_divergence(self, corpus):
        errors, faults = corpus
        a = build_store(errors, faults=faults)
        b = build_store(errors, faults=faults)
        b.node_errors[0] += 1
        assert not a.equal(b)


class TestDifferentialVsAnalysis:
    def test_node_cube_matches_per_node_counts(self, corpus):
        from repro.analysis.distributions import per_node_counts

        errors, _ = corpus
        store = build_store(errors)
        assert np.array_equal(
            store.node_errors_padded(2592), per_node_counts(errors, 2592)
        )

    def test_rack_cube_matches_counts_by_rack(self, corpus):
        from repro.analysis.positional import counts_by_rack
        from repro.machine.topology import AstraTopology

        errors, _ = corpus
        store = build_store(errors)
        topo = AstraTopology()
        assert np.array_equal(
            store.rack_error_totals(topo.n_racks),
            counts_by_rack(errors, topo),
        )

    def test_dropout_tallies_match_alert_rule_walk(self, sensors):
        store = RollupStore(RollupConfig())
        store.observe_sensors(sensors)
        cfg = store.config
        ts = np.unique(sensors["time"])
        gaps = np.diff(ts)
        limit = cfg.dropout_min_gap * cfg.dropout_cadence_s
        tallies = store.sensor_tallies()
        assert tallies["samples"] == sensors.size
        assert tallies["dropouts"] == int((gaps > limit).sum())
        assert tallies["gap_seconds"] == pytest.approx(
            float(gaps[gaps > limit].sum())
        )
