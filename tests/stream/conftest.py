"""Shared fixtures for the streaming-subsystem suite.

``stream_campaign_dir`` is a pristine campaign directory holding all
four text telemetry families, written once per session; tests that
corrupt or grow it copy it to a per-test directory first.
"""

import shutil

import numpy as np
import pytest

from repro._util import DAY_S, epoch
from repro.logs.bmc import write_bmc_log
from repro.logs.campaign_io import write_campaign
from repro.logs.inventory import InventoryModel, write_inventory_snapshots
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.replacements import REPLACEMENT_DTYPE, Component
from repro.synth.sensors import SensorFieldModel

T0 = epoch("2019-06-01")


@pytest.fixture(scope="session")
def stream_campaign_dir(tmp_path_factory):
    from repro.run import CampaignCache

    campaign, _ = CampaignCache().get_or_generate(seed=3, scale=0.005)
    directory = tmp_path_factory.mktemp("stream-campaign") / "campaign"
    write_campaign(campaign, directory, text_logs=True)
    # Campaign IO only emits CE + HET text; add the other two families
    # so the pipeline suite exercises every tailer spec.
    write_bmc_log(
        directory / "bmc.csv",
        SensorFieldModel(seed=2),
        list(range(8)),
        T0,
        T0 + 3 * 3600.0,
    )
    events = np.zeros(1, dtype=REPLACEMENT_DTYPE)
    events[0] = (T0 + 0.5 * DAY_S, Component.DIMM, 2, -1, 9)
    model = InventoryModel(events, AstraTopology(), NodeConfig())
    write_inventory_snapshots(directory / "inventory.tsv", model, [T0])
    return directory


@pytest.fixture()
def campaign_copy(stream_campaign_dir, tmp_path):
    """A throwaway copy of the campaign, safe to corrupt or append to."""
    directory = tmp_path / "campaign"
    shutil.copytree(stream_campaign_dir, directory)
    return directory


