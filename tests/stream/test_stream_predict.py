"""stream --predict: online alerts, checkpointing, kill -9 /resume.

The regression at the heart of this file: SIGKILL a live predicting
stream mid-run, resume it, and demand the byte-identical alerts file
an uninterrupted run produces -- scores, seq numbers, rearm state and
all.  The predictor's full feature state rides in the checkpoint, so
nothing may depend on surviving process memory.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import schema_dir, validate_file, validate_jsonl
from repro.predict import train_and_evaluate

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    model, _ = train_and_evaluate(
        train_seeds=(101,), eval_seeds=(201,), scale=0.01, jobs=0
    )
    path = tmp_path_factory.mktemp("stream-predict") / "model.json"
    model.save(path)
    return path


def _stream_cmd(directory, ckpt, alerts, model, *extra):
    return [
        "stream", str(directory),
        "--checkpoint-dir", str(ckpt),
        "--alerts-out", str(alerts),
        "--batch-bytes", str(1 << 16),
        "--predict", "--model", str(model),
        *extra,
    ]


def _cli_env(delay_s=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    if delay_s is not None:
        env["ASTRA_MEMREPRO_STREAM_DELAY_S"] = str(delay_s)
    return env


class TestStreamPredict:
    def test_end_to_end_and_artifacts_validate(
        self, stream_campaign_dir, model_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        alerts = tmp_path / "alerts.jsonl"
        assert main(_stream_cmd(
            stream_campaign_dir, ckpt, alerts, model_path
        )) == 0
        out = capsys.readouterr().out
        assert "predictor: model" in out
        assert "batch(es) scored" in out
        assert validate_jsonl(
            schema_dir() / "alerts.schema.json", alerts
        ) == []
        assert validate_file(
            schema_dir() / "checkpoint.schema.json",
            ckpt / "checkpoint.json",
        ) == []
        state = json.loads((ckpt / "checkpoint.json").read_text())
        assert state["predictor"] is not None
        assert state["predictor"]["scored_batches"] > 0
        assert state["predictor"]["features"]["watermark"] is not None

    def test_clean_stop_resume_matches_uninterrupted(
        self, stream_campaign_dir, model_path, tmp_path, capsys
    ):
        clean_alerts = tmp_path / "clean.jsonl"
        assert main(_stream_cmd(
            stream_campaign_dir, tmp_path / "clean-ckpt", clean_alerts,
            model_path,
        )) == 0

        split_alerts = tmp_path / "split.jsonl"
        split_ckpt = tmp_path / "split-ckpt"
        base = _stream_cmd(
            stream_campaign_dir, split_ckpt, split_alerts, model_path
        )
        assert main(base + ["--max-batches", "3"]) == 0
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert split_alerts.read_bytes() == clean_alerts.read_bytes()


class TestMismatchExits:
    def test_predict_without_model_exit_2(self, stream_campaign_dir,
                                          tmp_path, capsys):
        assert main(
            ["stream", str(stream_campaign_dir), "--predict"]
        ) == 2
        err = capsys.readouterr().err
        assert "--model" in err and "hint" in err

    def test_model_without_predict_exit_2(self, stream_campaign_dir,
                                          model_path, capsys):
        assert main(
            ["stream", str(stream_campaign_dir), "--model",
             str(model_path)]
        ) == 2
        assert "--predict" in capsys.readouterr().err

    def test_corrupt_model_exit_2(self, stream_campaign_dir, model_path,
                                  tmp_path, capsys):
        bad = tmp_path / "bad.json"
        doc = json.loads(Path(model_path).read_text())
        doc["b"] = doc["b"] + 1.0
        bad.write_text(json.dumps(doc))
        assert main(
            ["stream", str(stream_campaign_dir), "--predict", "--model",
             str(bad)]
        ) == 2
        err = capsys.readouterr().err
        assert "integrity" in err and "hint" in err

    def test_resume_without_predict_refused(self, stream_campaign_dir,
                                            model_path, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = _stream_cmd(
            stream_campaign_dir, ckpt, tmp_path / "a.jsonl", model_path
        )
        assert main(base + ["--max-batches", "2"]) == 0
        assert main(
            ["stream", str(stream_campaign_dir), "--checkpoint-dir",
             str(ckpt), "--batch-bytes", str(1 << 16)]
        ) == 2
        err = capsys.readouterr().err
        assert "predictor mismatch" in err
        assert "hint" in err

    def test_resume_with_predict_against_plain_checkpoint_refused(
        self, stream_campaign_dir, model_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["stream", str(stream_campaign_dir), "--checkpoint-dir",
             str(ckpt), "--batch-bytes", str(1 << 16),
             "--max-batches", "2"]
        ) == 0
        assert main(_stream_cmd(
            stream_campaign_dir, ckpt, tmp_path / "a.jsonl", model_path
        )) == 2
        err = capsys.readouterr().err
        assert "predictor mismatch" in err

    def test_resume_with_different_model_refused(
        self, stream_campaign_dir, model_path, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        base = _stream_cmd(
            stream_campaign_dir, ckpt, tmp_path / "a.jsonl", model_path
        )
        assert main(base + ["--max-batches", "2"]) == 0
        # Retrain on a different split: valid artifact, different id.
        other_model, _ = train_and_evaluate(
            train_seeds=(102,), eval_seeds=(202,), scale=0.01, jobs=0
        )
        other = tmp_path / "other.json"
        other_model.save(other)
        assert main(_stream_cmd(
            stream_campaign_dir, ckpt, tmp_path / "a.jsonl", other
        )) == 2
        err = capsys.readouterr().err
        assert "predictor model" in err and "hint" in err


@pytest.mark.slow
class TestSigkillResume:
    def test_sigkill_then_resume_is_byte_identical(
        self, stream_campaign_dir, model_path, tmp_path
    ):
        """The satellite regression: kill -9 mid-stream, resume, and the
        alerts file (predicted_failure scores included) must equal an
        uninterrupted run byte for byte."""
        clean_alerts = tmp_path / "clean.jsonl"
        subprocess.run(
            [sys.executable, "-m", "repro.cli"] + _stream_cmd(
                stream_campaign_dir, tmp_path / "clean-ckpt",
                clean_alerts, model_path,
            ),
            env=_cli_env(), check=True, capture_output=True, timeout=300,
        )

        victim_alerts = tmp_path / "victim.jsonl"
        victim_ckpt = tmp_path / "victim-ckpt"
        cmd = [sys.executable, "-m", "repro.cli"] + _stream_cmd(
            stream_campaign_dir, victim_ckpt, victim_alerts, model_path
        )
        proc = subprocess.Popen(
            cmd, env=_cli_env(delay_s=0.4),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        ckpt_file = victim_ckpt / "checkpoint.json"
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if ckpt_file.exists():
                    break
                assert proc.poll() is None, "stream finished before kill"
                time.sleep(0.02)
            else:
                raise AssertionError("no checkpoint before the deadline")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        killed_at = json.loads(ckpt_file.read_text())
        assert killed_at["predictor"] is not None

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli"] + _stream_cmd(
                stream_campaign_dir, victim_ckpt, victim_alerts, model_path
            ),
            env=_cli_env(), check=True, capture_output=True, text=True,
            timeout=300,
        )
        assert "resumed from checkpoint" in result.stdout
        assert victim_alerts.read_bytes() == clean_alerts.read_bytes()
