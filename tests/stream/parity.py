"""Batch-pipeline ground truth the streaming suite compares against."""


def batch_reference(directory, policy="repair"):
    """Batch-pipeline ground truth for one campaign directory.

    Returns ``(faults, {family: IngestStats}, snapshots)`` exactly as
    the offline readers would compute them -- what a streamed-to-
    completion pipeline must reproduce byte for byte.
    """
    from repro.faults.coalesce import coalesce
    from repro.logs.bmc import ingest_bmc_log
    from repro.logs.het import ingest_het_log
    from repro.logs.inventory import ingest_inventory_snapshots
    from repro.logs.syslog import ingest_ce_log

    res = ingest_ce_log(directory / "ce.log", policy=policy)
    _, het_stats = ingest_het_log(directory / "het.log", policy=policy)
    stats = {"errors": res.stats, "het": het_stats}
    snapshots = None
    if (directory / "bmc.csv").exists():
        _, stats["sensors"] = ingest_bmc_log(
            directory / "bmc.csv", policy=policy
        )
    if (directory / "inventory.tsv").exists():
        snapshots, stats["inventory"] = ingest_inventory_snapshots(
            directory / "inventory.tsv", policy=policy
        )
    return coalesce(res.errors), stats, snapshots
