"""Stream-to-completion == batch, byte for byte; kill/resume is exact."""

import shutil

import numpy as np
import pytest

from repro.inject.corruptor import LogCorruptor
from repro.stream import StreamPipeline, faults_snapshot
from repro.stream.checkpoint import CheckpointError

from stream.parity import batch_reference

TEXT_FILES = ("ce.log", "het.log", "bmc.csv", "inventory.tsv")


def stream_to_completion(directory, **kw):
    pipeline = StreamPipeline(directory=directory, **kw)
    pipeline.run()
    summary = pipeline.finalize()
    return pipeline, summary


def assert_stream_matches_batch(pipeline, batch_dir):
    faults, stats, snapshots = batch_reference(batch_dir)
    np.testing.assert_array_equal(faults_snapshot(pipeline), faults)
    streamed = pipeline.final_ingest()
    assert set(streamed) == set(stats)
    for family, s in stats.items():
        assert streamed[family].to_dict() == s.to_dict(), family
    assert pipeline.snapshots == snapshots


class TestCleanParity:
    def test_all_families(self, campaign_copy):
        pipeline, summary = stream_to_completion(campaign_copy)
        assert_stream_matches_batch(pipeline, campaign_copy)
        assert summary["faults"] == int(faults_snapshot(pipeline).size)
        # Clean campaign: every family fully parsed, nothing quarantined.
        for family, s in summary["ingest"].items():
            assert s["quarantined"] == 0, family

    def test_growing_file_equals_static_file(self, campaign_copy, tmp_path):
        """Appending in arbitrary slices changes nothing."""
        full = (campaign_copy / "ce.log").read_bytes()
        growing_dir = tmp_path / "growing"
        growing_dir.mkdir()
        target = growing_dir / "ce.log"
        pipeline = StreamPipeline(directory=campaign_copy, files=None)
        # Reference: the static file streamed in one go.
        pipeline.run()
        ref = faults_snapshot(pipeline)

        rng = np.random.default_rng(0)
        cuts = np.sort(rng.integers(0, len(full), 9)).tolist() + [len(full)]
        grown = StreamPipeline(files=[target])
        written = 0
        for cut in cuts:
            with open(target, "ab") as fh:
                fh.write(full[written:cut])
            written = cut
            while grown.step()["progressed"]:
                pass
        grown.step(eof_flush=True)
        np.testing.assert_array_equal(faults_snapshot(grown), ref)


class TestCorruptedParity:
    @pytest.mark.parametrize("profile", ["light", "moderate", "hostile"])
    def test_profile(self, campaign_copy, tmp_path, profile):
        LogCorruptor(profile, seed=11).corrupt_campaign(campaign_copy)
        batch_dir = tmp_path / "batch"
        shutil.copytree(campaign_copy, batch_dir)

        pipeline, _ = stream_to_completion(campaign_copy)
        assert_stream_matches_batch(pipeline, batch_dir)
        # Quarantine sidecars must be byte-identical too.
        for name in TEXT_FILES:
            stream_side = campaign_copy / f"{name}.quarantine"
            batch_side = batch_dir / f"{name}.quarantine"
            assert stream_side.exists() == batch_side.exists(), name
            if batch_side.exists():
                assert stream_side.read_bytes() == batch_side.read_bytes()


class TestKillResume:
    BATCH_BYTES = 1 << 18

    def run_dir(self, tmp_path, name):
        d = tmp_path / name
        d.mkdir()
        return {"checkpoint_dir": d / "ckpt", "alerts_out": d / "alerts.jsonl"}

    def test_resume_is_exact(self, campaign_copy, tmp_path):
        LogCorruptor("moderate", seed=11).corrupt_campaign(campaign_copy)
        common = dict(
            directory=campaign_copy,
            batch_bytes=self.BATCH_BYTES,
            checkpoint_every=2,
        )

        # Reference: one uninterrupted run.
        ref_io = self.run_dir(tmp_path, "ref")
        ref, ref_summary = stream_to_completion(**common, **ref_io)

        # Interrupted run: a few batches, then the process "dies" (no
        # finalize, nothing flushed beyond the last checkpoint).
        cut_io = self.run_dir(tmp_path, "cut")
        first = StreamPipeline(**common, **cut_io)
        first.run(max_batches=3)
        assert first.batches == 3
        del first

        resumed = StreamPipeline(**common, **cut_io)
        assert resumed.batches == 2  # checkpoint_every=2 -> batch 2
        resumed.run()
        summary = resumed.finalize()

        np.testing.assert_array_equal(
            faults_snapshot(resumed), faults_snapshot(ref)
        )
        assert summary["ingest"] == ref_summary["ingest"]
        assert summary["alerts"] == ref_summary["alerts"]
        assert (
            cut_io["alerts_out"].read_bytes() == ref_io["alerts_out"].read_bytes()
        )
        ref_ckpt = (ref_io["checkpoint_dir"] / "checkpoint.json").read_text()
        cut_ckpt = (cut_io["checkpoint_dir"] / "checkpoint.json").read_text()
        assert cut_ckpt == ref_ckpt

    def test_resume_validates_batch_bytes(self, campaign_copy, tmp_path):
        io = self.run_dir(tmp_path, "run")
        first = StreamPipeline(
            directory=campaign_copy, batch_bytes=self.BATCH_BYTES, **io
        )
        first.run(max_batches=1)
        with pytest.raises(CheckpointError, match="batch_bytes"):
            StreamPipeline(
                directory=campaign_copy, batch_bytes=self.BATCH_BYTES * 2, **io
            )

    def test_resume_validates_policy(self, campaign_copy, tmp_path):
        io = self.run_dir(tmp_path, "run")
        first = StreamPipeline(
            directory=campaign_copy, batch_bytes=self.BATCH_BYTES, **io
        )
        first.run(max_batches=1)
        with pytest.raises(CheckpointError, match="policy"):
            StreamPipeline(
                directory=campaign_copy, policy="skip",
                batch_bytes=self.BATCH_BYTES, **io
            )

    def test_no_resume_starts_over(self, campaign_copy, tmp_path):
        io = self.run_dir(tmp_path, "run")
        first = StreamPipeline(
            directory=campaign_copy, batch_bytes=self.BATCH_BYTES, **io
        )
        first.run(max_batches=2)
        fresh = StreamPipeline(
            directory=campaign_copy, batch_bytes=self.BATCH_BYTES,
            resume=False, **io
        )
        assert fresh.batches == 0
        fresh.run()
        fresh.finalize()
        assert_stream_matches_batch(fresh, campaign_copy)
