"""CLI surface: --version, unknown-command handling, the stream verb."""

import json

import numpy as np
import pytest

from repro import __version__
from repro.cli import main
from repro.obs.schema import schema_dir, validate_file, validate_jsonl


class TestGlobalFlags:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        assert "known commands:" in err
        assert "hint:" in err

    def test_unknown_command_mixed_with_flags(self, capsys):
        assert main(["-q", "frobnicate"]) == 2
        assert "unknown command 'frobnicate'" in capsys.readouterr().err


@pytest.fixture(scope="module")
def text_campaign(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("cli-stream") / "camp"
    assert main(
        ["synth", "--seed", "3", "--scale", "0.005", "--out", str(out_dir),
         "--text-logs"]
    ) == 0
    return out_dir


class TestStreamVerb:
    def test_end_to_end_with_resume(self, text_campaign, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        alerts = tmp_path / "alerts.jsonl"
        faults_out = tmp_path / "faults.npy"
        base = [
            "stream", str(text_campaign),
            "--checkpoint-dir", str(ckpt),
            "--alerts-out", str(alerts),
            "--batch-bytes", str(1 << 18),
            "--ce-rate-threshold", "50",
        ]
        assert main(base + ["--max-batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "streamed 2 batch(es)" in out
        assert ckpt.joinpath("checkpoint.json").exists()

        # Second invocation resumes and drains to completion.
        assert main(base + ["--faults-out", str(faults_out)]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at batch 2" in out
        assert "errors: seen=" in out

        # Artifacts conform to their checked-in schemas.
        assert validate_jsonl(
            schema_dir() / "alerts.schema.json", alerts
        ) == []
        assert validate_file(
            schema_dir() / "checkpoint.schema.json", ckpt / "checkpoint.json"
        ) == []
        # Alert seq numbers are gapless across the two invocations.
        with open(alerts) as fh:
            seqs = [json.loads(line)["seq"] for line in fh if line.strip()]
        assert seqs == list(range(len(seqs)))

        # The persisted fault array equals the batch pipeline's answer.
        from repro.faults.coalesce import coalesce
        from repro.logs.syslog import ingest_ce_log

        res = ingest_ce_log(text_campaign / "ce.log", policy="repair")
        np.testing.assert_array_equal(
            np.load(faults_out), coalesce(res.errors)
        )

    def test_no_resume_starts_over(self, text_campaign, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = [
            "stream", str(text_campaign),
            "--checkpoint-dir", str(ckpt),
            "--batch-bytes", str(1 << 18),
        ]
        assert main(base + ["--max-batches", "1"]) == 0
        capsys.readouterr()
        assert main(base + ["--no-resume", "--max-batches", "1"]) == 0
        assert "resumed" not in capsys.readouterr().out

    def test_stream_without_options(self, text_campaign, capsys):
        assert main(["stream", str(text_campaign)]) == 0
        out = capsys.readouterr().out
        assert "live fault(s)" in out

    def test_stream_missing_directory_fails(self, tmp_path, capsys):
        code = main(["stream", str(tmp_path / "nope")])
        assert code != 0

    def test_truncated_file_exits_2_with_recovery_hint(
        self, text_campaign, tmp_path, capsys
    ):
        # Stream part of the log, then truncate it below the checkpoint
        # offset -- the classic logrotate-without-copytruncate accident.
        # The CLI must map the TailError to a clean exit 2 with the
        # recovery hint, not a traceback.
        import shutil

        camp = tmp_path / "camp"
        shutil.copytree(text_campaign, camp)
        ckpt = tmp_path / "ckpt"
        base = [
            "stream", str(camp),
            "--checkpoint-dir", str(ckpt),
            "--batch-bytes", str(1 << 18),
        ]
        assert main(base + ["--max-batches", "2"]) == 0
        capsys.readouterr()
        log = camp / "ce.log"
        log.write_bytes(log.read_bytes()[: 1 << 10])
        assert main(base) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "rotated or truncated" in err
        assert "To recover" in err
        assert "Traceback" not in err

    def test_trace_and_metrics_out(self, text_campaign, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "stream", str(text_campaign),
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        assert validate_file(
            schema_dir() / "trace.schema.json", trace
        ) == []
        assert validate_file(
            schema_dir() / "metrics.schema.json", metrics
        ) == []
        assert "stream." in metrics.read_text()
