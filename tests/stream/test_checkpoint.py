"""CheckpointStore: atomic snapshots, versioning, corruption handling."""

import json

import pytest

from repro.stream.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointStore,
)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert not store.exists()
        assert store.load() is None
        store.save({"batches": 3, "payload": [1, 2.5, None, "x"]})
        assert store.exists()
        state = store.load()
        assert state["batches"] == 3
        assert state["payload"] == [1, 2.5, None, "x"]
        assert state["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_save_leaves_no_tmp_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1})
        store.save({"a": 2})
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["checkpoint.json"]
        assert store.load()["a"] == 2

    def test_float_round_trip_is_exact(self, tmp_path):
        store = CheckpointStore(tmp_path)
        values = [0.1 + 0.2, 1e300, 1559347200.000001, -0.0]
        store.save({"floats": values})
        assert store.load()["floats"] == values

    def test_version_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1})
        doc = json.loads(store.path.read_text())
        doc["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        store.path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="schema_version"):
            store.load()

    def test_corrupt_json_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1})
        store.path.write_text(store.path.read_text()[:-10])
        with pytest.raises(CheckpointError):
            store.load()

    def test_non_object_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError):
            store.load()

    def test_creates_directory(self, tmp_path):
        store = CheckpointStore(tmp_path / "nested" / "ckpt")
        store.save({"a": 1})
        assert store.load()["a"] == 1
