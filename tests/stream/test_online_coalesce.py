"""Differential tests: OnlineCoalescer == batch coalesce, always."""

import json

import numpy as np
import pytest

from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.faults.types import empty_errors
from repro.stream.online_coalesce import OnlineCoalescer

OPTION_SETS = [
    CoalesceOptions(),
    CoalesceOptions(split_banks=False),
    CoalesceOptions(row_available=True),
]


def random_errors(n: int, seed: int) -> np.ndarray:
    """CE records over a bounded population so groups actually form."""
    rng = np.random.default_rng(seed)
    e = empty_errors(n)
    e["time"] = np.sort(rng.uniform(0, 1e6, n))
    e["node"] = rng.integers(0, 6, n)
    e["socket"] = rng.integers(0, 2, n)
    e["slot"] = rng.integers(-1, 4, n)
    e["rank"] = rng.integers(0, 2, n)
    e["bank"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 4, n))
    e["row"] = np.where(rng.random(n) < 0.7, -1, rng.integers(0, 64, n))
    e["column"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 16, n))
    e["bit_pos"] = np.where(rng.random(n) < 0.1, -1, rng.integers(0, 72, n))
    # A few huge addresses exercise the int64 wrap in the bit key.
    addr = rng.integers(0, 1 << 20, n).astype(np.uint64)
    huge = rng.random(n) < 0.05
    offsets = rng.integers(0, 4, int(huge.sum())).astype(np.uint64)
    addr[huge] = np.iinfo(np.uint64).max - offsets
    e["address"] = addr
    e["syndrome"] = rng.integers(0, 256, n)
    return e


def feed_in_splits(errors, options, rng) -> OnlineCoalescer:
    oc = OnlineCoalescer(options)
    cuts = np.sort(rng.integers(0, errors.size + 1, rng.integers(1, 8)))
    for chunk in np.split(errors, cuts):
        oc.add(chunk)
    return oc


class TestDifferential:
    @pytest.mark.parametrize("options", OPTION_SETS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_batch(self, options, seed):
        errors = random_errors(1500, seed)
        rng = np.random.default_rng(seed + 100)
        oc = feed_in_splits(errors, options, rng)
        np.testing.assert_array_equal(oc.faults(), coalesce(errors, options))

    def test_split_invariance(self):
        """Any batching of the same records yields the same faults."""
        errors = random_errors(800, 7)
        rng = np.random.default_rng(8)
        ref = feed_in_splits(errors, None, rng).faults()
        for seed in range(3):
            oc = feed_in_splits(errors, None, np.random.default_rng(seed))
            np.testing.assert_array_equal(oc.faults(), ref)

    def test_empty_and_incremental(self):
        oc = OnlineCoalescer()
        created, touched = oc.add(empty_errors(0))
        assert created == [] and touched == []
        assert oc.faults().size == 0
        errors = random_errors(100, 3)
        created, touched = oc.add(errors)
        assert set(created) <= set(touched)
        created2, touched2 = oc.add(errors)  # same keys again
        assert created2 == []
        assert set(touched2) == set(touched)

    def test_mode_counts_match_faults(self):
        oc = OnlineCoalescer()
        oc.add(random_errors(1000, 5))
        faults = oc.faults()
        from repro.faults.types import FaultMode

        expect = {}
        for m in faults["mode"]:
            label = FaultMode(m).label
            expect[label] = expect.get(label, 0) + 1
        assert oc.mode_counts() == expect


class TestState:
    def test_round_trip_through_json(self):
        errors = random_errors(600, 9)
        oc = OnlineCoalescer(CoalesceOptions(split_banks=False))
        oc.add(errors[:250])
        state = json.loads(json.dumps(oc.to_state()))
        restored = OnlineCoalescer.from_state(state)
        oc.add(errors[250:])
        restored.add(errors[250:])
        np.testing.assert_array_equal(restored.faults(), oc.faults())
        np.testing.assert_array_equal(
            oc.faults(), coalesce(errors, CoalesceOptions(split_banks=False))
        )
