"""LogTailer mechanics: partial lines, headers, growth, shrink, gears."""

import numpy as np
import pytest

from repro._util import epoch
from repro.logs.bmc import ingest_bmc_log, write_bmc_log
from repro.logs.ingest import IngestPolicy, MalformedRecordError
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.stream.tailer import FAMILY_SPECS, LogTailer, TailError, spec_for_path
from repro.synth.sensors import SensorFieldModel
from util import bit_error, make_errors

T0 = epoch("2019-06-01")


def ce_lines(n: int) -> tuple[list[bytes], np.ndarray]:
    """n valid CE log lines (bytes, newline-terminated) + their records."""
    import tempfile
    from pathlib import Path

    errors = make_errors(
        [bit_error(node=i % 5, t=T0 + float(i)) for i in range(n)]
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ce.log"
        write_ce_log(errors, path)
        raw = path.read_bytes()
    lines = [line + b"\n" for line in raw.rstrip(b"\n").split(b"\n")]
    assert len(lines) == n
    return lines, errors


def make_tailer(path, policy="repair", **kw):
    spec = spec_for_path(path)
    assert spec is not None
    return LogTailer(path, spec, IngestPolicy.coerce(policy), **kw)


class TestIncrementalReads:
    def test_partial_trailing_line_held_back(self, tmp_path):
        lines, errors = ce_lines(3)
        path = tmp_path / "ce.log"
        path.write_bytes(lines[0] + lines[1][:10])
        tailer = make_tailer(path)
        records = tailer.poll()
        assert records.size == 1
        np.testing.assert_array_equal(records, errors[:1])
        # Nothing new: the partial line stays buffered on disk.
        assert tailer.poll() is None
        with open(path, "ab") as fh:
            fh.write(lines[1][10:] + lines[2])
        records = tailer.poll()
        assert records.size == 2
        np.testing.assert_array_equal(records, errors[1:])

    def test_eof_flush_consumes_unterminated_tail(self, tmp_path):
        lines, errors = ce_lines(2)
        path = tmp_path / "ce.log"
        path.write_bytes(lines[0] + lines[1].rstrip(b"\n"))  # no final \n
        tailer = make_tailer(path)
        assert tailer.poll().size == 1
        assert tailer.poll() is None
        records = tailer.poll(eof_flush=True)
        assert records.size == 1
        np.testing.assert_array_equal(records, errors[1:])
        assert tailer.lag_bytes() == 0

    def test_crlf_lines(self, tmp_path):
        lines, errors = ce_lines(4)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(line[:-1] + b"\r\n" for line in lines))
        tailer = make_tailer(path)
        out = []
        while (records := tailer.poll()) is not None:
            out.append(records)
        np.testing.assert_array_equal(np.concatenate(out), errors)
        assert tailer.stats.seen == 4

    def test_small_batches_cover_file(self, tmp_path):
        lines, errors = ce_lines(50)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(lines))
        tailer = make_tailer(path, batch_bytes=100)
        out, polls = [], 0
        while (records := tailer.poll()) is not None:
            out.append(records)
            polls += 1
        assert polls > 1  # actually incremental
        np.testing.assert_array_equal(np.concatenate(out), errors)

    def test_line_longer_than_batch_bytes(self, tmp_path):
        lines, errors = ce_lines(2)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(lines))
        tailer = make_tailer(path, batch_bytes=8)  # shorter than any line
        out = []
        while (records := tailer.poll()) is not None:
            out.append(records)
        np.testing.assert_array_equal(np.concatenate(out), errors)

    def test_shrunk_file_raises(self, tmp_path):
        lines, _ = ce_lines(3)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(lines))
        tailer = make_tailer(path)
        tailer.poll()
        path.write_bytes(lines[0])  # truncated behind the offset
        with pytest.raises(TailError):
            tailer.poll()

    def test_missing_file_polls_empty(self, tmp_path):
        tailer = make_tailer(tmp_path / "ce.log")
        assert tailer.poll() is None
        assert tailer.stats.missing


class TestHeaderAndFamilies:
    def write_bmc(self, path):
        write_bmc_log(path, SensorFieldModel(seed=2), [0, 1], T0, T0 + 1800.0)

    def test_bmc_header_consumed_once(self, tmp_path):
        path = tmp_path / "bmc.csv"
        self.write_bmc(path)
        tailer = make_tailer(path)
        out = []
        while (records := tailer.poll()) is not None:
            out.append(records)
        samples, stats = ingest_bmc_log(path, policy="repair")
        # Batch repair re-sorts by time; the tailer keeps arrival order
        # (its consumers are order-insensitive), so compare as multisets
        # and hold the deferred accounting to exact parity.
        order = ["time", "node", "sensor", "value"]
        np.testing.assert_array_equal(
            np.sort(np.concatenate(out), order=order),
            np.sort(samples, order=order),
        )
        assert tailer.final_stats().to_dict() == stats.to_dict()

    def test_bmc_missing_header_strict_raises(self, tmp_path):
        path = tmp_path / "bmc.csv"
        self.write_bmc(path)
        body = path.read_bytes().split(b"\n", 1)[1]
        path.write_bytes(body)
        tailer = make_tailer(path, policy="strict")
        with pytest.raises(MalformedRecordError):
            tailer.poll()

    def test_spec_for_path(self, tmp_path):
        assert spec_for_path(tmp_path / "ce.log").family == "errors"
        assert spec_for_path(tmp_path / "het.log").family == "het"
        assert spec_for_path(tmp_path / "bmc-0.csv").family == "sensors"
        assert spec_for_path(tmp_path / "inventory.tsv").family == "inventory"
        assert spec_for_path(tmp_path / "ce.log.quarantine") is None
        assert spec_for_path(tmp_path / "notes.txt") is None


class TestParityWithBatch:
    def test_ce_stats_and_quarantine_match_batch(self, tmp_path):
        lines, _ = ce_lines(20)
        garbled = lines[:10] + [b"garbage line\n"] + lines[10:]
        stream_path = tmp_path / "stream" / "ce.log"
        batch_path = tmp_path / "batch" / "ce.log"
        for path in (stream_path, batch_path):
            path.parent.mkdir()
            path.write_bytes(b"".join(garbled))

        tailer = make_tailer(stream_path, policy="skip")
        while tailer.poll() is not None:
            pass
        tailer.poll(eof_flush=True)
        tailer.flush_quarantine()

        res = ingest_ce_log(batch_path, policy="skip")
        assert tailer.final_stats().to_dict() == res.stats.to_dict()
        stream_side = stream_path.with_suffix(".log.quarantine")
        batch_side = batch_path.with_suffix(".log.quarantine")
        assert stream_side.read_bytes() == batch_side.read_bytes()

    def test_slow_gear_parity(self, tmp_path, monkeypatch):
        lines, errors = ce_lines(30)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(lines))
        monkeypatch.setenv("ASTRA_MEMREPRO_SLOW_INGEST", "1")
        tailer = make_tailer(path, batch_bytes=200)
        out = []
        while (records := tailer.poll()) is not None:
            out.append(records)
        np.testing.assert_array_equal(np.concatenate(out), errors)
        assert tailer.stats.fast_lines == 0

    def test_state_round_trip_mid_file(self, tmp_path):
        lines, errors = ce_lines(40)
        path = tmp_path / "ce.log"
        path.write_bytes(b"".join(lines))
        tailer = make_tailer(path, batch_bytes=300)
        first = tailer.poll()
        state = tailer.to_state()

        resumed = make_tailer(path, batch_bytes=300)
        resumed.restore(state)
        out = [first]
        while (records := resumed.poll()) is not None:
            out.append(records)
        np.testing.assert_array_equal(np.concatenate(out), errors)
        assert resumed.final_stats().to_dict() == (
            ingest_ce_log(path, policy="repair").stats.to_dict()
        )
