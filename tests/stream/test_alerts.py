"""Alert rule catalog and the exactly-once JSONL sink."""

import json

import numpy as np
import pytest

from repro.logs.bmc import sensor_dropout_windows
from repro.stream.alerts import (
    AlertEngine,
    AlertRules,
    AlertSink,
    read_alerts,
)
from repro.stream.online_coalesce import OnlineCoalescer
from repro.synth.het import HET_DTYPE, NON_RECOVERABLE_EVENTS
from util import bit_error, make_errors


def engine(**rule_kw):
    oc = OnlineCoalescer()
    return AlertEngine(oc, AlertRules(**rule_kw)), oc


def observe(eng, oc, errors, batch=0):
    created, touched = oc.add(errors)
    return eng.observe_errors(errors, created, touched, batch)


class TestFaultRules:
    def test_new_fault_alert(self):
        eng, oc = engine()
        errors = make_errors([bit_error(node=3, slot=2, t=10.0)])
        alerts = observe(eng, oc, errors)
        (alert,) = [a for a in alerts if a["rule"] == "new_fault"]
        assert alert["node"] == 3
        assert alert["time"] == 10.0
        assert alert["detail"]["slot"] == 2
        assert alert["detail"]["mode"] == "single-bit"

    def test_new_fault_fires_once_per_group(self):
        eng, oc = engine()
        errors = make_errors(
            [bit_error(t=1.0), bit_error(t=2.0), bit_error(t=3.0)]
        )
        assert len(observe(eng, oc, errors, 0)) == 1
        more = make_errors([bit_error(t=4.0)])
        assert observe(eng, oc, more, 1) == []

    def test_mode_transition(self):
        eng, oc = engine()
        first = make_errors([bit_error(column=5, bit=3, t=1.0)])
        observe(eng, oc, first, 0)
        # Same word, different bit: single-bit -> single-word.
        second = make_errors([bit_error(column=5, bit=9, t=2.0)])
        alerts = observe(eng, oc, second, 1)
        (alert,) = [a for a in alerts if a["rule"] == "mode_transition"]
        assert alert["detail"]["from_mode"] == "single-bit"
        assert alert["detail"]["to_mode"] != "single-bit"
        assert alert["time"] == 2.0
        # Stable mode: no further transition alerts.
        third = make_errors([bit_error(column=5, bit=9, t=3.0)])
        assert observe(eng, oc, third, 2) == []


class TestCeRate:
    def errors_at(self, node, times):
        return make_errors(
            [bit_error(node=node, t=float(t)) for t in times]
        )

    def test_threshold_crossing_time(self):
        eng, oc = engine(ce_rate_threshold=3, ce_rate_window_s=100.0)
        alerts = observe(eng, oc, self.errors_at(1, [10, 20, 30, 40]))
        (alert,) = [a for a in alerts if a["rule"] == "ce_rate"]
        assert alert["node"] == 1
        assert alert["time"] == 30.0  # the third record crossed
        assert alert["detail"]["count"] == 4
        assert alert["detail"]["threshold"] == 3
        assert alert["detail"]["window_start"] == 0.0

    def test_fires_once_per_window_across_batches(self):
        eng, oc = engine(ce_rate_threshold=3, ce_rate_window_s=100.0)
        a1 = observe(eng, oc, self.errors_at(1, [10, 20]), 0)
        assert [a for a in a1 if a["rule"] == "ce_rate"] == []
        a2 = observe(eng, oc, self.errors_at(1, [30, 40]), 1)
        (alert,) = [a for a in a2 if a["rule"] == "ce_rate"]
        assert alert["time"] == 30.0
        a3 = observe(eng, oc, self.errors_at(1, [50, 60]), 2)
        assert [a for a in a3 if a["rule"] == "ce_rate"] == []
        # A new window starts counting from zero.
        a4 = observe(eng, oc, self.errors_at(1, [110, 120, 130]), 3)
        (alert,) = [a for a in a4 if a["rule"] == "ce_rate"]
        assert alert["detail"]["window_start"] == 100.0
        assert alert["time"] == 130.0

    def test_counts_are_per_node(self):
        eng, oc = engine(ce_rate_threshold=3, ce_rate_window_s=100.0)
        mixed = make_errors(
            [bit_error(node=n, t=float(10 + i)) for i, n in
             enumerate([1, 2, 1, 2, 1])]
        )
        alerts = [a for a in observe(eng, oc, mixed) if a["rule"] == "ce_rate"]
        assert [a["node"] for a in alerts] == [1]


class TestHetAndSensors:
    def test_uncorrectable_per_record(self):
        eng, _ = engine()
        events = np.zeros(3, dtype=HET_DTYPE)
        events["time"] = [1.0, 2.0, 3.0]
        events["node"] = [5, 6, 7]
        bad = sorted(NON_RECOVERABLE_EVENTS)[0]
        events["event"] = [0, bad, bad]
        events["non_recoverable"] = [False, True, True]
        alerts = eng.observe_het(events, 0)
        assert [a["node"] for a in alerts] == [6, 7]
        assert all(a["rule"] == "uncorrectable" for a in alerts)
        assert alerts[0]["detail"]["event"] == bad
        assert isinstance(alerts[0]["detail"]["event_name"], str)

    def samples(self, times):
        out = np.zeros(len(times), dtype=[("time", "f8"), ("node", "i8")])
        out["time"] = times
        return out

    def test_sensor_dropout_positive(self):
        eng, _ = engine(dropout_cadence_s=60.0, dropout_min_gap=3.0)
        alerts = eng.observe_sensors(self.samples([0, 60, 120, 600]), 0)
        (alert,) = alerts
        assert alert["rule"] == "sensor_dropout"
        assert alert["node"] == -1
        assert alert["detail"] == {
            "gap_start": 120.0, "gap_end": 600.0, "gap_s": 480.0,
        }

    def test_dropout_matches_batch_windows(self):
        rng = np.random.default_rng(4)
        times = np.cumsum(rng.choice([60.0, 60.0, 60.0, 400.0], 200))
        all_samples = self.samples(np.repeat(times, 2))  # two nodes
        eng, _ = engine()
        got = []
        for chunk in np.array_split(all_samples, 7):
            got.extend(eng.observe_sensors(chunk, 0))
        windows = sensor_dropout_windows(all_samples)
        assert [
            (a["detail"]["gap_start"], a["detail"]["gap_end"]) for a in got
        ] == windows

    def test_watermark_ignores_out_of_order_past(self):
        eng, _ = engine()
        assert eng.observe_sensors(self.samples([0, 60]), 0) == []
        # Late replay of old timestamps must not create a fake gap.
        assert eng.observe_sensors(self.samples([0]), 1) == []
        assert eng.observe_sensors(self.samples([120]), 2) == []


class TestEngineState:
    def test_round_trip_through_json(self):
        eng, oc = engine(ce_rate_threshold=2, ce_rate_window_s=50.0)
        observe(eng, oc, make_errors([bit_error(t=1.0)]))
        eng.observe_sensors(
            np.array([(5.0,)], dtype=[("time", "f8")]), 0
        )
        state = json.loads(json.dumps(eng.to_state()))
        eng2, _ = engine()
        eng2.restore(state)
        assert eng2.rules == eng.rules
        assert eng2._ce_counts == eng._ce_counts
        assert eng2._ce_fired == eng._ce_fired
        assert eng2._sensor_watermark == eng._sensor_watermark


class TestAlertSink:
    def alert(self, t):
        return {"rule": "new_fault", "time": t, "batch": 0, "node": 1,
                "detail": {}}

    def test_seq_and_offset(self, tmp_path):
        sink = AlertSink(tmp_path / "alerts.jsonl")
        sink.emit([self.alert(1.0), self.alert(2.0)])
        sink.emit([self.alert(3.0)])
        docs = read_alerts(sink.path)
        assert [d["seq"] for d in docs] == [0, 1, 2]
        assert sink.offset == sink.path.stat().st_size
        assert sink.seq == 3

    def test_resume_truncates_unacked_tail(self, tmp_path):
        sink = AlertSink(tmp_path / "alerts.jsonl")
        sink.emit([self.alert(1.0)])
        state = sink.to_state()  # checkpoint here
        sink.emit([self.alert(2.0), self.alert(3.0)])  # lost to the crash
        resumed = AlertSink(tmp_path / "alerts.jsonl")
        resumed.restore(state)
        resumed.emit([self.alert(2.0), self.alert(3.0)])  # re-derived
        docs = read_alerts(resumed.path)
        assert [d["seq"] for d in docs] == [0, 1, 2]
        assert [d["time"] for d in docs] == [1.0, 2.0, 3.0]

    def test_restore_fresh_truncates_everything(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = AlertSink(path)
        sink.emit([self.alert(1.0)])
        fresh = AlertSink(path)
        fresh.restore({"seq": 0, "offset": 0})
        assert path.stat().st_size == 0

    def test_restore_short_file_errors(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = AlertSink(path)
        sink.emit([self.alert(1.0), self.alert(2.0)])
        state = sink.to_state()
        path.write_bytes(path.read_bytes()[:10])
        broken = AlertSink(path)
        with pytest.raises(RuntimeError, match="shorter"):
            broken.restore(state)

    def test_restore_missing_file_errors(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = AlertSink(path)
        sink.emit([self.alert(1.0)])
        state = sink.to_state()
        path.unlink()
        broken = AlertSink(path)
        with pytest.raises(FileNotFoundError):
            broken.restore(state)

    def test_external_append_detected(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = AlertSink(path)
        sink.emit([self.alert(1.0)])
        with open(path, "ab") as fh:
            fh.write(b"intruder\n")
        with pytest.raises(RuntimeError, match="interleave"):
            sink.emit([self.alert(2.0)])
