"""Smoke tests: every example script runs and tells the paper's story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "coalesced into" in out
    assert "single-bit" in out
    assert "top-8 nodes hold" in out


def test_log_pipeline():
    out = run_example("log_pipeline.py")
    assert "0 malformed" in out
    assert "replacements recovered by diffing" in out
    assert "NON-RECOVERABLE" in out


def test_mitigation_study():
    out = run_example("mitigation_study.py")
    assert "page retirement" in out
    assert "node exclude list" in out


def test_temperature_study():
    out = run_example("temperature_study.py")
    assert "NOT correlated" in out
    assert "decile span" in out


def test_ecc_tradeoff():
    out = run_example("ecc_tradeoff.py")
    assert "chipkill" in out
    assert "miscorrect" in out


def test_mechanistic_demo():
    out = run_example("mechanistic_demo.py")
    assert "coalesced into 3 faults" in out
    assert "single-bank" in out


def test_fleet_triage():
    out = run_example("fleet_triage.py")
    assert "rack heat map" in out
    assert "exclude-list candidates" in out
    assert "DIMM slots by fault count" in out


@pytest.mark.slow
def test_scaling_study():
    out = run_example("scaling_study.py")
    assert "error nodes" in out
    assert "stabilise" in out


@pytest.mark.slow
def test_full_reproduction_paper_scale():
    """The flagship example exits 0 (every shape claim holds) at full
    volume; reduced scales are demo-only (some claims are statistical
    and need the paper's data volume)."""
    out = run_example("full_reproduction.py", "--scale", "1.0")
    assert "reproduction report" in out
    assert "fig15" in out
    assert "[FAIL]" not in out
