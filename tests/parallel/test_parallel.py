"""Tests for the shard-parallel engine."""

import numpy as np
import pytest

from repro.analysis.counts import counts_by
from repro.faults.coalesce import coalesce
from repro.machine.topology import AstraTopology
from repro.parallel.executor import ShardMapReduce, parallel_coalesce
from repro.parallel.sharding import merge_counts, merge_fault_arrays, shard_errors


class TestSharding:
    def test_shards_partition_records(self, small_campaign):
        shards = shard_errors(small_campaign.errors, small_campaign.topology)
        assert sum(s.size for s in shards) == small_campaign.errors.size

    def test_shards_pure_by_rack(self, small_campaign):
        topo = small_campaign.topology
        for shard in shard_errors(small_campaign.errors, topo):
            assert np.unique(topo.rack_of(shard["node"])).size == 1

    def test_empty_stream(self):
        from repro.faults.types import empty_errors

        assert shard_errors(empty_errors(0)) == []

    def test_merge_counts(self):
        out = merge_counts([np.array([1, 2]), np.array([3, 4, 5])])
        assert out.tolist() == [4, 6, 5]

    def test_merge_validation(self):
        with pytest.raises(ValueError):
            merge_counts([])
        with pytest.raises(ValueError):
            merge_fault_arrays([])


class TestParallelCoalesce:
    def test_serial_equals_whole_stream(self, small_campaign):
        serial = coalesce(small_campaign.errors)
        sharded = parallel_coalesce(
            small_campaign.errors, small_campaign.topology, n_workers=0
        )
        assert sharded.size == serial.size
        # Same ordering convention: compare everything except fault_id.
        for field in serial.dtype.names:
            if field == "fault_id":
                continue
            np.testing.assert_array_equal(sharded[field], serial[field])

    def test_process_pool_equals_serial(self, small_campaign):
        serial = parallel_coalesce(
            small_campaign.errors, small_campaign.topology, n_workers=0
        )
        parallel = parallel_coalesce(
            small_campaign.errors, small_campaign.topology, n_workers=2
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_more_workers_than_shards_equals_serial(self, small_campaign):
        """Oversubscribed pools (n_workers > busy racks) stay bit-for-bit."""
        topo = small_campaign.topology
        racks = topo.rack_of(small_campaign.errors["node"])
        two_racks = small_campaign.errors[np.isin(racks, [0, 1])]
        serial = parallel_coalesce(two_racks, topo, n_workers=0)
        parallel = parallel_coalesce(two_racks, topo, n_workers=8)
        np.testing.assert_array_equal(serial, parallel)

    def test_fault_ids_dense(self, small_campaign):
        out = parallel_coalesce(small_campaign.errors, small_campaign.topology)
        np.testing.assert_array_equal(out["fault_id"], np.arange(out.size))


class TestMapReduce:
    def test_custom_aggregation(self, small_campaign):
        """Per-slot error counts via map-reduce equal the direct count."""
        engine = ShardMapReduce(
            map_fn=_slot_counts, reduce_fn=merge_counts, n_workers=0
        )
        out = engine.run(small_campaign.errors, small_campaign.topology)
        direct, _ = counts_by(small_campaign.errors, "slot")
        np.testing.assert_array_equal(out, direct)

    def test_empty_input(self):
        from repro.faults.types import empty_errors

        engine = ShardMapReduce(
            map_fn=_slot_counts, reduce_fn=lambda ps: ps, n_workers=0
        )
        assert engine.run(empty_errors(0)) == []


def _slot_counts(shard):
    return counts_by(shard, "slot")[0]


def _double(x):
    return x * 2


class TestPoolBrokenFallback:
    def test_broken_pool_finishes_serially_with_audit_trail(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro import obs
        from repro.parallel import executor

        class _DoomedPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, task):
                raise BrokenProcessPool("worker exited abruptly")

        monkeypatch.setattr(executor, "ProcessPoolExecutor", _DoomedPool)
        before = obs.get_metrics().counter_value("parallel.pool_broken")
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            out = executor.map_tasks(_double, [1, 2, 3], n_workers=2)
        assert out == [2, 4, 6]  # serial fallback still answers exactly
        after = obs.get_metrics().counter_value("parallel.pool_broken")
        assert after == before + 1
