"""Chaos: kill the server mid-load, corrupt the model artifact.

Both scenarios run the real CLI as a subprocess.  The contract: a
killed server never leaves a client hanging on a half-open socket
(connections die with a clean OS error, retries against a restarted
server succeed and serve the identical warm table), and a damaged
model artifact is refused by the CRC guard before the port ever binds.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn(model, directory, ready, timeout_s=60.0):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--model", str(model), str(directory),
         "--ready-file", str(ready)],
        env=_cli_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if ready.exists():
            return proc, json.loads(ready.read_text())
        if proc.poll() is not None:
            raise AssertionError(
                f"server died with {proc.returncode} before ready"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("server not ready in time")


def _get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


@pytest.mark.slow
class TestKillRestartMidLoad:
    def test_clients_fail_clean_and_retries_succeed(
        self, serve_model_path, serve_campaign_dir, tmp_path
    ):
        ready = tmp_path / "ready.json"
        proc, info = _spawn(serve_model_path, serve_campaign_dir, ready)
        host, port = info["host"], info["port"]

        # Steady client load from threads while the server dies.
        stop = threading.Event()
        outcomes: list[str] = []
        lock = threading.Lock()

        def hammer():
            while not stop.is_set():
                try:
                    status, _ = _get(host, port, "/healthz")
                    result = f"http-{status}"
                except (ConnectionError, http.client.HTTPException,
                        OSError):
                    result = "refused"  # clean OS error, never a hang
                with lock:
                    outcomes.append(result)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            time.sleep(0.3)
            baseline = _get(host, port, "/v1/risk/top?k=5")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            time.sleep(0.3)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        assert "http-200" in outcomes       # load was real before the kill
        assert "refused" in outcomes        # and failed clean after it
        assert not any(o.startswith("http-5") for o in outcomes)

        # Restart on a fresh port: same model, same campaign, so the
        # warm table must come back identical.
        ready2 = tmp_path / "ready2.json"
        proc2, info2 = _spawn(serve_model_path, serve_campaign_dir, ready2)
        try:
            assert info2["model_id"] == info["model_id"]
            status, doc = _get(
                info2["host"], info2["port"], "/v1/risk/top?k=5"
            )
            assert status == 200
            assert doc == baseline[1]
        finally:
            proc2.send_signal(signal.SIGTERM)
            proc2.wait(timeout=30)


class TestCorruptModel:
    def test_damaged_artifact_refused_before_binding(
        self, serve_model_path, tmp_path
    ):
        bad = tmp_path / "bad.json"
        doc = json.loads(Path(serve_model_path).read_text())
        doc["w"][0] = doc["w"][0] + 1.0  # tamper one weight
        bad.write_text(json.dumps(doc))
        ready = tmp_path / "ready.json"
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--model", str(bad), "--ready-file", str(ready)],
            env=_cli_env(), capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "integrity" in result.stderr
        assert "hint" in result.stderr
        assert not ready.exists()

    def test_missing_model_refused_with_hint(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve",
             "--model", str(tmp_path / "absent.json")],
            env=_cli_env(), capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "hint" in result.stderr
