"""The HTTP front door: routing, status codes, framing, keep-alive.

Routing-table tests hit ``Server.handle`` directly; the socket-level
tests run the real asyncio server on an ephemeral port and speak
HTTP/1.1 to it with raw reader/writer pairs.
"""

import asyncio
import json

import pytest

from repro.obs.schema import schema_dir, validate
from repro.serve import SERVE_SCHEMA_VERSION, Server


@pytest.fixture(scope="module")
def server(warm_state):
    return Server(warm_state)


def _body(raw: bytes) -> dict:
    return json.loads(raw)


def _schema():
    return json.loads(
        (schema_dir() / "serve.schema.json").read_text()
    )


class TestRouting:
    def test_every_route_validates_against_the_schema(self, server):
        schema = _schema()
        node = int(server.state.nodes[0])
        for target in (
            "/healthz",
            f"/v1/risk?node={node}",
            "/v1/risk/top?k=3",
            "/v1/alerts?since=-1&limit=2",
            "/v1/query?select=errors&group_by=rack&top_k=5",
            "/v1/stats",
        ):
            status, _, body = server.handle("GET", target)
            assert status == 200, target
            assert validate(_body(body), schema) == [], target

    def test_error_bodies_share_the_envelope(self, server):
        schema = _schema()
        for method, target, want in (
            ("POST", "/healthz", 405),
            ("GET", "/nope", 404),
            ("GET", "/v1/risk", 400),
            ("GET", "/v1/risk?node=notanumber", 400),
            ("GET", "/v1/risk/top?k=0", 400),
            ("GET", "/v1/query?select=errors&bogus=1", 400),
        ):
            status, _, body = server.handle(method, target)
            assert status == want, target
            doc = _body(body)
            assert validate(doc, schema) == [], target
            assert doc["schema_version"] == SERVE_SCHEMA_VERSION
            assert doc["error"]["status"] == want
            assert doc["error"]["message"]

    def test_unknown_path_lists_routes(self, server):
        _, _, body = server.handle("GET", "/v2/everything")
        assert "/v1/risk/top" in _body(body)["error"]["message"]

    def test_foreign_node_is_a_400_not_a_500(self, server):
        n = server.state.model.geometry["n_nodes"] + 5
        status, _, body = server.handle("GET", f"/v1/risk?node={n}")
        assert status == 400
        assert "fleet geometry" in _body(body)["error"]["message"]

    def test_handler_crash_is_a_clean_500(self, server, monkeypatch):
        def boom():
            raise RuntimeError("kaboom")

        monkeypatch.setattr(server.state, "health", boom)
        status, _, body = server.handle("GET", "/healthz")
        assert status == 500
        doc = _body(body)
        assert validate(doc, _schema()) == []
        assert "RuntimeError: kaboom" in doc["error"]["message"]

    def test_requests_counter_advances(self, server):
        before = server.state.requests
        server.handle("GET", "/healthz")
        assert server.state.requests == before + 1


async def _request(reader, writer, target, headers=""):
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: t\r\n{headers}\r\n".encode()
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length)
    return status, head, json.loads(body)


class TestSocketLevel:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_keep_alive_serves_many_requests_per_socket(self, warm_state,
                                                        tmp_path):
        ready = tmp_path / "ready.json"

        async def scenario():
            server = Server(warm_state, ready_file=ready)
            host, port = await server.start()
            assert json.loads(ready.read_text())["port"] == port
            reader, writer = await asyncio.open_connection(host, port)
            for _ in range(5):
                status, head, doc = await _request(reader, writer, "/healthz")
                assert status == 200
                assert b"Connection: keep-alive" in head
                assert doc["status"] == "ok"
            writer.close()
            await writer.wait_closed()
            await server.close()

        self._run(scenario())

    def test_connection_close_is_honoured(self, warm_state):
        async def scenario():
            server = Server(warm_state)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            status, head, _ = await _request(
                reader, writer, "/healthz", headers="Connection: close\r\n"
            )
            assert status == 200
            assert b"Connection: close" in head
            assert await reader.read() == b""  # server closed its side
            writer.close()
            await writer.wait_closed()
            await server.close()

        self._run(scenario())

    def test_malformed_request_line_gets_400(self, warm_state):
        async def scenario():
            server = Server(warm_state)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"COMPLETE NONSENSE\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b" 400 " in head.split(b"\r\n")[0]
            writer.close()
            await writer.wait_closed()
            await server.close()

        self._run(scenario())

    def test_oversized_head_gets_431(self, warm_state):
        async def scenario():
            server = Server(warm_state)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"GET /healthz HTTP/1.1\r\nX-Pad: " + b"x" * 40_000
                + b"\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b" 431 " in head.split(b"\r\n")[0]
            writer.close()
            await writer.wait_closed()
            await server.close()

        self._run(scenario())

    def test_concurrent_connections_all_answered(self, warm_state):
        async def one(host, port, node):
            reader, writer = await asyncio.open_connection(host, port)
            status, _, doc = await _request(
                reader, writer, f"/v1/risk?node={node}"
            )
            writer.close()
            await writer.wait_closed()
            return status, doc["node"]

        async def scenario():
            server = Server(warm_state)
            host, port = await server.start()
            nodes = [int(n) for n in warm_state.nodes[:20]]
            results = await asyncio.gather(
                *(one(host, port, n) for n in nodes)
            )
            assert [r[0] for r in results] == [200] * len(nodes)
            assert [r[1] for r in results] == nodes
            await server.close()

        self._run(scenario())
