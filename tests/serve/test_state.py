"""ServeState: warm tables, incremental alert tail, query passthrough."""

import json

import numpy as np
import pytest

from repro.predict.errors import PredictError
from repro.predict.model import Model
from repro.predict.score import score_records
from repro.serve import SERVE_SCHEMA_VERSION, NotFound, ServeError, ServeState
from repro.serve.state import _AlertTail


class TestBuild:
    def test_scores_match_one_shot_fold(self, warm_state, serve_model_path,
                                        serve_campaign_dir):
        from repro.logs.campaign_io import load_campaign_records

        model = Model.load(serve_model_path)
        records = load_campaign_records(serve_campaign_dir, policy="repair")
        nodes, scores = score_records(records.errors, records.het, model)
        assert warm_state.nodes.tolist() == nodes.tolist()
        assert warm_state.scores.tobytes() == scores.tobytes()

    def test_rollups_auto_detected(self, warm_state):
        assert warm_state.rollups is not None
        assert "rollups" in warm_state.source

    def test_model_only_state(self, serve_model_path):
        state = ServeState.build(serve_model_path)
        assert state.nodes.size == 0
        assert state.health()["nodes_scored"] == 0
        with pytest.raises(NotFound):
            state.query({"select": "errors"})
        with pytest.raises(NotFound):
            state.alerts_since()


class TestRisk:
    def test_observed_node(self, warm_state):
        node = int(warm_state.nodes[0])
        doc = warm_state.risk(node)
        assert doc["schema_version"] == SERVE_SCHEMA_VERSION
        assert doc["node"] == node
        assert doc["observed"] is True
        assert doc["score"] == float(warm_state.scores[0])
        assert doc["at_risk"] == (
            doc["score"] >= warm_state.model.threshold
        )

    def test_unobserved_node_floors_to_zero(self, warm_state):
        quiet = next(
            n for n in range(warm_state.model.geometry["n_nodes"])
            if n not in warm_state._row
        )
        doc = warm_state.risk(quiet)
        assert doc["observed"] is False
        assert doc["score"] == 0.0
        assert doc["at_risk"] is False

    def test_foreign_node_refused(self, warm_state):
        with pytest.raises(PredictError, match="fleet geometry"):
            warm_state.risk(warm_state.model.geometry["n_nodes"] + 1)


class TestTop:
    def test_order_is_score_desc_then_node(self, warm_state):
        doc = warm_state.top(k=10)
        rows = doc["nodes"]
        assert len(rows) == min(10, warm_state.nodes.size)
        keys = [(-r["score"], r["node"]) for r in rows]
        assert keys == sorted(keys)
        # And it really is the global top, not just sorted output.
        floor = min(r["score"] for r in rows)
        others = [
            float(s) for n, s in zip(warm_state.nodes, warm_state.scores)
            if int(n) not in {r["node"] for r in rows}
        ]
        assert all(s <= floor for s in others)

    def test_k_beyond_fleet_is_clamped(self, warm_state):
        doc = warm_state.top(k=10_000)
        assert len(doc["nodes"]) == warm_state.nodes.size

    def test_bad_k_refused(self, warm_state):
        with pytest.raises(ServeError, match="positive"):
            warm_state.top(k=0)


class TestAlertTail:
    def test_since_pagination(self, warm_state):
        doc = warm_state.alerts_since(since=-1, limit=2)
        assert [a["seq"] for a in doc["alerts"]] == [0, 1]
        assert doc["total"] == 5
        doc = warm_state.alerts_since(since=1, limit=100)
        assert [a["seq"] for a in doc["alerts"]] == [2, 3, 4]
        doc = warm_state.alerts_since(since=99, limit=10)
        assert doc["alerts"] == []

    def test_incremental_refresh_reads_only_appended(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text('{"seq": 0}\n')
        tail = _AlertTail(path)
        tail.refresh()
        assert [a["seq"] for a in tail.alerts] == [0]
        offset = tail.offset
        with open(path, "a") as fh:
            fh.write('{"seq": 1}\n')
        tail.refresh()
        assert [a["seq"] for a in tail.alerts] == [0, 1]
        assert tail.offset > offset

    def test_partial_line_is_buffered_not_parsed(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text('{"seq": 0}\n{"seq"')
        tail = _AlertTail(path)
        tail.refresh()
        assert [a["seq"] for a in tail.alerts] == [0]
        with open(path, "a") as fh:
            fh.write(': 1}\n')
        tail.refresh()
        assert [a["seq"] for a in tail.alerts] == [0, 1]

    def test_truncation_resets_the_tail(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text('{"seq": 0}\n{"seq": 1}\n')
        tail = _AlertTail(path)
        tail.refresh()
        assert len(tail.alerts) == 2
        # Exactly-once resume rewound the sink: shorter file, new run.
        path.write_text('{"seq": 0}\n')
        tail.refresh()
        assert [a["seq"] for a in tail.alerts] == [0]

    def test_missing_file_is_quietly_empty(self, tmp_path):
        tail = _AlertTail(tmp_path / "nope.jsonl")
        tail.refresh()
        assert tail.alerts == []


class TestQuery:
    def test_passthrough_equals_direct_execute(self, warm_state):
        from repro.query import Query, execute

        doc = warm_state.query(
            {"select": "errors", "group_by": "rack", "top_k": "5"}
        )
        want = execute(
            warm_state.rollups,
            Query("errors", group_by=("rack",), top_k=5),
        )
        assert doc["answer"] == want

    def test_repeat_query_is_served_from_cache(self, warm_state):
        params = {"select": "errors", "group_by": "rack"}
        a = warm_state.query(dict(params))
        b = warm_state.query(dict(params))
        assert a is b  # the cached envelope object itself

    def test_where_filters_parse(self, warm_state):
        doc = warm_state.query(
            {"select": "errors", "group_by": "rack", "rack": "0,1"}
        )
        assert doc["answer"]["n_groups"] <= 2

    def test_unknown_param_refused_with_hint(self, warm_state):
        with pytest.raises(ServeError, match="unknown query params"):
            warm_state.query({"select": "errors", "frobnicate": "1"})

    def test_missing_select_refused(self, warm_state):
        with pytest.raises(ServeError, match="select"):
            warm_state.query({})

    def test_engine_error_becomes_serve_error(self, warm_state):
        with pytest.raises(ServeError):
            warm_state.query({"select": "nonsense"})


class TestStatsAndHealth:
    def test_health(self, warm_state):
        doc = warm_state.health()
        assert doc["status"] == "ok"
        assert doc["model_id"] == warm_state.model.model_id
        assert doc["nodes_scored"] == warm_state.nodes.size

    def test_stats(self, warm_state):
        doc = warm_state.stats()
        assert doc["nodes_scored"] == warm_state.nodes.size
        assert doc["nodes_at_risk"] == int(
            np.sum(warm_state.scores >= warm_state.model.threshold)
        )
        assert doc["rollups"] is True
        assert doc["alerts_cached"] == 5
        assert doc["source"]["directory"]
