"""Fixtures for the serving suite: a model, a campaign, warm state."""

import json

import pytest

from repro.cli import main
from repro.predict import train_and_evaluate
from repro.serve import ServeState

SCALE = 0.01


@pytest.fixture(scope="session")
def serve_model_path(tmp_path_factory):
    model, _ = train_and_evaluate(
        train_seeds=(101,), eval_seeds=(201,), scale=SCALE, jobs=0
    )
    path = tmp_path_factory.mktemp("serve-model") / "model.json"
    model.save(path)
    return path


@pytest.fixture(scope="session")
def serve_campaign_dir(tmp_path_factory):
    """Campaign with text logs and a rollup snapshot next to them."""
    out = tmp_path_factory.mktemp("serve-camp") / "camp"
    assert main(
        ["synth", "--seed", "301", "--scale", str(SCALE), "--out",
         str(out), "--text-logs"]
    ) == 0
    assert main(["query", str(out), "--build"]) == 0
    return out


@pytest.fixture(scope="session")
def alerts_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-alerts") / "alerts.jsonl"
    with open(path, "w") as fh:
        for seq in range(5):
            fh.write(json.dumps({
                "seq": seq, "rule": "ce_rate", "time": 1e9 + seq,
                "batch": seq, "node": seq % 3, "detail": {"count": seq},
            }) + "\n")
    return path


@pytest.fixture(scope="session")
def warm_state(serve_model_path, serve_campaign_dir, alerts_file):
    return ServeState.build(
        serve_model_path, serve_campaign_dir, alerts_path=alerts_file
    )
