"""The predict verb end to end: train, eval, score, gates, exits."""

import json

import pytest

from repro.cli import main
from repro.obs.schema import schema_dir, validate_file

SCALE = "0.01"
SPLIT = ["--train-seeds", "101", "--eval-seeds", "201", "--scale", SCALE]


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """One CLI training run shared by the whole module."""
    out = tmp_path_factory.mktemp("cli-predict")
    model = out / "model.json"
    report = out / "report.json"
    assert main(
        ["predict", "train", "--out", str(model), "--report", str(report),
         *SPLIT]
    ) == 0
    return model, report


@pytest.fixture(scope="module")
def scored_campaign(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-predict-camp") / "camp"
    assert main(
        ["synth", "--seed", "301", "--scale", SCALE, "--out", str(out),
         "--text-logs"]
    ) == 0
    return out


class TestTrain:
    def test_artifacts_written_and_valid(self, trained):
        model, report = trained
        assert validate_file(
            schema_dir() / "predict.schema.json", report
        ) == []
        doc = json.loads(model.read_text())
        assert doc["kind"] == "predict-model"
        assert doc["trained"]["train_seeds"] == [101]

    def test_human_summary(self, trained, capsys):
        model, _ = trained
        assert main(
            ["predict", "eval", "--model", str(model)]
        ) == 0
        out = capsys.readouterr().out
        assert "held-out: AUC" in out
        assert "baseline" in out
        assert "lead-time recall" in out

    def test_impossible_gate_fails_with_exit_1(self, tmp_path, capsys):
        model = tmp_path / "model.json"
        assert main(
            ["predict", "train", "--out", str(model), *SPLIT,
             "--min-recall", "1.1"]
        ) == 1
        assert "gate FAILED" in capsys.readouterr().err

    def test_overlapping_seeds_exit_2(self, tmp_path, capsys):
        assert main(
            ["predict", "train", "--out", str(tmp_path / "m.json"),
             "--train-seeds", "101", "--eval-seeds", "101",
             "--scale", SCALE]
        ) == 2
        err = capsys.readouterr().err
        assert "overlap" in err and "hint" in err


class TestEval:
    def test_eval_reproduces_training_metrics(self, trained, tmp_path):
        model, train_report = trained
        report2 = tmp_path / "report2.json"
        assert main(
            ["predict", "eval", "--model", str(model), "--report",
             str(report2)]
        ) == 0
        a = json.loads(train_report.read_text())
        b = json.loads(report2.read_text())
        assert b["model"] == a["model"]
        assert b["baseline"] == a["baseline"]
        assert b["model_id"] == a["model_id"]

    def test_eval_refuses_train_seeds(self, trained, capsys):
        model, _ = trained
        assert main(
            ["predict", "eval", "--model", str(model), "--seeds", "101"]
        ) == 2
        err = capsys.readouterr().err
        assert "training set" in err and "hint" in err

    def test_missing_model_exit_2(self, tmp_path, capsys):
        assert main(
            ["predict", "eval", "--model", str(tmp_path / "nope.json")]
        ) == 2
        assert "hint" in capsys.readouterr().err


class TestScore:
    def test_score_writes_table(self, trained, scored_campaign, tmp_path,
                                capsys):
        model, _ = trained
        scores = tmp_path / "scores.json"
        assert main(
            ["predict", "score", str(scored_campaign), "--model",
             str(model), "--scores-out", str(scores)]
        ) == 0
        out = capsys.readouterr().out
        assert "node" in out
        doc = json.loads(scores.read_text())
        assert doc["kind"] == "predict-scores"
        assert len(doc["nodes"]) == len(doc["scores"]) > 0

    def test_score_jobs_identity(self, trained, scored_campaign, tmp_path):
        model, _ = trained
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, jobs in ((a, "0"), (b, "4")):
            assert main(
                ["predict", "score", str(scored_campaign), "--model",
                 str(model), "--jobs", jobs, "--scores-out", str(path)]
            ) == 0
        da, db = json.loads(a.read_text()), json.loads(b.read_text())
        assert da["scores"] == db["scores"]
        assert da["nodes"] == db["nodes"]

    def test_corrupt_model_exit_2(self, trained, scored_campaign, tmp_path,
                                  capsys):
        model, _ = trained
        bad = tmp_path / "bad.json"
        doc = json.loads(model.read_text())
        doc["threshold"] = 0.0
        bad.write_text(json.dumps(doc))
        assert main(
            ["predict", "score", str(scored_campaign), "--model", str(bad)]
        ) == 2
        err = capsys.readouterr().err
        assert "integrity" in err and "hint" in err

    def test_foreign_geometry_exit_2(self, trained, scored_campaign,
                                     tmp_path, capsys):
        """Satellite contract: a model trained on a different fleet is
        refused with found/expected + recovery hint, exit 2."""
        from repro.predict.model import Model

        model_path, _ = trained
        model = Model.load(model_path)
        model.geometry = dict(model.geometry, n_nodes=2)
        shrunken = tmp_path / "shrunken.json"
        model.save(shrunken)
        assert main(
            ["predict", "score", str(scored_campaign), "--model",
             str(shrunken)]
        ) == 2
        err = capsys.readouterr().err
        assert "fleet geometry" in err
        assert "expected" in err and "hint" in err
