"""Shared fixtures for the prediction suite.

Everything is tiny-scale: one training seed, one held-out seed, 0.01
fleet scale.  The full-protocol metrics gates live in CI's
predict-smoke job at 0.02 scale; here the campaigns only have to be
big enough to exercise the mechanics.
"""

import pytest

from repro.predict import train_and_evaluate
from repro.predict.dataset import (
    DatasetConfig,
    build_dataset,
    make_training_campaign,
)

TINY_SCALE = 0.01
TINY_TRAIN = (101,)
TINY_EVAL = (201,)


@pytest.fixture(scope="session")
def tiny_model_report():
    """(model, eval report) from the smallest honest protocol run."""
    return train_and_evaluate(
        train_seeds=TINY_TRAIN,
        eval_seeds=TINY_EVAL,
        scale=TINY_SCALE,
        jobs=0,
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_model_report):
    return tiny_model_report[0]


@pytest.fixture(scope="session")
def train_campaign():
    """One hazard-linked training-distribution campaign."""
    return make_training_campaign(TINY_TRAIN[0], TINY_SCALE)


@pytest.fixture(scope="session")
def train_dataset(train_campaign):
    return build_dataset(train_campaign, DatasetConfig())
