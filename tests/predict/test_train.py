"""Train/evaluate protocol: report shape, split honesty, determinism."""

import json

import pytest

from repro.obs.schema import schema_dir, validate_file
from repro.predict import train_and_evaluate
from repro.predict.errors import PredictError
from repro.predict.train import baseline_scores, evaluate


class TestProtocol:
    def test_report_validates_against_schema(self, tiny_model_report,
                                             tmp_path):
        _, report = tiny_model_report
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert validate_file(
            schema_dir() / "predict.schema.json", path
        ) == []

    def test_report_carries_the_split(self, tiny_model_report):
        model, report = tiny_model_report
        assert report["train"]["seeds"] == [101]
        assert report["eval"]["seeds"] == [201]
        assert report["train"]["positives"] > 0
        assert report["eval"]["positives"] > 0
        assert report["model_id"] == model.model_id
        assert 0.0 <= report["model"]["auc"] <= 1.0
        assert 0.0 <= report["baseline"]["auc"] <= 1.0

    def test_model_records_its_provenance(self, tiny_model):
        assert tiny_model.trained["train_seeds"] == [101]
        assert tiny_model.trained["eval_seeds"] == [201]
        assert tiny_model.trained["scale"] == 0.01

    def test_overlapping_seeds_refused(self):
        with pytest.raises(PredictError, match="overlap"):
            train_and_evaluate(
                train_seeds=(101, 102), eval_seeds=(102,), scale=0.005
            )

    def test_training_is_deterministic(self, tiny_model_report):
        model, report = tiny_model_report
        again_model, again_report = train_and_evaluate(
            train_seeds=(101,), eval_seeds=(201,), scale=0.01, jobs=0
        )
        assert again_model.model_id == model.model_id
        assert again_report == report


class TestBaseline:
    def test_baseline_is_the_24h_rate_column(self, train_dataset):
        from repro.predict.features import FEATURE_INDEX

        base = baseline_scores(train_dataset.X)
        assert base.tolist() == train_dataset.X[
            :, FEATURE_INDEX["ce_w24"]
        ].tolist()

    def test_evaluate_reports_both_contenders(self, tiny_model,
                                              train_dataset):
        results = evaluate(tiny_model, train_dataset, target_fpr=0.01)
        assert set(results) == {"model", "baseline"}
        assert {e["lead_h"] for e in results["model"]["lead_curve"]} == \
            {1, 6, 24, 72, 168}
