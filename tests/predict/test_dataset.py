"""Labeling-protocol honesty: no leakage, by construction and by test.

The properties here are the subsystem's contract (DESIGN.md section
15): features at a cut are a function of events at or before the cut
only, labels come only from the ``(cut+lead, cut+lead+horizon]``
window, failures inside the dead gap are neither featurised nor
labeled, and the train/eval split is by campaign seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predict.dataset import (
    DatasetConfig,
    build_dataset,
    build_seed_datasets,
    concat_datasets,
    cut_grid,
    make_training_campaign,
)
from repro.predict.errors import PredictError
from repro.predict.features import FeatureState
from repro.stream.online_coalesce import OnlineCoalescer

TINY_SCALE = 0.01  # matches the session fixtures in conftest.py


def _ue_view(campaign):
    ue = campaign.het[campaign.het["non_recoverable"]]
    return ue["time"].astype(float), ue["node"].astype(np.int64)


class TestLabelWindow:
    def test_labels_match_brute_force_window(self, train_campaign,
                                             train_dataset):
        """Row-by-row: positive iff a UE hits the node strictly inside
        (cut + lead, cut + lead + horizon]."""
        config = DatasetConfig()
        ue_times, ue_nodes = _ue_view(train_campaign)
        assert train_dataset.n_positive > 0  # the protocol has signal
        for i in range(train_dataset.n_rows):
            cut = float(train_dataset.cut[i])
            node = int(train_dataset.node[i])
            lo = cut + config.lead_s
            hi = lo + config.horizon_s
            hit = np.any(
                (ue_nodes == node) & (ue_times > lo) & (ue_times <= hi)
            )
            assert bool(train_dataset.y[i]) == bool(hit), (
                f"row {i}: node {node} cut {cut}"
            )

    def test_dead_gap_failures_are_not_labeled(self, train_campaign):
        """A failure inside (cut, cut+lead] must not mark the row
        positive -- it is inside the actionability dead gap."""
        config = DatasetConfig()
        ue_times, ue_nodes = _ue_view(train_campaign)
        ds = build_dataset(train_campaign, config)
        neg = ~ds.y
        for i in np.flatnonzero(neg)[:2000]:
            cut = float(ds.cut[i])
            node = int(ds.node[i])
            in_gap = (
                (ue_nodes == node)
                & (ue_times > cut)
                & (ue_times <= cut + config.lead_s)
            )
            # A gap failure alone never makes a positive: the row is
            # negative despite it, which is exactly what we assert by
            # being on the negative side here.
            if in_gap.any():
                window = (
                    (ue_nodes == node)
                    & (ue_times > cut + config.lead_s)
                    & (ue_times <= cut + config.lead_s + config.horizon_s)
                )
                assert not window.any()

    def test_lead_available_is_first_window_failure(self, train_campaign,
                                                    train_dataset):
        config = DatasetConfig()
        ue_times, ue_nodes = _ue_view(train_campaign)
        pos = np.flatnonzero(train_dataset.y)
        assert pos.size
        for i in pos:
            cut = float(train_dataset.cut[i])
            node = int(train_dataset.node[i])
            lo, hi = cut + config.lead_s, cut + config.lead_s + config.horizon_s
            mine = ue_times[(ue_nodes == node) & (ue_times > lo)
                            & (ue_times <= hi)]
            assert train_dataset.lead_available[i] == mine.min() - cut
        assert np.all(train_dataset.lead_available[~train_dataset.y] == -1.0)


class TestFeatureCausality:
    def test_rows_equal_one_shot_fold_of_pre_cut_events(
        self, train_campaign, train_dataset
    ):
        """The no-leakage differential: every dataset row must equal a
        from-scratch fold of only the events at or before its cut."""
        config = DatasetConfig()
        cuts = np.unique(train_dataset.cut)
        for cut in cuts[:: max(1, len(cuts) // 4)].tolist():
            errors = train_campaign.errors
            errors = errors[errors["time"] <= cut]
            het = train_campaign.het
            het = het[het["time"] <= cut]
            state = FeatureState(config.feature)
            coalescer = OnlineCoalescer()
            state.fold_errors(errors)
            coalescer.add(errors)
            if het.size:
                state.fold_het(het)
            want = state.extract(state.nodes_seen, coalescer, at=cut)

            mask = train_dataset.cut == cut
            assert train_dataset.node[mask].tolist() == state.nodes_seen
            assert train_dataset.X[mask].tobytes() == want.tobytes()

    def test_cut_grid_fits_label_protocol(self, train_campaign):
        config = DatasetConfig()
        cuts = cut_grid(train_campaign, config)
        cal = train_campaign.calibration
        assert cuts.size == config.n_cuts
        assert cuts[0] >= cal.het_recording_start
        assert (
            cuts[-1] + config.lead_s + config.horizon_s
            <= cal.error_window[1]
        )

    def test_protocol_that_does_not_fit_raises(self, train_campaign):
        config = DatasetConfig(horizon_s=1e12)
        with pytest.raises(PredictError, match="does not fit"):
            cut_grid(train_campaign, config)


@settings(max_examples=10, deadline=None)
@given(
    n_cuts=st.integers(2, 8),
    lead_h=st.sampled_from([1, 6, 24]),
    horizon_d=st.sampled_from([3.0, 7.0, 14.0]),
)
def test_label_window_property(train_campaign_cached, n_cuts, lead_h,
                               horizon_d):
    """Hypothesis sweep over the protocol knobs: labels always come
    from the declared window, never the dead gap, for any knobs."""
    campaign = train_campaign_cached
    config = DatasetConfig(
        n_cuts=n_cuts,
        lead_s=lead_h * 3600.0,
        horizon_s=horizon_d * 86400.0,
    )
    ds = build_dataset(campaign, config)
    ue = campaign.het[campaign.het["non_recoverable"]]
    ue_times = ue["time"].astype(float)
    ue_nodes = ue["node"].astype(np.int64)
    for i in range(ds.n_rows):
        cut = float(ds.cut[i])
        node = int(ds.node[i])
        lo = cut + config.lead_s
        hi = lo + config.horizon_s
        hit = np.any((ue_nodes == node) & (ue_times > lo) & (ue_times <= hi))
        assert bool(ds.y[i]) == bool(hit)


@pytest.fixture(scope="module")
def train_campaign_cached():
    return make_training_campaign(101, TINY_SCALE)


class TestSeedSplit:
    def test_jobs_identity(self):
        """``--jobs {0,4}`` byte-identity at the dataset level."""
        seq = build_seed_datasets((101, 102), 0.005, jobs=0)
        par = build_seed_datasets((101, 102), 0.005, jobs=4)
        assert seq.X.tobytes() == par.X.tobytes()
        assert seq.y.tobytes() == par.y.tobytes()
        assert seq.node.tobytes() == par.node.tobytes()
        assert seq.cut.tobytes() == par.cut.tobytes()
        assert seq.unseeable == par.unseeable

    def test_rows_carry_their_seed(self):
        ds = build_seed_datasets((101, 102), 0.005, jobs=0)
        assert set(np.unique(ds.seed).tolist()) == {101, 102}

    def test_determinism(self, train_campaign):
        a = build_dataset(train_campaign, DatasetConfig())
        b = build_dataset(train_campaign, DatasetConfig())
        assert a.X.tobytes() == b.X.tobytes()
        assert a.y.tobytes() == b.y.tobytes()

    def test_concat_empty_raises(self):
        with pytest.raises(PredictError, match="at least one"):
            concat_datasets([])
