"""Metrics vs brute-force references, exact equality demanded.

Each metric has an O(n^2)-or-worse reference implementation here whose
correctness is obvious from the definition; hypothesis feeds both
hostile score vectors (ties everywhere, infinities of agreement) and
the campaign-shaped case feeds realistic ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.predict.errors import PredictError
from repro.predict.metrics import (
    auc,
    lead_time_curve,
    precision_recall,
    recall_at_fpr,
    threshold_at_fpr,
)


def _auc_brute(y, scores):
    """P(random positive outscores random negative), ties count half."""
    pos = scores[y]
    neg = scores[~y]
    wins = 0.0
    for p in pos:
        for q in neg:
            if p > q:
                wins += 1.0
            elif p == q:
                wins += 0.5
    return wins / (pos.size * neg.size)


def _threshold_brute(y, scores, fpr):
    neg = scores[~y]
    best = None
    for t in np.unique(scores):
        if np.mean(neg >= t) <= fpr:
            if best is None or t < best:
                best = float(t)
    if best is None:
        return float(np.nextafter(scores.max(), np.inf))
    return best


@st.composite
def labeled_scores(draw):
    n = draw(st.integers(4, 60))
    # A tiny score alphabet forces heavy ties -- the hard case for
    # both the rank statistic and the FPR threshold walk.
    alphabet = draw(
        st.sampled_from([(0.0, 1.0), (0.0, 0.25, 0.5, 1.0),
                         (0.1, 0.2, 0.3, 0.7, 0.9)])
    )
    scores = np.array(
        [draw(st.sampled_from(alphabet)) for _ in range(n)], dtype=float
    )
    y = np.array([draw(st.booleans()) for _ in range(n)], dtype=bool)
    # Guarantee both classes exist.
    y[0] = True
    y[1] = False
    return y, scores


class TestAUC:
    @settings(max_examples=200, deadline=None)
    @given(labeled_scores())
    def test_matches_pairwise_reference(self, case):
        y, scores = case
        assert auc(y, scores) == pytest.approx(
            _auc_brute(y, scores), abs=1e-12
        )

    def test_perfect_and_inverted(self):
        y = np.array([False, False, True, True])
        assert auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
        assert auc(y, np.ones(4)) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(PredictError, match="AUC undefined"):
            auc(np.ones(4, dtype=bool), np.arange(4.0))


class TestFprOperatingPoint:
    @settings(max_examples=200, deadline=None)
    @given(labeled_scores(), st.sampled_from([0.0, 0.01, 0.1, 0.5]))
    def test_threshold_matches_brute_force(self, case, fpr):
        y, scores = case
        assert threshold_at_fpr(y, scores, fpr) == _threshold_brute(
            y, scores, fpr
        )

    @settings(max_examples=200, deadline=None)
    @given(labeled_scores(), st.sampled_from([0.0, 0.01, 0.1, 0.5]))
    def test_budget_is_never_overspent(self, case, fpr):
        y, scores = case
        t = threshold_at_fpr(y, scores, fpr)
        assert float(np.mean(scores[~y] >= t)) <= fpr

    @settings(max_examples=100, deadline=None)
    @given(labeled_scores())
    def test_recall_at_fpr_is_recall_at_that_threshold(self, case):
        y, scores = case
        t = threshold_at_fpr(y, scores, 0.1)
        assert recall_at_fpr(y, scores, 0.1) == pytest.approx(
            float(np.mean(scores[y] >= t))
        )


class TestPrecisionRecall:
    @settings(max_examples=100, deadline=None)
    @given(labeled_scores(), st.sampled_from([0.0, 0.3, 0.8, 2.0]))
    def test_matches_confusion_counts(self, case, threshold):
        y, scores = case
        precision, recall = precision_recall(y, scores, threshold)
        pred = scores >= threshold
        tp = int((pred & y).sum())
        assert precision == (1.0 if pred.sum() == 0 else tp / pred.sum())
        assert recall == tp / y.sum()


class TestLeadTimeCurve:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(9)
        n = 50
        y = rng.random(n) < 0.4
        y[:2] = (True, False)
        scores = rng.random(n).round(1)
        lead = np.where(y, rng.uniform(0, 200 * 3600.0, n), -1.0)
        threshold = 0.5
        curve = lead_time_curve(y, scores, lead, threshold)
        for entry in curve:
            need = entry["lead_h"] * 3600.0
            caught = sum(
                1
                for i in range(n)
                if y[i] and scores[i] >= threshold and lead[i] >= need
            )
            assert entry["recall"] == caught / y.sum()

    def test_monotone_nonincreasing_in_lead(self):
        rng = np.random.default_rng(10)
        n = 80
        y = rng.random(n) < 0.5
        y[:2] = (True, False)
        scores = rng.random(n)
        lead = np.where(y, rng.uniform(0, 300 * 3600.0, n), -1.0)
        curve = lead_time_curve(y, scores, lead, 0.4)
        recalls = [e["recall"] for e in curve]
        assert recalls == sorted(recalls, reverse=True)


class TestShapes:
    def test_shape_mismatch_raises(self):
        with pytest.raises(PredictError, match="equal"):
            auc(np.array([True, False]), np.arange(3.0))
