"""Model artifact: deterministic fit, CRC guard, mismatch refusals."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.predict.errors import PredictError
from repro.predict.features import FEATURE_NAMES
from repro.predict.model import MODEL_SCHEMA_VERSION, Model, fit

GEOMETRY = {"n_nodes": 64, "nodes_per_rack": 18, "n_slots": 16}


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    n = 400
    X = rng.poisson(2.0, size=(n, len(FEATURE_NAMES))).astype(float)
    logits = 0.8 * X[:, 2] - 3.0
    y = rng.random(n) < 1.0 / (1.0 + np.exp(-logits))
    y[:2] = (True, False)
    return X, y, fit(X, y, geometry=GEOMETRY, window_s=3600.0)


class TestFit:
    def test_fit_is_deterministic(self, fitted):
        X, y, model = fitted
        again = fit(X, y, geometry=GEOMETRY, window_s=3600.0)
        assert again._canonical() == model._canonical()
        assert again.model_id == model.model_id

    def test_calibration_is_monotone(self, fitted):
        _, _, model = fitted
        assert np.all(np.diff(model.cal_x) > 0)
        assert np.all(np.diff(model.cal_y) >= 0)

    def test_scores_are_probabilities(self, fitted):
        X, _, model = fitted
        s = model.score(X)
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_single_class_refused(self):
        X = np.zeros((10, len(FEATURE_NAMES)))
        with pytest.raises(PredictError, match="single-class"):
            fit(X, np.ones(10, dtype=bool), geometry=GEOMETRY,
                window_s=3600.0)

    def test_wrong_width_refused_at_scoring(self, fitted):
        _, _, model = fitted
        with pytest.raises(PredictError, match="feature width"):
            model.score(np.zeros((5, 3)))


class TestArtifact:
    def test_save_load_round_trip(self, fitted, tmp_path):
        X, _, model = fitted
        path = tmp_path / "model.json"
        saved_id = model.save(path)
        back = Model.load(path)
        assert back.model_id == saved_id == model.model_id
        assert back.score(X).tobytes() == model.score(X).tobytes()
        assert back.threshold == model.threshold
        assert back.geometry == model.geometry

    def test_save_leaves_no_tmp_file(self, fitted, tmp_path):
        _, _, model = fitted
        model.save(tmp_path / "model.json")
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]

    def test_tampered_value_refused(self, fitted, tmp_path):
        _, _, model = fitted
        path = tmp_path / "model.json"
        model.save(path)
        doc = json.loads(path.read_text())
        doc["threshold"] = doc["threshold"] / 2.0
        path.write_text(json.dumps(doc))
        with pytest.raises(PredictError, match="integrity"):
            Model.load(path)

    def test_truncated_file_refused(self, fitted, tmp_path):
        _, _, model = fitted
        path = tmp_path / "model.json"
        model.save(path)
        path.write_text(path.read_text()[:-30])
        with pytest.raises(PredictError, match="cannot read"):
            Model.load(path)

    def test_missing_file_has_hint(self, tmp_path):
        with pytest.raises(PredictError, match="hint"):
            Model.load(tmp_path / "nope.json")

    def test_foreign_artifact_kind_refused(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps({"kind": "rollup-snapshot"}))
        with pytest.raises(PredictError) as exc:
            Model.load(path)
        msg = str(exc.value)
        assert "found" in msg and "expected" in msg and "predict-model" in msg

    def test_wrong_model_schema_refused(self, fitted, tmp_path):
        _, _, model = fitted
        path = tmp_path / "model.json"
        model.save(path)
        doc = json.loads(path.read_text())
        doc["schema"] = MODEL_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(PredictError, match="model schema version"):
            Model.load(path)

    def test_foreign_feature_schema_refused(self, fitted, tmp_path):
        """Satellite contract: mismatched feature-schema version is a
        found/expected + recovery-hint error."""
        _, _, model = fitted
        stale = replace(model, feature_schema_version=99)
        path = tmp_path / "model.json"
        stale.save(path)
        with pytest.raises(PredictError) as exc:
            Model.load(path)
        msg = str(exc.value)
        assert "found 99" in msg
        assert "expected 1" in msg
        assert "hint" in msg and "retrain" in msg

    def test_foreign_feature_names_refused(self, fitted, tmp_path):
        _, _, model = fitted
        path = tmp_path / "model.json"
        model.save(path)
        doc = json.loads(path.read_text())
        # The canonical payload (and so the CRC) is rebuilt from the
        # loader's own FEATURE_NAMES, so tampering only the declared
        # names slips past the integrity check and must be caught by
        # the layout comparison itself.
        doc["feature_names"][0] = "something_else"
        path.write_text(json.dumps(doc))
        with pytest.raises(PredictError, match="feature names"):
            Model.load(path)


class TestGeometryGuard:
    def test_foreign_fleet_geometry_refused(self, fitted):
        _, _, model = fitted
        with pytest.raises(PredictError) as exc:
            model.check_nodes([GEOMETRY["n_nodes"] + 7])
        msg = str(exc.value)
        assert "fleet geometry" in msg
        assert f"node id {GEOMETRY['n_nodes'] + 7}" in msg
        assert "hint" in msg

    def test_in_fleet_nodes_pass(self, fitted):
        _, _, model = fitted
        model.check_nodes([0, GEOMETRY["n_nodes"] - 1])
        model.check_nodes([])
