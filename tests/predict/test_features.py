"""FeatureState: incremental == one-shot, checkpoint exactness.

The contract under test is the one that makes online scoring honest:
every counter is a pure function of the *set* of folded events, so any
batching (and any batch ordering) of the same events yields the
byte-identical feature matrix at the same extraction instant.
"""

import json

import numpy as np
import pytest

from repro.faults.types import ERROR_DTYPE
from repro.predict.errors import PredictError
from repro.predict.features import (
    FEATURE_INDEX,
    FEATURE_NAMES,
    FeatureConfig,
    FeatureState,
)
from repro.stream.online_coalesce import OnlineCoalescer
from repro.synth.het import HET_DTYPE

WINDOW = 3600.0


def _errors(rows):
    """rows: [(time, node, bank, row, col, bit), ...] -> ERROR_DTYPE."""
    out = np.zeros(len(rows), dtype=ERROR_DTYPE)
    for i, (t, node, bank, r, c, bit) in enumerate(rows):
        out[i]["time"] = t
        out[i]["node"] = node
        out[i]["bank"] = bank
        out[i]["row"] = r
        out[i]["column"] = c
        out[i]["bit_pos"] = bit
    return out


def _random_errors(rng, n, n_nodes=8, t0=0.0, t1=200 * WINDOW):
    out = np.zeros(n, dtype=ERROR_DTYPE)
    out["time"] = np.sort(rng.uniform(t0, t1, size=n))
    out["node"] = rng.integers(0, n_nodes, size=n)
    out["bank"] = rng.integers(0, 16, size=n)
    out["row"] = rng.integers(0, 1 << 16, size=n)
    out["column"] = rng.integers(0, 1 << 10, size=n)
    out["bit_pos"] = rng.integers(0, 64, size=n)
    return out


class TestIncrementalExactness:
    @pytest.mark.parametrize("n_batches", [1, 2, 7, 23])
    def test_any_batching_is_byte_identical(self, n_batches):
        rng = np.random.default_rng(5)
        errors = _random_errors(rng, 400)

        one = FeatureState()
        one.fold_errors(errors)

        many = FeatureState()
        for part in np.array_split(errors, n_batches):
            if part.size:
                many.fold_errors(part)

        nodes = one.nodes_seen
        assert nodes == many.nodes_seen
        at = one.watermark
        assert at == many.watermark
        assert one.extract(nodes, at=at).tobytes() == many.extract(
            nodes, at=at
        ).tobytes()

    def test_batch_order_does_not_matter(self):
        rng = np.random.default_rng(6)
        errors = _random_errors(rng, 300)
        parts = np.array_split(errors, 5)

        forward = FeatureState()
        for p in parts:
            forward.fold_errors(p)
        backward = FeatureState()
        for p in reversed(parts):
            backward.fold_errors(p)

        nodes = forward.nodes_seen
        at = forward.watermark
        assert backward.watermark == at
        assert forward.extract(nodes, at=at).tobytes() == backward.extract(
            nodes, at=at
        ).tobytes()

    def test_matches_stream_scorer_fold(self, train_campaign):
        """Campaign-sized cross-check, coalescer features included."""
        errors = train_campaign.errors[:5000]

        one = FeatureState()
        one_co = OnlineCoalescer()
        one.fold_errors(errors)
        one_co.add(errors)

        many = FeatureState()
        many_co = OnlineCoalescer()
        for part in np.array_split(errors, 13):
            if part.size:
                many.fold_errors(part)
                many_co.add(part)

        nodes = one.nodes_seen
        at = one.watermark
        assert one.extract(nodes, one_co, at=at).tobytes() == many.extract(
            nodes, many_co, at=at
        ).tobytes()


class TestCounters:
    def test_horizons_and_totals(self):
        state = FeatureState()
        t = 1000 * WINDOW
        state.fold_errors(_errors([
            (t + 0.5 * WINDOW, 3, 0, 1, 1, 1),      # current window
            (t - 4 * WINDOW, 3, 0, 1, 1, 2),        # inside w6
            (t - 20 * WINDOW, 3, 0, 1, 1, 3),       # inside w24
            (t - 100 * WINDOW, 3, 0, 1, 1, 4),      # inside w168
            (t - 500 * WINDOW, 3, 0, 1, 1, 5),      # beyond every horizon
        ]))
        row = state.extract([3], at=t + 0.5 * WINDOW)[0]
        assert row[FEATURE_INDEX["ce_w1"]] == 1
        assert row[FEATURE_INDEX["ce_w6"]] == 2
        assert row[FEATURE_INDEX["ce_w24"]] == 3
        assert row[FEATURE_INDEX["ce_w168"]] == 4
        assert row[FEATURE_INDEX["ce_total"]] == 5
        assert row[FEATURE_INDEX["active_w24"]] == 3
        assert row[FEATURE_INDEX["gap_w"]] == 0
        assert row[FEATURE_INDEX["age_w"]] == 500

    def test_future_events_do_not_leak_into_window_counts(self):
        """Events folded past the extraction instant stay out of every
        windowed feature (the dataset builder additionally never folds
        them at all; see test_dataset)."""
        state = FeatureState()
        t = 50 * WINDOW
        state.fold_errors(_errors([(t, 1, 0, 1, 1, 1)]))
        before = state.extract([1], at=t)[0]
        state.fold_errors(_errors([(t + 10 * WINDOW, 1, 0, 1, 1, 2)]))
        after = state.extract([1], at=t)[0]
        for name in ("ce_w1", "ce_w6", "ce_w24", "ce_w168", "active_w24"):
            assert after[FEATURE_INDEX[name]] == before[FEATURE_INDEX[name]]

    def test_ue_features(self):
        state = FeatureState()
        t = 300 * WINDOW
        state.fold_errors(_errors([(t, 2, 0, 1, 1, 1)]))
        het = np.zeros(3, dtype=HET_DTYPE)
        het["time"] = (t - 200 * WINDOW, t - 10 * WINDOW, t)
        het["node"] = 2
        het["non_recoverable"] = (True, True, False)
        state.fold_het(het)
        row = state.extract([2], at=t)[0]
        assert row[FEATURE_INDEX["ue_total"]] == 2
        assert row[FEATURE_INDEX["ue_w168"]] == 1

    def test_dropout_walk(self):
        config = FeatureConfig()
        limit = config.dropout_min_gap * config.dropout_cadence_s
        state = FeatureState(config)
        t0 = 10 * WINDOW
        # Exactly at the limit: not a dropout (strict >); beyond: one.
        state.observe_sensor_times(np.array([t0, t0 + limit]))
        assert state.dropout_total == 0
        state.observe_sensor_times(np.array([t0 + 2 * limit + 1.0]))
        assert state.dropout_total == 1
        # Sensor ticks never advance the event watermark.
        assert state.watermark is None
        row = state.extract([0], at=t0 + 2 * limit + 1.0)[0]
        assert row[FEATURE_INDEX["dropout_w24"]] == 1
        assert row[FEATURE_INDEX["dropout_total"]] == 1

    def test_dropout_split_across_calls_equals_one_call(self):
        times = np.array([0.0, 100.0, 5000.0, 5100.0, 30000.0])
        one = FeatureState()
        one.observe_sensor_times(times)
        many = FeatureState()
        for t in times:
            many.observe_sensor_times(np.array([t]))
        assert one.dropout_total == many.dropout_total
        assert one._dropout == many._dropout


class TestStateRoundTrip:
    def test_json_round_trip_is_exact(self, train_campaign):
        state = FeatureState()
        state.fold_errors(train_campaign.errors[:3000])
        het = train_campaign.het
        state.fold_het(het[: min(200, het.size)])
        state.observe_sensor_times(np.array([0.0, 1e6, 2e6]))

        wire = json.dumps(state.to_state())
        back = FeatureState.from_state(json.loads(wire))

        nodes = state.nodes_seen
        assert back.nodes_seen == nodes
        assert back.watermark == state.watermark
        at = state.watermark
        assert state.extract(nodes, at=at).tobytes() == back.extract(
            nodes, at=at
        ).tobytes()

    def test_empty_state_round_trip(self):
        back = FeatureState.from_state(
            json.loads(json.dumps(FeatureState().to_state()))
        )
        assert back.watermark is None
        assert back.nodes_seen == []


class TestErrors:
    def test_extract_without_events_or_at_raises(self):
        with pytest.raises(PredictError, match="no events"):
            FeatureState().extract([1])

    def test_wrong_dtype_refused(self):
        with pytest.raises(ValueError, match="ERROR_DTYPE"):
            FeatureState().fold_errors(np.zeros(3, dtype=np.float64))
        with pytest.raises(ValueError, match="HET_DTYPE"):
            FeatureState().fold_het(np.zeros(3, dtype=np.float64))

    def test_feature_layout_is_stable(self):
        # The model artifact records this exact tuple; reordering it is
        # a feature-schema version bump, not a silent edit.
        assert len(FEATURE_NAMES) == 20
        assert FEATURE_NAMES[0] == "ce_w1"
        assert FEATURE_INDEX["dropout_total"] == 19
