"""Scoring: online == batch differential, jobs identity, rearm logic."""

import json

import numpy as np
import pytest

from repro.predict.errors import PredictError
from repro.predict.score import OnlineScorer, score_records
from repro.stream.online_coalesce import OnlineCoalescer


class TestScoreRecords:
    def test_jobs_identity(self, train_campaign, tiny_model):
        """--jobs {0,4} byte-identity on one-shot scoring."""
        seq_nodes, seq_scores = score_records(
            train_campaign.errors, train_campaign.het, tiny_model, jobs=0
        )
        par_nodes, par_scores = score_records(
            train_campaign.errors, train_campaign.het, tiny_model, jobs=4
        )
        assert seq_nodes.tobytes() == par_nodes.tobytes()
        assert seq_scores.tobytes() == par_scores.tobytes()

    def test_at_cut_filters_events(self, train_campaign, tiny_model):
        cut = float(np.median(train_campaign.errors["time"]))
        nodes, scores = score_records(
            train_campaign.errors, train_campaign.het, tiny_model, at=cut
        )
        pre = train_campaign.errors[train_campaign.errors["time"] <= cut]
        assert nodes.tolist() == sorted(np.unique(pre["node"]).tolist())
        again_nodes, again_scores = score_records(
            pre, train_campaign.het[train_campaign.het["time"] <= cut],
            tiny_model, at=cut,
        )
        assert again_scores.tobytes() == scores.tobytes()

    def test_empty_records(self, tiny_model):
        nodes, scores = score_records(np.zeros(0), np.zeros(0), tiny_model)
        assert nodes.size == 0 and scores.size == 0


class TestOnlineScorer:
    def _drive(self, scorer, errors, het, n_batches):
        """Feed interleaved CE/HET batches in time order, like the
        stream pipeline does, collecting all alerts."""
        coalescer = OnlineCoalescer()
        bounds = np.linspace(
            0, max(float(errors["time"].max()), float(het["time"].max()))
            + 1.0, n_batches + 1,
        )
        alerts = []
        for b in range(n_batches):
            lo, hi = bounds[b], bounds[b + 1]
            e = errors[(errors["time"] > lo) & (errors["time"] <= hi)]
            h = het[(het["time"] > lo) & (het["time"] <= hi)]
            if h.size:
                scorer.observe_het(h)
            if e.size:
                coalescer.add(e)
                alerts.extend(scorer.observe_errors(e, coalescer, batch=b))
        return alerts

    def test_online_final_scores_equal_batch(self, train_campaign,
                                             tiny_model):
        """After the full stream is folded, the online state scores any
        node identically to the one-shot batch fold."""
        scorer = OnlineScorer(tiny_model)
        self._drive(
            scorer, train_campaign.errors, train_campaign.het, n_batches=11
        )
        batch_nodes, batch_scores = score_records(
            train_campaign.errors, train_campaign.het, tiny_model
        )
        coalescer = OnlineCoalescer()
        coalescer.add(train_campaign.errors)
        online = tiny_model.score(
            scorer.state.extract(
                batch_nodes.tolist(), coalescer, at=scorer.state.watermark
            )
        )
        assert online.tobytes() == batch_scores.tobytes()

    def test_batching_does_not_change_alerts(self, train_campaign,
                                             tiny_model):
        a = self._drive(
            OnlineScorer(tiny_model), train_campaign.errors,
            train_campaign.het, n_batches=7,
        )
        b = self._drive(
            OnlineScorer(tiny_model), train_campaign.errors,
            train_campaign.het, n_batches=7,
        )
        assert a == b  # determinism at equal batching

    def test_rearm_suppresses_repeat_alerts(self, tiny_model):
        """A node over threshold fires once per re-arm bucket."""
        scorer = OnlineScorer(tiny_model, rearm_s=3600.0)
        scorer._fired[5] = 12  # pretend node 5 fired in bucket 12
        state = json.loads(json.dumps(scorer.to_state()))
        assert state["fired"] == [[5, 12]]
        back = OnlineScorer(tiny_model, rearm_s=3600.0)
        back.restore(state)
        assert back._fired == {5: 12}
        assert back.rearm_s == 3600.0

    def test_state_round_trip_is_exact(self, train_campaign, tiny_model):
        scorer = OnlineScorer(tiny_model)
        self._drive(
            scorer, train_campaign.errors, train_campaign.het, n_batches=5
        )
        wire = json.dumps(scorer.to_state())
        back = OnlineScorer(tiny_model)
        back.restore(json.loads(wire))
        nodes = scorer.state.nodes_seen
        at = scorer.state.watermark
        assert back.state.watermark == at
        assert scorer.state.extract(nodes, at=at).tobytes() == \
            back.state.extract(nodes, at=at).tobytes()
        assert back.scored_batches == scorer.scored_batches

    def test_restore_foreign_model_refused(self, tiny_model):
        scorer = OnlineScorer(tiny_model)
        state = scorer.to_state()
        state["model_id"] = "deadbeef"
        fresh = OnlineScorer(tiny_model)
        with pytest.raises(PredictError) as exc:
            fresh.restore(state)
        msg = str(exc.value)
        assert "predictor model" in msg
        assert "'deadbeef'" in msg
        assert "hint" in msg
