"""Tests for the temperature-correlation analyses."""

import numpy as np
import pytest

from repro._util import HOUR_S, MONTH_S, epoch
from repro.analysis.temperature import (
    ce_count_vs_temperature,
    decile_curve,
    errored_dimm_sensor,
    monthly_ce_counts,
    monthly_node_sensor_means,
    window_mean_temperature,
)
from repro.synth.sensors import SensorFieldModel
from util import bit_error, make_errors

T0 = epoch("2019-06-01")


@pytest.fixture(scope="module")
def model():
    return SensorFieldModel(seed=5)


class TestSensorJoin:
    def test_slot_to_sensor(self):
        errors = make_errors(
            [
                bit_error(slot=0, t=T0),  # A -> dimm_aceg (2)
                bit_error(slot=1, t=T0),  # B -> dimm_hfdb (3)
                bit_error(slot=9, t=T0),  # J -> dimm_jlnp (5)
            ]
        )
        np.testing.assert_array_equal(errored_dimm_sensor(errors), [2, 3, 5])


class TestWindowMeans:
    def test_dedup_matches_direct(self, model):
        errors = make_errors(
            [bit_error(node=3, slot=0, t=T0 + i * 10.0) for i in range(50)]
        )
        means = window_mean_temperature(errors, model, HOUR_S)
        assert means.shape == (50,)
        # All 50 errors share one quantised window -> identical means.
        assert np.unique(means).size <= 2
        direct = model.window_mean(3, 2, np.ceil((T0) / HOUR_S) * HOUR_S, HOUR_S)
        assert means[0] == pytest.approx(direct, abs=1e-9)

    def test_different_nodes_differ(self, model):
        errors = make_errors(
            [bit_error(node=3, slot=0, t=T0), bit_error(node=900, slot=0, t=T0)]
        )
        means = window_mean_temperature(errors, model, HOUR_S)
        assert means[0] != means[1]

    def test_empty(self, model):
        assert window_mean_temperature(make_errors([]), model, HOUR_S).size == 0

    def test_plausible_dimm_band(self, model):
        errors = make_errors(
            [bit_error(node=n, slot=9, t=T0 + n * 3600.0) for n in range(40)]
        )
        means = window_mean_temperature(errors, model, 86400.0)
        assert 30 < means.mean() < 55


class TestCorrelation:
    def test_no_strong_positive_trend(self, model):
        """Errors placed independently of temperature: Figure 9's finding."""
        rng = np.random.default_rng(0)
        errors = make_errors(
            [
                bit_error(
                    node=int(rng.integers(0, 2592)),
                    slot=int(rng.integers(0, 16)),
                    t=T0 + float(rng.uniform(0, 30 * 86400)),
                )
                for _ in range(600)
            ]
        )
        corr = ce_count_vs_temperature(errors, model, 86400.0, n_bins=15)
        assert not corr.strongly_positive()

    def test_needs_two_errors(self, model):
        with pytest.raises(ValueError):
            ce_count_vs_temperature(
                make_errors([bit_error(t=T0)]), model, HOUR_S
            )


class TestMonthlyStats:
    def test_monthly_means_shape(self, model):
        window = (T0, T0 + 2 * MONTH_S)
        means = monthly_node_sensor_means(model, 0, window, 50, grid_s=6 * 3600.0)
        assert means.shape == (50, 2)
        assert 45 < means.mean() < 80  # CPU band

    def test_monthly_ce_counts(self):
        window = (T0, T0 + 2 * MONTH_S)
        errors = make_errors(
            [
                bit_error(node=1, slot=0, t=T0 + 10.0),
                bit_error(node=1, slot=0, t=T0 + MONTH_S + 10.0),
                bit_error(node=2, slot=9, t=T0 + 20.0),
            ]
        )
        counts = monthly_ce_counts(errors, window, 5)
        assert counts[1].tolist() == [1, 1]
        assert counts[2].tolist() == [1, 0]

    def test_slot_filter(self):
        window = (T0, T0 + MONTH_S)
        errors = make_errors(
            [bit_error(node=1, slot=0, t=T0 + 1.0), bit_error(node=1, slot=9, t=T0 + 2.0)]
        )
        counts = monthly_ce_counts(errors, window, 3, slots=(9, 11, 13, 15))
        assert counts.sum() == 1


class TestDeciles:
    def test_equal_population_bins(self):
        samples = np.arange(100, dtype=float)
        rates = np.ones(100)
        curve = decile_curve(samples, rates)
        assert curve.decile_max.size == 10
        assert curve.decile_max[-1] == 99
        np.testing.assert_allclose(curve.mean_rate, 1.0)

    def test_increasing_trend_detected(self):
        samples = np.arange(100, dtype=float)
        rates = samples * 2.0
        assert decile_curve(samples, rates).increasing_trend()

    def test_flat_not_increasing(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(50, 2, 200)
        rates = rng.poisson(5, 200).astype(float)
        assert not decile_curve(samples, rates).increasing_trend()

    def test_span(self):
        samples = np.arange(100, dtype=float)
        curve = decile_curve(samples, samples)
        assert curve.temperature_span() == pytest.approx(
            curve.decile_max[-2] - curve.decile_max[0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            decile_curve(np.arange(5), np.arange(5))
