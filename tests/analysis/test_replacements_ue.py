"""Tests for replacement tallies and UE analysis."""

import numpy as np
import pytest

from repro._util import DAY_S
from repro.analysis.replacements import (
    component_population,
    daily_replacement_series,
    infant_mortality_ratio,
    replacement_table,
)
from repro.analysis.ue import (
    daily_counts_by_event,
    due_rate,
    due_records,
    recording_gap_respected,
)
from repro.machine.node import NodeConfig
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration
from repro.synth.het import HetGenerator
from repro.synth.replacements import Component, ReplacementGenerator


@pytest.fixture(scope="module")
def events():
    return ReplacementGenerator(seed=2, scale=1.0).generate()


@pytest.fixture(scope="module")
def het():
    return HetGenerator(seed=2, scale=1.0).generate()


class TestTable1:
    def test_populations(self):
        topo, cfg = AstraTopology(), NodeConfig()
        assert component_population(Component.PROCESSOR, topo, cfg) == 5184
        assert component_population(Component.MOTHERBOARD, topo, cfg) == 2592
        assert component_population(Component.DIMM, topo, cfg) == 41472

    def test_table_matches_paper(self, events):
        rows = {r.component: r for r in replacement_table(events)}
        assert rows[Component.PROCESSOR].n_replaced == 836
        assert rows[Component.PROCESSOR].percent == pytest.approx(16.1, abs=0.1)
        assert rows[Component.MOTHERBOARD].percent == pytest.approx(1.8, abs=0.1)
        assert rows[Component.DIMM].percent == pytest.approx(3.7, abs=0.1)

    def test_render(self, events):
        row = replacement_table(events)[0]
        text = row.render()
        assert "Processors" in text and "836" in text

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            replacement_table(np.zeros(3))


class TestDailySeries:
    def test_series_totals(self, events):
        window = PaperCalibration().inventory_window
        daily = daily_replacement_series(events, Component.DIMM, window)
        assert daily.sum() == 1515

    def test_infant_mortality(self, events):
        window = PaperCalibration().inventory_window
        for kind in Component:
            daily = daily_replacement_series(events, kind, window)
            assert infant_mortality_ratio(daily) > 1.0

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            infant_mortality_ratio(np.ones(10))

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            daily_replacement_series(np.zeros(1), Component.DIMM, (0.0, 1.0))


class TestUe:
    def test_due_subset(self, het):
        dues = due_records(het)
        assert dues.size > 0
        assert np.all(dues["non_recoverable"])

    def test_rate_and_fit(self, het):
        cal = PaperCalibration()
        window = (cal.het_recording_start, cal.error_window[1])
        rate = due_rate(het, window, 41472)
        assert rate.per_dimm_year == pytest.approx(0.00948, rel=0.10)
        assert rate.fit_per_dimm == pytest.approx(1081, rel=0.10)

    def test_gap_respected(self, het):
        cal = PaperCalibration()
        assert recording_gap_respected(het, cal.het_recording_start)
        assert not recording_gap_respected(het, cal.error_window[1])

    def test_daily_series(self, het):
        cal = PaperCalibration()
        window = (cal.het_recording_start, cal.error_window[1])
        series = daily_counts_by_event(het, window)
        assert "uncorrectableECC" in series
        total = sum(s.sum() for s in series.values())
        assert total == het.size

    def test_validation(self, het):
        with pytest.raises(ValueError):
            due_rate(het, (1.0, 1.0), 100)
        with pytest.raises(ValueError):
            due_rate(het, (0.0, 1.0), 0)
        with pytest.raises(ValueError):
            due_records(np.zeros(1))
