"""Tests for monthly series and linear fits."""

import numpy as np
import pytest

from repro._util import MONTH_S, epoch
from repro.analysis.trends import (
    linear_fit,
    mode_monthly_series,
    monthly_counts,
    n_months_in,
    reported_mode_totals,
)
from repro.faults.types import FaultMode
from util import bit_error, make_errors

T0 = epoch("2019-01-20")


class TestMonthlyCounts:
    def test_bucketing(self):
        times = [T0 + 1, T0 + MONTH_S + 1, T0 + MONTH_S + 2]
        counts = monthly_counts(times, T0, 3)
        assert counts.tolist() == [1, 2, 0]

    def test_out_of_range_dropped(self):
        counts = monthly_counts([T0 - 1, T0 + 100 * MONTH_S], T0, 2)
        assert counts.sum() == 0

    def test_n_months_in(self):
        assert n_months_in((T0, T0 + 2.5 * MONTH_S)) == 3

    def test_bad_months(self):
        with pytest.raises(ValueError):
            monthly_counts([T0], T0, 0)


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10, dtype=float)
        fit = linear_fit(x, 3 * x + 2)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert abs(fit.rvalue) == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        np.testing.assert_allclose(fit.predict([2, 3]), [4, 6])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1, 1], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])


class TestModeSeries:
    def test_series_partition_total(self):
        errors = make_errors(
            [bit_error(node=1, t=T0 + i * 86400.0) for i in range(10)]
            + [
                bit_error(node=2, bit=1, address=0x500, t=T0 + 1.0),
                bit_error(node=2, bit=2, address=0x500, t=T0 + 2.0),
            ]
        )
        window = (T0, T0 + 3 * MONTH_S)
        series = mode_monthly_series(errors, window)
        total_by_mode = sum(series.by_mode[m].sum() for m in FaultMode)
        assert total_by_mode == series.all_errors.sum() == 12

    def test_mode_attribution(self):
        errors = make_errors(
            [
                bit_error(node=2, bit=1, address=0x500, t=T0 + 1.0),
                bit_error(node=2, bit=2, address=0x500, t=T0 + 2.0),
            ]
        )
        series = mode_monthly_series(errors, (T0, T0 + MONTH_S))
        assert series.by_mode[FaultMode.SINGLE_WORD].sum() == 2
        assert series.by_mode[FaultMode.SINGLE_BIT].sum() == 0

    def test_reported_totals(self):
        errors = make_errors([bit_error(node=1, t=T0 + 5.0)])
        series = mode_monthly_series(errors, (T0, T0 + MONTH_S))
        totals = reported_mode_totals(series)
        assert totals["total"] == 1
        assert totals[FaultMode.SINGLE_BIT] == 1

    def test_declining_trend_detection(self):
        # Build a population with error counts declining month over month.
        rows = []
        for m, n in enumerate([100, 80, 60, 40]):
            for i in range(n):
                rows.append(bit_error(node=1, t=T0 + m * MONTH_S + i * 60.0))
        series = mode_monthly_series(make_errors(rows), (T0, T0 + 4 * MONTH_S))
        assert series.declining()


class TestCampaignTrend:
    def test_campaign_declines(self, small_campaign):
        """The generator's early-biased fault starts yield the Figure 4a
        downward trend."""
        series = mode_monthly_series(
            small_campaign.errors, small_campaign.calibration.error_window
        )
        assert series.declining()
