"""Tests for per-structure counting."""

import numpy as np
import pytest

from repro.analysis.counts import (
    counts_by,
    errors_and_faults_by,
    observed_column_axis,
    weighted_counts_by,
)
from repro.faults.coalesce import coalesce
from util import bit_error, make_errors


@pytest.fixture()
def errors():
    return make_errors(
        [
            bit_error(node=1, slot=0, bank=3, column=5, t=0.0),
            bit_error(node=1, slot=0, bank=3, column=5, t=1.0),
            bit_error(node=2, slot=9, bank=7, column=8, t=2.0),
            # storm record: no positional payload
            dict(time=3.0, node=3, socket=0, slot=4, rank=0, bank=-1,
                 column=-1, bit_pos=-1, address=0),
        ]
    )


class TestCountsBy:
    def test_slot_counts(self, errors):
        counts, excluded = counts_by(errors, "slot")
        assert counts[0] == 2 and counts[9] == 1 and counts[4] == 1
        assert excluded == 0
        assert counts.size == 16

    def test_bank_counts_exclude_sentinels(self, errors):
        counts, excluded = counts_by(errors, "bank")
        assert counts[3] == 2 and counts[7] == 1
        assert excluded == 1

    def test_socket_counts(self, errors):
        counts, _ = counts_by(errors, "socket")
        assert counts.tolist() == [3, 1]

    def test_unknown_field(self, errors):
        with pytest.raises(ValueError):
            counts_by(errors, "nope")

    def test_minlength_override(self, errors):
        counts, _ = counts_by(errors, "node", minlength=10)
        assert counts.size == 10


class TestWeighted:
    def test_errors_attributed_per_slot(self, errors):
        faults = coalesce(errors)
        counts, excluded = weighted_counts_by(
            faults, "slot", faults["n_errors"]
        )
        assert counts[0] == 2 and counts[9] == 1 and counts[4] == 1
        assert excluded == 0.0

    def test_excluded_weight(self, errors):
        faults = coalesce(errors)
        counts, excluded = weighted_counts_by(faults, "bank", faults["n_errors"])
        assert excluded == 1.0  # the storm fault's errors

    def test_misaligned_weights(self, errors):
        with pytest.raises(ValueError):
            weighted_counts_by(errors, "slot", np.ones(2))


class TestPairedView:
    def test_errors_vs_faults(self, errors):
        faults = coalesce(errors)
        pair = errors_and_faults_by(errors, faults, "slot")
        assert pair["errors"][0] == 2
        assert pair["faults"][0] == 1  # two errors, one fault
        assert pair["errors"].size == pair["faults"].size

    def test_column_axis(self, errors):
        faults = coalesce(errors)
        cols = observed_column_axis(errors, faults)
        assert cols.tolist() == [5, 8]
