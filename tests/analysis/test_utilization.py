"""Tests for the hot/cold utilisation analysis."""

import numpy as np
import pytest

from repro._util import MONTH_S, epoch
from repro.analysis.utilization import (
    hot_cold_curves,
    monthly_node_power,
)
from repro.synth.sensors import SensorFieldModel

T0 = epoch("2019-05-20")


class TestHotColdCurves:
    def test_split_and_bin(self):
        rng = np.random.default_rng(0)
        temps = rng.normal(45, 2, 400)
        power = rng.uniform(240, 380, 400)
        ce = rng.poisson(3, 400).astype(float)
        curves = hot_cold_curves("cpu0", temps, power, ce)
        assert curves.power_bin_centers_hot.size >= 1
        assert curves.power_bin_centers_cold.size >= 1
        assert np.all(curves.rate_hot >= 0)

    def test_hot_shifted_right_when_coupled(self):
        """Temperature coupled to power: hot samples sit at higher power."""
        rng = np.random.default_rng(1)
        power = rng.uniform(240, 380, 1000)
        temps = 30 + 0.05 * power + rng.normal(0, 0.5, 1000)
        ce = rng.poisson(2, 1000).astype(float)
        curves = hot_cold_curves("cpu0", temps, power, ce)
        assert curves.hot_shifted_right()

    def test_no_strong_trend_for_independent_ce(self):
        rng = np.random.default_rng(2)
        power = rng.uniform(240, 380, 2000)
        temps = rng.normal(45, 2, 2000)
        ce = rng.poisson(3, 2000).astype(float)
        curves = hot_cold_curves("cpu0", temps, power, ce)
        assert not curves.strong_power_trend()

    def test_strong_trend_detected_when_real(self):
        power = np.linspace(240, 380, 1000)
        temps = np.linspace(40, 50, 1000)
        ce = power * 0.5  # blatant utilisation effect
        curves = hot_cold_curves("cpu0", temps, power, ce)
        assert curves.strong_power_trend()

    def test_validation(self):
        with pytest.raises(ValueError):
            hot_cold_curves("x", np.ones(3), np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            hot_cold_curves("x", np.ones(5), np.ones(4), np.ones(5))

    def test_degenerate_power_range(self):
        curves = hot_cold_curves(
            "x", np.arange(10, dtype=float), np.full(10, 300.0), np.ones(10)
        )
        assert curves.power_bin_centers_hot.size == 1


class TestMonthlyPower:
    def test_shape_and_band(self):
        model = SensorFieldModel(seed=3)
        window = (T0, T0 + MONTH_S)
        power = monthly_node_power(model, window, 30, grid_s=6 * 3600.0)
        assert power.shape == (30, 1)
        assert 240 < power.mean() < 380
