"""Tests for distributional analyses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distributions import (
    concentration_curve,
    count_histogram,
    errors_per_fault_stats,
    per_address_counts,
    per_bit_position_counts,
    per_node_counts,
)
from repro.faults.coalesce import coalesce
from util import bit_error, make_errors


class TestPerNode:
    def test_basic(self):
        errors = make_errors(
            [bit_error(node=0), bit_error(node=0), bit_error(node=3)]
        )
        counts = per_node_counts(errors, 5)
        assert counts.tolist() == [2, 0, 0, 1, 0]

    def test_node_out_of_range(self):
        errors = make_errors([bit_error(node=9)])
        with pytest.raises(ValueError):
            per_node_counts(errors, 5)

    def test_bad_n_nodes(self):
        with pytest.raises(ValueError):
            per_node_counts(make_errors([]), 0)


class TestHistogram:
    def test_shape(self):
        values, freq = count_histogram(np.array([0, 1, 1, 1, 3, 7, 7]))
        assert values.tolist() == [1, 3, 7]
        assert freq.tolist() == [3, 1, 2]

    def test_zeros_excluded(self):
        values, freq = count_histogram(np.zeros(5, dtype=int))
        assert values.size == 0 and freq.size == 0


class TestConcentration:
    def test_curve_monotone(self):
        counts = np.array([100, 50, 10, 0, 0])
        curve = concentration_curve(counts)
        assert np.all(np.diff(curve.share) >= -1e-12)
        assert curve.share[-1] == pytest.approx(1.0)

    def test_top_k(self):
        counts = np.array([60, 30, 10, 0])
        curve = concentration_curve(counts)
        assert curve.share_of_top(1) == pytest.approx(0.6)
        assert curve.share_of_top(2) == pytest.approx(0.9)
        assert curve.share_of_top(100) == pytest.approx(1.0)  # clamped

    def test_top_fraction(self):
        counts = np.array([60, 30, 10, 0])
        curve = concentration_curve(counts)
        assert curve.share_of_top_fraction(0.5) == pytest.approx(0.9)

    def test_nodes_with_zero(self):
        counts = np.array([5, 0, 3, 0, 0])
        curve = concentration_curve(counts)
        assert curve.nodes_with_zero() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            concentration_curve(np.zeros(3, dtype=int))
        curve = concentration_curve(np.array([1, 2]))
        with pytest.raises(ValueError):
            curve.share_of_top(0)
        with pytest.raises(ValueError):
            curve.share_of_top_fraction(0.0)

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=50).filter(
        lambda xs: sum(xs) > 0))
    @settings(max_examples=40)
    def test_property_share_bounds(self, xs):
        curve = concentration_curve(np.array(xs))
        assert np.all((curve.share >= -1e-12) & (curve.share <= 1 + 1e-12))
        assert curve.share[-1] == pytest.approx(1.0)


class TestErrorsPerFault:
    def test_stats(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(9)]
            + [bit_error(node=2, t=0.0)]
        )
        faults = coalesce(errors)
        stats = errors_per_fault_stats(faults)
        assert stats.n_faults == 2
        assert stats.maximum == 9
        assert stats.fraction_single_error == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            errors_per_fault_stats(coalesce(make_errors([])))


class TestBitAndAddress:
    def test_bit_position_counts(self):
        errors = make_errors(
            [
                bit_error(node=1, bit=5, t=0.0),
                bit_error(node=2, bit=5, t=0.0),
                bit_error(node=3, bit=70, t=0.0),
            ]
        )
        faults = coalesce(errors)
        counts = per_bit_position_counts(faults)
        assert counts[5] == 2 and counts[70] == 1
        assert counts.size == 72

    def test_address_counts(self):
        errors = make_errors(
            [
                bit_error(node=1, address=100, t=0.0),
                bit_error(node=2, address=100, t=0.0),
                bit_error(node=3, address=200, t=0.0),
            ]
        )
        faults = coalesce(errors)
        counts = per_address_counts(faults)
        assert sorted(counts.tolist()) == [1, 2]

    def test_unattributed_excluded(self):
        errors = make_errors(
            [
                dict(time=0.0, node=1, socket=0, slot=0, rank=0, bank=-1,
                     column=-1, bit_pos=-1, address=0),
            ]
        )
        faults = coalesce(errors)
        assert per_bit_position_counts(faults).sum() == 0
        assert per_address_counts(faults).size == 0
