"""Tests for fault rates, persistence classes, and FIT tables."""

import numpy as np
import pytest

from repro._util import DAY_S
from repro.analysis.rates import (
    FitRate,
    Persistence,
    classify_persistence,
    fault_fit_per_device,
    per_mode_fit_table,
    persistence_summary,
    render_fit_table,
)
from repro.faults.coalesce import coalesce
from repro.faults.types import FaultMode
from util import bit_error, make_errors


def faults_from(rows):
    return coalesce(make_errors(rows))


class TestPersistence:
    def test_transient(self):
        faults = faults_from([bit_error(t=100.0)])
        assert classify_persistence(faults)[0] == Persistence.TRANSIENT

    def test_intermittent(self):
        faults = faults_from([bit_error(t=0.0), bit_error(t=3600.0)])
        assert classify_persistence(faults)[0] == Persistence.INTERMITTENT

    def test_sustained(self):
        faults = faults_from([bit_error(t=0.0), bit_error(t=10 * DAY_S)])
        assert classify_persistence(faults)[0] == Persistence.SUSTAINED

    def test_custom_span(self):
        faults = faults_from([bit_error(t=0.0), bit_error(t=3600.0)])
        out = classify_persistence(faults, intermittent_span_s=60.0)
        assert out[0] == Persistence.SUSTAINED

    def test_summary(self):
        faults = faults_from(
            [bit_error(node=1, t=5.0)]
            + [bit_error(node=2, t=0.0), bit_error(node=2, t=60.0)]
            + [bit_error(node=3, t=0.0), bit_error(node=3, t=30 * DAY_S)]
        )
        summary = persistence_summary(faults)
        assert summary[Persistence.TRANSIENT] == 1
        assert summary[Persistence.INTERMITTENT] == 1
        assert summary[Persistence.SUSTAINED] == 1

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            classify_persistence(np.zeros(3))


class TestFit:
    def test_fit_arithmetic(self):
        # 1 event over 1e9 device-hours is FIT 1 by definition.
        rate = FitRate(n_events=1, n_devices=10**6, window_hours=1000.0)
        assert rate.fit == pytest.approx(1.0)

    def test_fault_fit_window_filter(self):
        faults = faults_from(
            [bit_error(node=1, t=100.0), bit_error(node=2, t=10_000.0)]
        )
        rate = fault_fit_per_device(faults, (0.0, 1000.0), n_devices=100)
        assert rate.n_events == 1

    def test_validation(self):
        faults = faults_from([bit_error(t=1.0)])
        with pytest.raises(ValueError):
            fault_fit_per_device(faults, (0.0, 1.0), 0)
        with pytest.raises(ValueError):
            fault_fit_per_device(faults, (1.0, 1.0), 10)

    def test_per_mode_table(self):
        faults = faults_from(
            [bit_error(node=1, t=1.0)]
            + [
                bit_error(node=2, bit=1, address=0x500, t=1.0),
                bit_error(node=2, bit=2, address=0x500, t=2.0),
            ]
        )
        rows = per_mode_fit_table(faults, (0.0, 3600.0), 41472)
        labels = [r[0] for r in rows]
        assert "single-bit" in labels and "single-word" in labels

    def test_render(self):
        text = render_fit_table([("single-bit", 10, 123.4)])
        assert "single-bit" in text and "123.4" in text


class TestCampaignRates:
    def test_paper_scale_fault_fit(self, small_campaign):
        """Fault FIT per DIMM is consistent with the campaign's volume.

        ~7,140 faults over 41,472 DIMMs in the 237-day window is a FIT
        of roughly 30,000 per DIMM -- far above lifetime field studies
        (Sridharan-class numbers are hundreds per DIMM) because this is
        a stabilisation period deliberately stressing brand-new hardware
        (section 3.1's infant-mortality framing applies to faults too).
        """
        c = small_campaign
        faults = c.faults()
        rate = fault_fit_per_device(
            faults,
            c.calibration.error_window,
            c.node_config.system_dimm_count(c.topology.n_nodes),
        )
        full_scale_fit = rate.fit / c.scale
        assert 10_000 < full_scale_fit < 80_000

    def test_most_faults_not_sustained_storms(self, small_campaign):
        summary = persistence_summary(small_campaign.faults())
        total = sum(summary.values())
        assert summary[Persistence.TRANSIENT] > 0.4 * total
