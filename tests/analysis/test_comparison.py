"""Tests for the cross-study comparison."""

import pytest

from repro.analysis.comparison import (
    PRIOR_FINDINGS,
    compare_with_prior_studies,
    render_comparison_table,
)


class TestPriorFindings:
    def test_six_findings_encoded(self):
        assert len(PRIOR_FINDINGS) == 6

    def test_only_elsayed_agrees(self):
        agreeing = [f for f in PRIOR_FINDINGS if f.astra_agrees]
        assert len(agreeing) == 1
        assert "El-Sayed" in agreeing[0].study

    def test_studies_named(self):
        studies = " ".join(f.study for f in PRIOR_FINDINGS)
        for name in ("Sridharan", "Gupta", "Schroeder", "Hsu", "El-Sayed"):
            assert name in studies


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self, small_campaign):
        return compare_with_prior_studies(small_campaign, grid_s=48 * 3600.0)

    def test_one_row_per_finding(self, rows):
        assert len(rows) == len(PRIOR_FINDINGS)

    def test_measured_strings_populated(self, rows):
        for row in rows:
            assert row.measured

    def test_temperature_findings_disagree(self, rows):
        """The campaign has no temperature effect, so the Schroeder/Hsu
        claims must not hold and El-Sayed's must."""
        by_study = {r.finding.study: r for r in rows}
        assert not by_study["Schroeder et al., SIGMETRICS'09"].holds_on_campaign
        assert by_study["El-Sayed et al., SIGMETRICS'12"].holds_on_campaign

    def test_render(self, rows):
        text = render_comparison_table(rows)
        assert "prior study" in text
        assert "Cielo/Jaguar" in text
        assert text.count("\n") >= 6


@pytest.mark.slow
def test_full_scale_consistency(full_campaign):
    """At paper volume the campaign reproduces every agree/disagree call."""
    rows = compare_with_prior_studies(full_campaign)
    wrong = [r.finding.claim for r in rows if not r.consistent_with_paper]
    assert not wrong, wrong
