"""Tests for the positional (region/rack) analyses."""

import numpy as np
import pytest

from repro._util import epoch
from repro.analysis.positional import (
    counts_by_rack,
    counts_by_region,
    mean_temperature_by_rack,
    mean_temperature_by_region,
    region_fraction_by_rack,
    top_region_dominance,
)
from repro.machine.topology import AstraTopology
from repro.synth.sensors import SensorFieldModel
from util import bit_error, make_errors

TOPO = AstraTopology()
T0 = epoch("2019-06-01")


def node_in(rack, chassis, slot=0):
    return TOPO.node_id(rack, chassis, slot)


class TestCounts:
    def test_by_region(self):
        errors = make_errors(
            [
                bit_error(node=node_in(0, 0), t=0.0),  # bottom
                bit_error(node=node_in(0, 8), t=1.0),  # middle
                bit_error(node=node_in(0, 15), t=2.0),  # top
                bit_error(node=node_in(0, 16), t=3.0),  # top
            ]
        )
        counts = counts_by_region(errors, TOPO)
        assert counts.tolist() == [1, 1, 2]

    def test_by_rack(self):
        errors = make_errors(
            [
                bit_error(node=node_in(31, 0), t=0.0),
                bit_error(node=node_in(31, 1), t=1.0),
                bit_error(node=node_in(2, 0), t=2.0),
            ]
        )
        counts = counts_by_rack(errors, TOPO)
        assert counts[31] == 2 and counts[2] == 1
        assert counts.sum() == 3

    def test_region_fraction_rows_normalised(self):
        errors = make_errors(
            [
                bit_error(node=node_in(5, 0), t=0.0),
                bit_error(node=node_in(5, 17), t=1.0),
            ]
        )
        frac = region_fraction_by_rack(errors, TOPO)
        assert frac.shape == (36, 3)
        assert frac[5].sum() == pytest.approx(1.0)
        assert frac[0].sum() == 0.0  # no records in rack 0

    def test_top_dominance(self):
        frac = np.zeros((4, 3))
        frac[0] = [0.2, 0.2, 0.6]
        frac[1] = [0.6, 0.2, 0.2]
        frac[2] = [0.2, 0.6, 0.2]
        frac[3] = [0.1, 0.2, 0.7]
        assert top_region_dominance(frac) == pytest.approx(0.5)

    def test_top_dominance_needs_data(self):
        with pytest.raises(ValueError):
            top_region_dominance(np.zeros((3, 3)))


class TestTemperatureUniformity:
    """Astra's claims: region means within 1 degC, rack spread <= 4.2."""

    @pytest.fixture(scope="class")
    def model(self):
        return SensorFieldModel(seed=1)

    def test_region_means_within_one_degree(self, model):
        means = mean_temperature_by_region(
            model, TOPO, 0, (T0, T0 + 4 * 86400.0), grid_s=6 * 3600.0
        )
        assert means.shape == (3,)
        assert np.ptp(means) < 1.0

    def test_rack_spread_bounded(self, model):
        means = mean_temperature_by_rack(
            model, TOPO, 2, (T0, T0 + 4 * 86400.0), grid_s=6 * 3600.0
        )
        assert means.shape == (36,)
        assert np.ptp(means) <= 4.2
