"""Tests for node-health prediction."""

import numpy as np
import pytest

from repro._util import DAY_S
from repro.analysis.prediction import base_rate, evaluate_predictor
from util import bit_error, make_errors


class TestMechanics:
    def test_perfectly_persistent_node(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in (0.0, 10.0, 100.0, 200.0)]
        )
        score, capture = evaluate_predictor(errors, 5, split_time=50.0, horizon_s=500.0)
        assert score.true_positives == 1
        assert score.false_negatives == 0
        assert score.precision == 1.0 and score.recall == 1.0
        assert capture == 1.0

    def test_new_node_missed(self):
        errors = make_errors(
            [bit_error(node=1, t=0.0), bit_error(node=2, t=100.0)]
        )
        score, _ = evaluate_predictor(errors, 5, split_time=50.0, horizon_s=500.0)
        assert score.false_negatives == 1  # node 2 appears only after split
        assert score.recall == 0.5 if score.true_positives else score.recall == 0.0

    def test_quiet_flagged_node_false_positive(self):
        errors = make_errors([bit_error(node=3, t=0.0)])
        score, _ = evaluate_predictor(errors, 5, split_time=50.0, horizon_s=500.0)
        assert score.false_positives == 1
        assert score.precision == 0.0

    def test_top_k_limits_flags(self):
        rows = []
        for node, n in ((1, 10), (2, 5), (3, 1)):
            rows += [bit_error(node=node, t=float(t)) for t in range(n)]
        rows += [bit_error(node=n, t=100.0) for n in (1, 2, 3)]
        errors = make_errors(rows)
        score, _ = evaluate_predictor(
            errors, 5, split_time=50.0, horizon_s=500.0, top_k=2
        )
        assert score.n_flagged == 2
        assert score.true_positives == 2 and score.false_negatives == 1

    def test_validation(self):
        errors = make_errors([bit_error(t=0.0)])
        with pytest.raises(ValueError):
            evaluate_predictor(np.zeros(3), 5, 0.0, 1.0)
        with pytest.raises(ValueError):
            evaluate_predictor(errors, 5, 0.0, 0.0)
        with pytest.raises(ValueError):
            evaluate_predictor(errors, 5, 0.0, 1.0, top_k=0)

    def test_base_rate(self):
        errors = make_errors([bit_error(node=0, t=100.0)])
        assert base_rate(errors, 10, 50.0, 500.0) == pytest.approx(0.1)


class TestCampaignPrediction:
    def test_history_beats_base_rate(self, small_campaign):
        """Fault persistence makes CE history strongly predictive --
        the statistical footing of the exclude-list suggestion."""
        c = small_campaign
        t0, t1 = c.calibration.error_window
        split = t0 + 0.6 * (t1 - t0)
        horizon = 30 * DAY_S
        score, capture = evaluate_predictor(
            c.errors, c.topology.n_nodes, split, horizon
        )
        naive = base_rate(c.errors, c.topology.n_nodes, split, horizon)
        assert score.precision > 3 * naive
        assert capture > 0.5

    def test_small_exclude_list_captures_volume(self, small_campaign):
        c = small_campaign
        t0, t1 = c.calibration.error_window
        split = t0 + 0.6 * (t1 - t0)
        score, capture = evaluate_predictor(
            c.errors, c.topology.n_nodes, split, 30 * DAY_S, top_k=10
        )
        assert score.n_flagged <= 10
        assert capture > 0.3
