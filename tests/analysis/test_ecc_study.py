"""Tests for the SEC-DED vs Chipkill pattern study."""

import pytest

from repro.analysis.ecc_study import (
    PATTERNS,
    EccOutcomes,
    compare_schemes,
    evaluate_chipkill,
    evaluate_secded,
    render_comparison,
)


class TestOutcomes:
    def test_accounting(self):
        o = EccOutcomes(corrected=5, detected=3, miscorrected=1, undetected=1)
        assert o.trials == 10
        assert o.silent_fraction == pytest.approx(0.2)

    def test_summary_renders(self):
        o = EccOutcomes(1, 1, 1, 1)
        assert "corrected" in o.summary()


class TestSecded:
    def test_single_bit_always_corrected(self):
        o = evaluate_secded("single-bit", trials=300, seed=0)
        assert o.corrected == o.trials

    def test_double_bit_always_detected(self):
        for pattern in ("double-bit same device", "double-bit cross device"):
            o = evaluate_secded(pattern, trials=300, seed=0)
            assert o.detected == o.trials

    def test_device_failure_frequently_dangerous(self):
        """SEC-DED against a failing chip: many DUEs, and a real
        miscorrection rate -- the cost of skipping Chipkill."""
        o = evaluate_secded("single device failure", trials=600, seed=0)
        assert o.detected > 0.5 * o.trials
        assert o.miscorrected > 0.1 * o.trials

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            evaluate_secded("nope")


class TestChipkill:
    def test_single_bit_corrected(self):
        o = evaluate_chipkill("single-bit", trials=300, seed=0)
        assert o.corrected == o.trials

    def test_same_device_double_corrected(self):
        o = evaluate_chipkill("double-bit same device", trials=300, seed=0)
        assert o.corrected == o.trials

    def test_device_failure_fully_corrected(self):
        o = evaluate_chipkill("single device failure", trials=300, seed=0)
        assert o.corrected == o.trials
        assert o.silent_fraction == 0.0

    def test_double_device_always_detected(self):
        o = evaluate_chipkill("double device failure", trials=300, seed=0)
        assert o.detected == o.trials

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            evaluate_chipkill("nope")


class TestComparison:
    def test_all_patterns_covered(self):
        res = compare_schemes(trials=100, seed=1)
        assert set(res) == set(PATTERNS)

    def test_chipkill_never_silently_corrupts(self):
        res = compare_schemes(trials=200, seed=1)
        for pattern in PATTERNS:
            assert res[pattern]["chipkill"].silent_fraction == 0.0

    def test_render(self):
        res = compare_schemes(trials=50, seed=2)
        text = render_comparison(res)
        assert "secded" in text and "chipkill" in text
