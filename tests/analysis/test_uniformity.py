"""Tests for uniformity testing."""

import numpy as np
import pytest

from repro.analysis.uniformity import (
    chi_square_uniform,
    relative_spread,
    subsampled_uniformity,
)


class TestChiSquare:
    def test_uniform_accepted(self):
        rng = np.random.default_rng(0)
        counts = rng.multinomial(10_000, np.full(16, 1 / 16))
        result = chi_square_uniform(counts)
        assert result.is_uniform(alpha=0.001)

    def test_skewed_rejected(self):
        counts = np.array([1000, 10, 10, 10])
        result = chi_square_uniform(counts)
        assert not result.is_uniform()
        assert result.max_over_mean > 3

    def test_perfectly_uniform(self):
        result = chi_square_uniform(np.full(8, 100))
        assert result.pvalue == pytest.approx(1.0)
        assert result.cv == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniform(np.array([5.0]))
        with pytest.raises(ValueError):
            chi_square_uniform(np.zeros(4))
        with pytest.raises(ValueError):
            chi_square_uniform(np.ones((2, 2)))


class TestSubsampled:
    def test_practical_uniformity_at_fault_scale(self):
        """Counts that are uniform-plus-noise pass at subsample size."""
        rng = np.random.default_rng(1)
        counts = rng.multinomial(7_000, np.full(16, 1 / 16)).astype(float)
        # Scale up 1000x: a full chi-square on 7M would reject tiny noise,
        # the subsampled test should not.
        result = subsampled_uniformity(counts * 1000, sample_size=2000, seed=0)
        assert result.is_uniform(alpha=0.001)

    def test_strong_skew_still_rejected(self):
        counts = np.array([10_000.0, 100.0, 100.0, 100.0])
        result = subsampled_uniformity(counts, sample_size=2000, seed=0)
        assert not result.is_uniform()

    def test_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            subsampled_uniformity(np.zeros(4))


class TestSpread:
    def test_relative_spread(self):
        assert relative_spread(np.array([10, 10, 10])) == 0.0
        assert relative_spread(np.array([5, 10, 15])) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_spread(np.array([]))
