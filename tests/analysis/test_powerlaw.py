"""Tests for discrete power-law fitting."""

import numpy as np
import pytest

from repro.analysis.powerlaw import (
    fit_discrete_powerlaw,
    sample_discrete_powerlaw,
)


class TestRecovery:
    @pytest.mark.parametrize("alpha", [1.8, 2.5, 3.2])
    def test_exponent_recovered(self, alpha):
        rng = np.random.default_rng(0)
        data = sample_discrete_powerlaw(rng, alpha, 20_000, xmin=1, xmax=10**5)
        fit = fit_discrete_powerlaw(data, xmin=1)
        assert fit.alpha == pytest.approx(alpha, rel=0.06)

    def test_xmin_scan_finds_cutoff(self):
        rng = np.random.default_rng(1)
        tail = sample_discrete_powerlaw(rng, 2.2, 5_000, xmin=5, xmax=10**5)
        body = rng.integers(1, 5, 2_000)  # non-power-law head below xmin
        fit = fit_discrete_powerlaw(np.concatenate([tail, body]))
        assert 3 <= fit.xmin <= 8
        assert fit.alpha == pytest.approx(2.2, rel=0.12)

    def test_powerlaw_is_plausible(self):
        rng = np.random.default_rng(2)
        data = sample_discrete_powerlaw(rng, 2.0, 10_000)
        assert fit_discrete_powerlaw(data, xmin=1).plausible()

    def test_uniform_is_not_plausible(self):
        rng = np.random.default_rng(3)
        data = rng.integers(50, 60, 5_000)  # narrow uniform: no heavy tail
        fit = fit_discrete_powerlaw(data, xmin=50)
        assert not fit.plausible()


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_discrete_powerlaw([1, 2])

    def test_zeros_dropped(self):
        rng = np.random.default_rng(4)
        data = np.concatenate(
            [sample_discrete_powerlaw(rng, 2.0, 1000), np.zeros(500)]
        )
        fit = fit_discrete_powerlaw(data, xmin=1)
        assert fit.n_tail == 1000

    def test_sampler_validates_alpha(self):
        with pytest.raises(ValueError):
            sample_discrete_powerlaw(np.random.default_rng(0), 1.0, 10)

    def test_fixed_xmin_tail_count(self):
        rng = np.random.default_rng(5)
        data = sample_discrete_powerlaw(rng, 2.0, 3000)
        fit = fit_discrete_powerlaw(data, xmin=3)
        assert fit.n_tail == int((data >= 3).sum())
        assert fit.xmin == 3
