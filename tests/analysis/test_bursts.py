"""Tests for CE burst-structure analysis."""

import numpy as np
import pytest

from repro.analysis.bursts import (
    burst_stats,
    interarrival_times,
    peak_window_counts,
)
from util import bit_error, make_errors


class TestInterarrivals:
    def test_gaps_within_node(self):
        errors = make_errors(
            [bit_error(node=1, t=0.0), bit_error(node=1, t=5.0),
             bit_error(node=1, t=20.0)]
        )
        gaps = interarrival_times(errors)
        assert gaps.tolist() == [5.0, 15.0]

    def test_cross_node_gaps_excluded(self):
        errors = make_errors(
            [bit_error(node=1, t=0.0), bit_error(node=2, t=1.0)]
        )
        assert interarrival_times(errors).size == 0

    def test_unsorted_input(self):
        errors = make_errors(
            [bit_error(node=1, t=10.0), bit_error(node=1, t=0.0)]
        )
        assert interarrival_times(errors).tolist() == [10.0]

    def test_too_few(self):
        assert interarrival_times(make_errors([bit_error(t=1.0)])).size == 0

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            interarrival_times(np.zeros(3))


class TestPeakWindows:
    def test_counts_per_window(self):
        errors = make_errors(
            [bit_error(node=1, t=t) for t in (0.0, 1.0, 2.0, 10.0)]
            + [bit_error(node=2, t=0.5)]
        )
        peaks = peak_window_counts(errors, window_s=5.0)
        assert sorted(peaks.tolist()) == [1, 3]

    def test_empty(self):
        assert peak_window_counts(make_errors([]), 5.0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_window_counts(make_errors([bit_error(t=0.0)]), 0.0)


class TestSummary:
    def test_bursty_stream(self):
        # Two tight bursts separated by an hour: CV >> 1.
        times = [0.0, 0.5, 1.0, 1.5, 3600.0, 3600.5, 3601.0]
        errors = make_errors([bit_error(node=1, t=t) for t in times])
        stats = burst_stats(errors, burst_threshold_s=60.0)
        assert stats.burstier_than_poisson
        assert stats.burst_fraction > 0.7
        assert stats.peak_window_max >= 4

    def test_smooth_stream_not_bursty(self):
        times = np.arange(0, 10_000, 100.0)
        errors = make_errors([bit_error(node=1, t=float(t)) for t in times])
        stats = burst_stats(errors)
        assert not stats.burstier_than_poisson
        assert stats.cv < 0.1

    def test_needs_gaps(self):
        with pytest.raises(ValueError):
            burst_stats(make_errors([bit_error(t=0.0)]))

    def test_campaign_is_bursty(self, small_campaign):
        """The generator's burst structure shows up in the metric -- and
        explains why finite CE buffers drop records (section 2.3)."""
        stats = burst_stats(small_campaign.errors)
        assert stats.burstier_than_poisson
        assert stats.peak_window_max > 8  # overflows an 8-slot buffer
