"""Tests for the survival-analysis extension."""

import numpy as np
import pytest

from repro.analysis.survival import (
    KaplanMeier,
    hazard_by_period,
    replacement_survival,
    weibull_mle,
)
from repro.synth.config import PaperCalibration
from repro.synth.replacements import Component, ReplacementGenerator


class TestWeibullMle:
    @pytest.mark.parametrize("shape,scale", [(0.7, 50.0), (1.0, 20.0), (2.5, 100.0)])
    def test_parameter_recovery(self, shape, scale):
        rng = np.random.default_rng(0)
        t = scale * rng.weibull(shape, 4000)
        fit = weibull_mle(t)
        assert fit.shape == pytest.approx(shape, rel=0.08)
        assert fit.scale == pytest.approx(scale, rel=0.08)

    def test_censoring_shifts_scale_up(self):
        rng = np.random.default_rng(1)
        t = 50.0 * rng.weibull(1.0, 2000)
        observed = t[t < 30]
        censored = np.full((t >= 30).sum(), 30.0)
        fit_cens = weibull_mle(observed, censored)
        fit_naive = weibull_mle(observed)
        assert fit_cens.scale > fit_naive.scale

    def test_decreasing_hazard_flag(self):
        rng = np.random.default_rng(2)
        infant = 10.0 * rng.weibull(0.5, 3000)
        assert weibull_mle(infant).decreasing_hazard

    def test_validation(self):
        with pytest.raises(ValueError):
            weibull_mle([1.0])
        with pytest.raises(ValueError):
            weibull_mle([1.0, -2.0])


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self):
        t = np.array([1.0, 2.0, 3.0, 4.0])
        km = KaplanMeier(t)
        assert km.survival_at(0.5) == 1.0
        assert km.survival_at(2.5) == pytest.approx(0.5)
        assert km.survival_at(10.0) == pytest.approx(0.0)

    def test_censoring_keeps_survival_higher(self):
        events = np.array([1.0, 2.0])
        censored = np.array([5.0, 5.0])
        km = KaplanMeier(events, censored)
        assert km.survival_at(3.0) == pytest.approx(0.5)

    def test_median(self):
        km = KaplanMeier(np.arange(1.0, 11.0))
        assert km.median_survival() == 5.0

    def test_median_not_reached(self):
        km = KaplanMeier(np.array([1.0]), np.full(100, 10.0))
        assert km.median_survival() is None

    def test_vectorised_survival(self):
        km = KaplanMeier(np.array([1.0, 2.0, 3.0]))
        out = km.survival_at(np.array([0.0, 1.5, 9.0]))
        assert out.shape == (3,)

    def test_needs_events(self):
        with pytest.raises(ValueError):
            KaplanMeier([])


class TestHazard:
    def test_constant_hazard(self):
        daily = np.full(90, 10.0)
        hz = hazard_by_period(daily, population=100_000, period_days=30)
        assert hz.shape == (3,)
        # Slightly increasing as the population shrinks, but near-flat.
        assert hz[0] == pytest.approx(1e-4, rel=0.01)

    def test_infant_wall(self):
        daily = np.concatenate([np.full(30, 50.0), np.full(60, 5.0)])
        hz = hazard_by_period(daily, population=10_000, period_days=30)
        assert hz[0] > 5 * hz[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            hazard_by_period(np.ones(10), population=0)


class TestCampaignSurvival:
    @pytest.fixture(scope="class")
    def events(self):
        return ReplacementGenerator(seed=5, scale=1.0).generate()

    @pytest.mark.parametrize(
        "component", [Component.MOTHERBOARD, Component.DIMM]
    )
    def test_infant_mortality_quantified(self, events, component):
        cal = PaperCalibration()
        report = replacement_survival(events, component, cal.inventory_window)
        # The section 3.1 claim, as statistics: early hazard elevated and
        # the Weibull shape below 1.
        assert report.infant_hazard_ratio > 1.2
        assert report.weibull.decreasing_hazard

    def test_processor_bump_masks_weibull_shape(self, events):
        """Processors are the counter-example: the mid-window speed
        upgrade wave is not ageing, so the Weibull shape sits near 1 and
        only the period-hazard view shows the early elevation."""
        cal = PaperCalibration()
        report = replacement_survival(
            events, Component.PROCESSOR, cal.inventory_window
        )
        assert report.infant_hazard_ratio > 1.0
        assert report.weibull.shape == pytest.approx(1.0, abs=0.25)

    def test_survival_fraction_sane(self, events):
        cal = PaperCalibration()
        report = replacement_survival(
            events, Component.DIMM, cal.inventory_window
        )
        # 1,515 of 41,472 DIMMs replaced -> ~96% survive the window.
        assert report.km_survival_end == pytest.approx(1 - 1515 / 41472, abs=0.01)

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            replacement_survival(
                np.zeros(3), Component.DIMM, (0.0, 1.0)
            )
