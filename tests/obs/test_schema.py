"""Tests for the zero-dependency schema validator and the checked-in
trace/metrics artifact schemas."""

import json

import pytest

from repro import obs
from repro.obs.schema import main, schema_dir, validate, validate_file


class TestValidatorSubset:
    def test_type_single(self):
        assert validate(3, {"type": "integer"}) == []
        assert validate("x", {"type": "integer"}) != []

    def test_bool_is_not_integer_or_number(self):
        assert validate(True, {"type": "integer"}) != []
        assert validate(True, {"type": "number"}) != []

    def test_type_union(self):
        schema = {"type": ["integer", "number"]}
        assert validate(1, schema) == []
        assert validate(1.5, schema) == []
        assert validate("x", schema) != []

    def test_required_and_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "string"}},
        }
        assert validate({"a": "x"}, schema) == []
        assert any("missing required" in e for e in validate({}, schema))
        assert any(".a" in e for e in validate({"a": 1}, schema))

    def test_additional_properties_false(self):
        schema = {"type": "object", "properties": {}, "additionalProperties": False}
        assert any("unexpected" in e for e in validate({"x": 1}, schema))

    def test_additional_properties_schema(self):
        schema = {"type": "object", "additionalProperties": {"type": "integer"}}
        assert validate({"a": 1}, schema) == []
        assert validate({"a": "s"}, schema) != []

    def test_items_reports_index(self):
        errors = validate([1, "x"], {"type": "array", "items": {"type": "integer"}})
        assert len(errors) == 1 and "[1]" in errors[0]

    def test_enum_and_minimum(self):
        assert validate("a", {"enum": ["a", "b"]}) == []
        assert validate("c", {"enum": ["a", "b"]}) != []
        assert validate(-1, {"type": "integer", "minimum": 0}) != []

    def test_ref_into_defs_recurses(self):
        schema = {
            "type": "object",
            "properties": {"child": {"$ref": "#/$defs/node"}},
            "$defs": {
                "node": {
                    "type": "object",
                    "required": ["name"],
                    "properties": {
                        "name": {"type": "string"},
                        "child": {"$ref": "#/$defs/node"},
                    },
                }
            },
        }
        good = {"child": {"name": "a", "child": {"name": "b"}}}
        bad = {"child": {"name": "a", "child": {}}}
        assert validate(good, schema) == []
        assert any("child.child" in e for e in validate(bad, schema))

    def test_non_local_ref_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            validate({}, {"$ref": "http://example.com/s"})


class TestArtifactSchemas:
    def test_schema_dir_has_both_schemas(self):
        assert (schema_dir() / "trace.schema.json").exists()
        assert (schema_dir() / "metrics.schema.json").exists()

    def test_exported_trace_validates(self):
        obs.configure(trace=True)
        with obs.span("ingest.errors", prune=False) as sp:
            sp.add(records=3)
            with obs.span("inner", transient=True):
                pass
        artifact = obs.export_trace()
        schema = json.loads((schema_dir() / "trace.schema.json").read_text())
        assert validate(artifact, schema) == []

    def test_exported_metrics_validates(self):
        obs.count("ingest.seen", 5)
        obs.gauge("ingest.coverage.errors", 1.0)
        obs.observe("experiment.wall_s.x", 0.01)
        artifact = obs.export_metrics()
        schema = json.loads((schema_dir() / "metrics.schema.json").read_text())
        assert validate(artifact, schema) == []

    def test_trace_schema_rejects_unknown_span_field(self):
        schema = json.loads((schema_dir() / "trace.schema.json").read_text())
        artifact = obs.export_trace()
        artifact["roots"] = [
            {
                "name": "x",
                "wall_s": 0.0,
                "cpu_s": 0.0,
                "counts": {},
                "attrs": {},
                "children": [],
                "bogus": 1,
            }
        ]
        assert any("bogus" in e for e in validate(artifact, schema))


class TestSchemaCli:
    def test_valid_artifact_exits_zero(self, tmp_path, capsys):
        artifact = tmp_path / "metrics.json"
        artifact.write_text(json.dumps(obs.export_metrics()))
        code = main([str(schema_dir() / "metrics.schema.json"), str(artifact)])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_artifact_exits_one(self, tmp_path, capsys):
        artifact = tmp_path / "bad.json"
        artifact.write_text("{}")
        code = main([str(schema_dir() / "trace.schema.json"), str(artifact)])
        assert code == 1
        assert "SCHEMA VIOLATION" in capsys.readouterr().err

    def test_usage_error_exits_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_validate_file_roundtrip(self, tmp_path):
        artifact = tmp_path / "trace.json"
        artifact.write_text(json.dumps(obs.export_trace()))
        errors = validate_file(schema_dir() / "trace.schema.json", artifact)
        assert errors == []

    def test_unreadable_artifact_exits_one(self, tmp_path, capsys):
        artifact = tmp_path / "broken.json"
        artifact.write_text("{not json")
        code = main([str(schema_dir() / "trace.schema.json"), str(artifact)])
        assert code == 1
        assert "SCHEMA VIOLATION" in capsys.readouterr().err


class TestJsonlMode:
    def alert(self, **overrides):
        doc = {
            "seq": 0, "rule": "new_fault", "time": 1.0, "batch": 0,
            "node": 3, "detail": {"slot": 1, "rank": 0, "bank": 2,
                                  "mode": "single-bit"},
        }
        doc.update(overrides)
        return doc

    def test_valid_stream_exits_zero(self, tmp_path, capsys):
        artifact = tmp_path / "alerts.jsonl"
        lines = [json.dumps(self.alert(seq=i)) for i in range(3)]
        artifact.write_text("\n".join(lines) + "\n\n")  # blank line ok
        code = main([
            "--jsonl", str(schema_dir() / "alerts.schema.json"), str(artifact)
        ])
        assert code == 0

    def test_bad_line_named_in_error(self, tmp_path, capsys):
        artifact = tmp_path / "alerts.jsonl"
        artifact.write_text(
            json.dumps(self.alert()) + "\n"
            + json.dumps(self.alert(rule="nonsense")) + "\n"
        )
        code = main([
            "--jsonl", str(schema_dir() / "alerts.schema.json"), str(artifact)
        ])
        assert code == 1
        assert "line 2" in capsys.readouterr().err

    def test_invalid_json_line_reported(self, tmp_path, capsys):
        artifact = tmp_path / "alerts.jsonl"
        artifact.write_text(json.dumps(self.alert()) + "\n{oops\n")
        code = main([
            "--jsonl", str(schema_dir() / "alerts.schema.json"), str(artifact)
        ])
        assert code == 1
        assert "invalid JSON" in capsys.readouterr().err
