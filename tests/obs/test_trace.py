"""Unit tests for the tracing span machinery."""

import threading

from repro import obs
from repro.obs.trace import (
    Span,
    Tracer,
    attach_tree,
    span_wall_invariant,
    stable_trace,
    stable_view,
)


class TestSpanBasics:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.add(records=3)
            outer.add(records=1)
        assert [sp.name for sp in tracer.roots] == ["outer"]
        assert [sp.name for sp in tracer.roots[0].children] == ["inner"]
        assert tracer.roots[0].children[0].counts == {"records": 3}

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in tracer.roots[0].children] == ["a", "b"]

    def test_add_accumulates_counts(self):
        sp = Span("s")
        sp.add(records=2)
        sp.add(records=3, other=1)
        assert sp.counts == {"records": 5, "other": 1}

    def test_close_records_wall_and_cpu(self):
        tracer = Tracer(enabled=True)
        with tracer.span("timed") as sp:
            sum(range(1000))
        assert sp.wall_s > 0.0
        assert sp.cpu_s >= 0.0

    def test_disabled_tracer_still_times_spans(self):
        tracer = Tracer(enabled=False)
        with tracer.span("quiet") as sp:
            sum(range(1000))
        assert sp.wall_s > 0.0
        assert tracer.roots == []  # nothing recorded

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom") as sp:
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert sp.wall_s > 0.0
        assert tracer.current() is None  # stack unwound

    def test_module_level_span_respects_enablement(self):
        with obs.span("off") as sp:
            pass
        assert sp.wall_s >= 0.0
        assert obs.get_tracer().roots == []
        obs.configure(trace=True)
        with obs.span("on"):
            pass
        assert [sp.name for sp in obs.get_tracer().roots] == ["on"]


class TestThreadSafety:
    def test_each_thread_gets_its_own_stack(self):
        tracer = Tracer(enabled=True)
        errors = []

        def work(i):
            try:
                with tracer.span(f"t{i}") as sp:
                    with tracer.span(f"t{i}.child"):
                        pass
                    assert [c.name for c in sp.children] == [f"t{i}.child"]
            except AssertionError as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(sp.name for sp in tracer.roots) == [f"t{i}" for i in range(8)]
        for root in tracer.roots:
            assert len(root.children) == 1


class TestStableView:
    def test_keeps_names_counts_nesting_drops_timings(self):
        node = {
            "name": "a",
            "wall_s": 1.5,
            "cpu_s": 0.5,
            "counts": {"z": 1, "a": 2},
            "attrs": {"path": "/tmp/x"},
            "children": [],
        }
        view = stable_view(node)
        assert view == {"name": "a", "counts": {"a": 2, "z": 1}, "children": []}

    def test_transient_span_promotes_stable_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("retry", transient=True):
                with tracer.span("work") as sp:
                    sp.add(records=7)
        view = stable_trace(tracer.export())
        assert view["roots"][0]["children"] == [
            {"name": "work", "counts": {"records": 7}, "children": []}
        ]

    def test_pruned_span_drops_entire_subtree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("cache.lookup", prune=True):
                with tracer.span("ingest.campaign") as sp:
                    sp.add(records=5)
        view = stable_trace(tracer.export())
        assert view["roots"][0]["children"] == []

    def test_transient_root_promotes_children_to_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("wrapper", transient=True):
            with tracer.span("real"):
                pass
        view = stable_trace(tracer.export())
        assert [r["name"] for r in view["roots"]] == ["real"]

    def test_pruned_root_disappears(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gone", prune=True):
            with tracer.span("also-gone"):
                pass
        assert stable_trace(tracer.export()) == {"roots": []}


class TestAttachTree:
    def test_rebuilds_exported_dict_verbatim(self):
        worker = Tracer(enabled=True)
        with worker.span("experiment.x", attrs={"k": "v"}) as sp:
            sp.add(records=9)
            with worker.span("inner", transient=True):
                pass
        exported = worker.export()["roots"][0]

        parent = Span("run")
        attach_tree(parent, exported)
        child = parent.children[0]
        assert child.name == "experiment.x"
        assert child.counts == {"records": 9}
        assert child.attrs == {"k": "v"}
        assert child.wall_s == exported["wall_s"]
        assert child.children[0].name == "inner"
        assert child.children[0].transient

    def test_preserves_prune_flag(self):
        parent = Span("run")
        attach_tree(parent, {"name": "cache.lookup", "prune": True})
        assert parent.children[0].prune


class TestWallInvariant:
    def test_holds_for_well_nested_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("a"):
                sum(range(10_000))
            with tracer.span("b"):
                sum(range(10_000))
        root = tracer.export()["roots"][0]
        assert span_wall_invariant(root) == []

    def test_flags_impossible_child_sums(self):
        root = {
            "name": "p",
            "wall_s": 1.0,
            "children": [
                {"name": "c1", "wall_s": 0.8, "children": []},
                {"name": "c2", "wall_s": 0.9, "children": []},
            ],
        }
        violations = span_wall_invariant(root)
        assert len(violations) == 1
        assert "p" in violations[0]
