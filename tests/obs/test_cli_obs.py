"""End-to-end CLI runs with --trace-out / --metrics-out / --profile.

The acceptance path for the observability layer: an ``analyze`` run
must write schema-valid trace and metrics artifacts, fold them into a
schema-version-3 JSON report, merge worker-process spans into the
parent trace under ``--jobs``, and print hotspot tables under
``--profile``.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.schema import schema_dir, validate_file


@pytest.fixture(scope="module")
def tiny_campaign_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-obs") / "camp"
    assert (
        main(["synth", "--seed", "3", "--scale", "0.01", "--out", str(directory)])
        == 0
    )
    return directory


class TestTraceAndMetricsArtifacts:
    def test_analyze_writes_schema_valid_artifacts(
        self, tiny_campaign_dir, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1", "fig04",
             "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
             "--json-report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)  # shape checks may fail at tiny scale; no crash
        assert f"wrote trace to {trace_path}" in out
        assert f"wrote metrics to {metrics_path}" in out

        assert validate_file(schema_dir() / "trace.schema.json", trace_path) == []
        assert validate_file(schema_dir() / "metrics.schema.json", metrics_path) == []

        trace = json.loads(trace_path.read_text())
        names = [r["name"] for r in trace["roots"]]
        assert "run" in names and "ingest.campaign" in names

        metrics = json.loads(metrics_path.read_text())
        counters = metrics["counters"]
        assert counters["experiment.completed"] == 2
        assert counters["ingest.seen"] == (
            counters["ingest.parsed"]
            + counters["ingest.repaired"]
            + counters["ingest.quarantined"]
        )

        report = json.loads(report_path.read_text())
        assert report["schema_version"] == 3
        assert report["created_iso"].endswith("Z")
        assert report["trace"]["roots"]
        assert report["metrics"]["counters"]["experiment.completed"] == 2

    def test_parallel_run_merges_worker_spans(
        self, tiny_campaign_dir, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1", "fig04",
             "fig12", "--jobs", "2", "--trace-out", str(trace_path)]
        )
        capsys.readouterr()
        assert code in (0, 1)
        trace = json.loads(trace_path.read_text())
        (run_span,) = [r for r in trace["roots"] if r["name"] == "run"]
        experiment_spans = [
            c["name"]
            for c in run_span["children"]
            if c["name"].startswith("experiment.")
        ]
        assert experiment_spans == [
            "experiment.table1", "experiment.fig04", "experiment.fig12"
        ]

    def test_metrics_without_trace_leaves_tracing_off(
        self, tiny_campaign_dir, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1",
             "--metrics-out", str(metrics_path),
             "--json-report", str(report_path)]
        )
        capsys.readouterr()
        assert code == 0
        assert metrics_path.exists()
        report = json.loads(report_path.read_text())
        assert report["trace"] is None  # tracing stays off without --trace-out
        assert report["metrics"] is not None

    def test_unwritable_artifact_path_fails_before_running(
        self, tiny_campaign_dir, tmp_path, capsys
    ):
        bad = tmp_path / "no-such-dir" / "trace.json"
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["analyze", str(tiny_campaign_dir), "--exp", "table1",
                 "--trace-out", str(bad)]
            )
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_prints_hotspots_and_fills_report(
        self, tiny_campaign_dir, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1",
             "--profile", "--json-report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-- profile: table1" in out
        report = json.loads(report_path.read_text())
        rows = report["profiles"]["table1"]
        assert rows and {"func", "ncalls", "tottime_s", "cumtime_s"} <= set(rows[0])

    def test_profiling_off_by_default(self, tiny_campaign_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            ["analyze", str(tiny_campaign_dir), "--exp", "table1",
             "--json-report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-- profile:" not in out
        assert json.loads(report_path.read_text())["profiles"] is None
