"""Serial/parallel parity and timing-invariant property tests.

A parallel run must be observationally identical to a serial run up to
timing: the same counters with the same exact values (worker registries
merge into the parent), the same gauge values, and the same histogram
populations (observation counts; the observed latencies themselves
differ run to run).  Separately, in a single-process trace the wall
times of a span's children can never sum past their parent's.
"""

import pytest

from repro import obs
from repro.obs.trace import span_wall_invariant, stable_trace
from repro.run.runner import ExperimentRunner

EXPS = ["table1", "fig04", "fig12"]


def _run(campaign, jobs):
    with obs.capture(trace=True) as cap:
        results, report = ExperimentRunner(jobs=jobs).run(campaign, EXPS)
    assert set(results) == set(EXPS)
    return cap.metrics.export(), cap.tracer.export()


class TestSerialParallelParity:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self, small_campaign):
        small_campaign.faults()  # pre-warm so both modes coalesce zero times
        serial = _run(small_campaign, jobs=1)
        parallel = _run(small_campaign, jobs=4)
        return serial, parallel

    def test_counters_identical(self, serial_and_parallel):
        (serial, _), (parallel, _) = serial_and_parallel
        assert serial["counters"] == parallel["counters"]
        assert serial["counters"]["experiment.completed"] == len(EXPS)

    def test_gauges_identical(self, serial_and_parallel):
        (serial, _), (parallel, _) = serial_and_parallel
        assert serial["gauges"] == parallel["gauges"]

    def test_histogram_populations_identical(self, serial_and_parallel):
        (serial, _), (parallel, _) = serial_and_parallel
        assert sorted(serial["histograms"]) == sorted(parallel["histograms"])
        for name, hist in serial["histograms"].items():
            other = parallel["histograms"][name]
            assert hist["count"] == other["count"]
            assert hist["bounds"] == other["bounds"]

    def test_stable_traces_identical(self, serial_and_parallel):
        (_, serial_trace), (_, parallel_trace) = serial_and_parallel
        assert stable_trace(serial_trace) == stable_trace(parallel_trace)


class TestWallInvariant:
    def test_serial_trace_children_never_exceed_parent(self, small_campaign):
        small_campaign.faults()
        _, trace = _run(small_campaign, jobs=1)
        assert trace["roots"], "tracing produced no spans"
        for root in trace["roots"]:
            assert span_wall_invariant(root) == []
