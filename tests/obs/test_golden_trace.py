"""Golden-trace regression tests.

The stable projection of a seeded run's trace -- span names, nesting
and record counts, with timings and environment-dependent (transient /
pruned) spans stripped -- must be byte-identical to the checked-in
``golden_trace.json`` fixture, regardless of parallelism (``--jobs 1``
vs ``--jobs 4``) and campaign-cache state (cold vs warm).  Any change
to the span naming scheme, the instrumentation points, or the
experiments' record accounting shows up here as a fixture diff.

Regenerate the fixture after an intentional change with::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py \
        --regen-golden
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs.trace import stable_trace
from repro.run.cache import CampaignCache
from repro.run.runner import ExperimentRunner

GOLDEN_PATH = Path(__file__).parent / "golden_trace.json"
SEED, SCALE = 7, 0.02
EXPS = ["table1", "fig04", "fig12"]


def _canonical(view: dict) -> str:
    return json.dumps(view, indent=2, sort_keys=True) + "\n"


def _stable_run(jobs: int):
    """One seeded run under an isolated capture; returns (bytes, hit)."""
    with obs.capture(trace=True) as cap:
        campaign, outcome = CampaignCache().get_or_generate(seed=SEED, scale=SCALE)
        results, report = ExperimentRunner(jobs=jobs).run(campaign, EXPS)
        trace = cap.tracer.export()
    assert set(results) == set(EXPS)
    return _canonical(stable_trace(trace)), outcome.hit


class TestGoldenTrace:
    def test_stable_trace_matches_fixture_across_jobs_and_cache_state(
        self, cache_dir, request
    ):
        scenarios = {}
        for label, jobs in [
            ("cold-jobs1", 1),
            ("warm-jobs1", 1),
            ("warm-jobs4", 4),
        ]:
            scenarios[label], hit = _stable_run(jobs)
            assert hit == label.startswith("warm")

        # A cold parallel run too: evict and regenerate under jobs=4.
        CampaignCache().clear()
        scenarios["cold-jobs4"], hit = _stable_run(4)
        assert not hit

        first = scenarios["cold-jobs1"]
        for label, view in scenarios.items():
            assert view == first, f"stable trace diverged in scenario {label}"

        if request.config.getoption("--regen-golden"):
            GOLDEN_PATH.write_text(first)
            pytest.skip("golden fixture regenerated")
        assert first == GOLDEN_PATH.read_text(), (
            "stable trace does not match tests/obs/golden_trace.json; "
            "if the instrumentation change is intentional, regenerate "
            "with --regen-golden"
        )

    def test_fixture_contains_the_expected_spans(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        (run,) = golden["roots"]
        assert run["name"] == "run"
        assert run["counts"] == {"experiments": len(EXPS)}
        assert [c["name"] for c in run["children"]] == [
            f"experiment.{e}" for e in EXPS
        ]
        for child in run["children"]:
            assert set(child["counts"]) == {"checks", "records", "series"}
            assert all(v > 0 for v in child["counts"].values())
