"""Shared fixtures for the observability suite.

Observability state is process-global (one tracer, one registry), so
every test here runs against a clean slate and restores the disabled
defaults afterwards -- a test that flips tracing on must not leak it
into the rest of the session.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.reset()
    obs.configure(trace=False, profile=False)
    yield
    obs.configure(trace=False, profile=False)
    obs.reset()


@pytest.fixture()
def campaign_dir(small_campaign, tmp_path):
    """A stored campaign directory (binary mirrors) to load back."""
    from repro.logs.campaign_io import write_campaign

    directory = tmp_path / "campaign"
    write_campaign(small_campaign, directory, text_logs=False)
    return directory


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """An isolated campaign-cache directory (cold on first use)."""
    directory = tmp_path / "cache"
    monkeypatch.setenv("ASTRA_MEMREPRO_CACHE_DIR", str(directory))
    return directory
