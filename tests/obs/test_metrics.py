"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json
import threading

import pytest

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry


class TestCounters:
    def test_count_accumulates(self):
        reg = MetricsRegistry()
        reg.count("hits")
        reg.count("hits", 4)
        assert reg.counter_value("hits") == 5

    def test_missing_counter_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_whole_counters_export_as_ints(self):
        reg = MetricsRegistry()
        reg.count("records", 3.0)
        exported = reg.export()["counters"]["records"]
        assert exported == 3 and isinstance(exported, int)


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("coverage", 0.5)
        reg.gauge("coverage", 0.9)
        assert reg.export()["gauges"]["coverage"] == 0.9


class TestHistograms:
    def test_observe_tracks_count_sum_min_max(self):
        h = Histogram()
        for v in (0.002, 0.2, 7.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(7.202)
        assert d["min"] == 0.002 and d["max"] == 7.0

    def test_buckets_are_upper_bound_inclusive_with_overflow(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.buckets == [2, 1, 1]  # <=1.0, <=10.0, +inf

    def test_default_bounds_are_sorted_and_fixed(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
        assert len(Histogram().buckets) == len(DEFAULT_BOUNDS) + 1

    def test_merge_adds_bucket_counts_exactly(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.01)
        b.observe(30.0)
        a.merge_dict(b.to_dict())
        d = a.to_dict()
        assert d["count"] == 3
        assert sum(d["buckets"]) == 3
        assert d["max"] == 30.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge_dict(Histogram(bounds=(2.0,)).to_dict())

    def test_empty_histogram_exports_finite_min_max(self):
        d = Histogram().to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0
        json.dumps(d)  # must be JSON-serialisable (no inf)


class TestRegistryMergeAndExport:
    def test_merge_reconciles_counters_exactly(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.count("ingest.seen", 10)
        worker.count("ingest.seen", 7)
        worker.count("cache.hit")
        worker.observe("experiment.wall_s.x", 0.1)
        parent.merge(worker.export())
        out = parent.export()
        assert out["counters"]["ingest.seen"] == 17
        assert out["counters"]["cache.hit"] == 1
        assert out["histograms"]["experiment.wall_s.x"]["count"] == 1

    def test_export_is_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.count("b")
        reg.count("a")
        reg.gauge("z", 1.0)
        reg.gauge("y", 2.0)
        out = reg.export()
        assert list(out["counters"]) == ["a", "b"]
        assert list(out["gauges"]) == ["y", "z"]
        assert json.dumps(out, sort_keys=True) == json.dumps(
            reg.export(), sort_keys=True
        )

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 0.5)
        reg.reset()
        assert reg.export() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_concurrent_counts_do_not_lose_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.count("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("n") == 4000
