"""Conservation property tests: metrics reconcile with ingest stats.

For every text parser and every lenient ingest policy, against clean
and corrupted logs, three independent accountings of the same file must
agree exactly:

- the parser's :class:`IngestStats` (``seen == parsed + repaired +
  quarantined``),
- the observability layer: the ``ingest.<family>.*`` counters and the
  record counts on the ``ingest.<family>`` span,
- the ``.quarantine`` sidecar's line count.

Records are conserved: nothing the observability layer reports can
drift from what the parser actually did.
"""

import numpy as np
import pytest

from repro import obs
from repro.inject import InjectionProfile, LogCorruptor
from repro.logs.bmc import ingest_bmc_log
from repro.logs.het import ingest_het_log, write_het_log
from repro.logs.ingest import IngestPolicy, quarantine_path, read_quarantine
from repro.logs.inventory import ingest_inventory_snapshots
from repro.logs.syslog import ingest_ce_log, write_ce_log
from repro.machine.sensors import NodeSensorComplement
from repro.synth.het import HET_DTYPE
from util import bit_error, make_errors

N_RECORDS = 90


def _write_ce(path):
    errors = make_errors(
        [
            bit_error(node=i % 40, slot=i % 16, bank=i % 16, t=60.0 * i)
            for i in range(N_RECORDS)
        ]
    )
    write_ce_log(errors, path)


def _write_het(path):
    events = np.zeros(N_RECORDS, dtype=HET_DTYPE)
    events["time"] = 60.0 * np.arange(N_RECORDS)
    events["node"] = np.arange(N_RECORDS) % 40
    events["event"] = np.arange(N_RECORDS) % 8
    events["non_recoverable"] = np.isin(events["event"], (4, 6))
    write_het_log(events, path)


def _write_bmc(path):
    name = NodeSensorComplement().names[0]
    with open(path, "w") as fh:
        fh.write("timestamp,node,sensor,value\n")
        for i in range(N_RECORDS):
            t = np.datetime64("2019-01-01T00:00:00") + np.timedelta64(60 * i, "s")
            fh.write(f"{t},{i % 40:04d},{name},{40 + i % 7}.50\n")


def _write_inventory(path):
    with open(path, "w") as fh:
        for i in range(N_RECORDS):
            kind = ("processor", "motherboard", "dimm")[i % 3]
            fh.write(
                f"2019-01-{1 + i // 60:02d},n{i % 40:04d},{kind},{i % 4},SN{i:06d}\n"
            )


PARSERS = {
    "errors": (_write_ce, lambda p, pol: ingest_ce_log(p, policy=pol).stats, "ce.log"),
    "het": (_write_het, lambda p, pol: ingest_het_log(p, policy=pol)[1], "het.log"),
    "sensors": (_write_bmc, lambda p, pol: ingest_bmc_log(p, policy=pol)[1], "bmc.csv"),
    "inventory": (
        _write_inventory,
        lambda p, pol: ingest_inventory_snapshots(p, policy=pol)[1],
        "inventory.log",
    ),
}

CORRUPTION = {
    "clean": None,
    "truncate": dict(truncate_rate=0.25),
    "garble": dict(garble_rate=0.25),
    "drop-range": dict(drop_ranges=1, drop_span=15),
}


@pytest.mark.parametrize("policy", [IngestPolicy.REPAIR, IngestPolicy.SKIP])
@pytest.mark.parametrize("corruption", sorted(CORRUPTION))
@pytest.mark.parametrize("family", sorted(PARSERS))
class TestEveryParserEveryPolicy:
    def _ingest(self, family, corruption, policy, tmp_path):
        writer, ingest, filename = PARSERS[family]
        path = tmp_path / filename
        writer(path)
        if CORRUPTION[corruption] is not None:
            profile = InjectionProfile(
                name=f"only-{corruption}", **CORRUPTION[corruption]
            )
            LogCorruptor(profile, seed=11).corrupt_text_file(
                path, has_header=path.suffix == ".csv"
            )
        with obs.capture(trace=True) as cap:
            stats = ingest(path, policy)
        return path, stats, cap

    def test_metrics_reconcile_with_stats_and_sidecar(
        self, family, corruption, policy, tmp_path
    ):
        path, stats, cap = self._ingest(family, corruption, policy, tmp_path)
        stats.check_invariant()
        counters = cap.metrics.export()["counters"]

        # Counters mirror IngestStats field for field.
        for key in ("seen", "parsed", "repaired", "quarantined"):
            assert counters.get(f"ingest.{family}.{key}", 0) == getattr(stats, key)
            assert counters.get(f"ingest.{key}", 0) == getattr(stats, key)

        # Counter-level conservation: seen == parsed + repaired + quarantined.
        assert counters.get(f"ingest.{family}.seen", 0) == (
            counters.get(f"ingest.{family}.parsed", 0)
            + counters.get(f"ingest.{family}.repaired", 0)
            + counters.get(f"ingest.{family}.quarantined", 0)
        )

        # The quarantine sidecar holds exactly the quarantined records.
        sidecar = quarantine_path(path)
        if stats.quarantined:
            assert len(read_quarantine(sidecar)) == counters[
                f"ingest.{family}.quarantined"
            ]
        else:
            assert not sidecar.exists()

    def test_span_counts_match_stats(self, family, corruption, policy, tmp_path):
        _, stats, cap = self._ingest(family, corruption, policy, tmp_path)
        roots = cap.tracer.export()["roots"]
        (span,) = [r for r in roots if r["name"] == f"ingest.{family}"]
        assert span["counts"] == {
            "seen": stats.seen,
            "parsed": stats.parsed,
            "repaired": stats.repaired,
            "quarantined": stats.quarantined,
        }
        assert span["attrs"]["policy"] == policy.value

    def test_coverage_gauge_matches_stats(self, family, corruption, policy, tmp_path):
        _, stats, cap = self._ingest(family, corruption, policy, tmp_path)
        gauges = cap.metrics.export()["gauges"]
        assert gauges[f"ingest.coverage.{family}"] == pytest.approx(stats.coverage)


class TestCampaignLoadConservation:
    def test_binary_loads_emit_per_family_ingest_metrics(self, campaign_dir):
        from repro.logs.campaign_io import load_campaign_records

        with obs.capture(trace=True) as cap:
            records = load_campaign_records(campaign_dir)
        counters = cap.metrics.export()["counters"]
        for family, arr in [
            ("errors", records.errors),
            ("replacements", records.replacements),
            ("het", records.het),
        ]:
            assert counters[f"ingest.{family}.seen"] == arr.size
            assert counters[f"ingest.{family}.parsed"] == arr.size
            assert counters[f"ingest.{family}.quarantined"] == 0
        assert counters["ingest.seen"] == (
            records.errors.size + records.replacements.size + records.het.size
        )

        roots = cap.tracer.export()["roots"]
        (campaign_span,) = [r for r in roots if r["name"] == "ingest.campaign"]
        names = [c["name"] for c in campaign_span["children"]]
        assert names == ["ingest.errors", "ingest.replacements", "ingest.het"]
