"""Report schema v3: created_iso and the observability sections."""

import json
import time

from repro.run.report import REPORT_SCHEMA_VERSION, ExperimentMetrics, RunReport


def _report(**kwargs) -> RunReport:
    defaults = dict(seed=7, scale=0.02, n_errors=100, jobs=1)
    defaults.update(kwargs)
    return RunReport(**defaults)


class TestCreatedIso:
    def test_created_iso_matches_created_epoch(self):
        report = _report(created=1565184000.0)  # 2019-08-07T13:20:00Z
        assert report.created_iso == "2019-08-07T13:20:00Z"

    def test_created_defaults_to_now(self):
        before = time.time()
        report = _report()
        assert before - 1 <= report.created <= time.time() + 1
        assert report.created_iso.endswith("Z")

    def test_json_roundtrip_preserves_both_forms(self, tmp_path):
        report = _report(created=1565184000.5)
        report.experiments = [
            ExperimentMetrics(exp_id="x", title="X", wall_s=0.1, mode="serial")
        ]
        path = tmp_path / "report.json"
        report.write(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema_version"] == REPORT_SCHEMA_VERSION == 3
        assert loaded["created"] == 1565184000.5
        assert loaded["created_iso"] == "2019-08-07T13:20:00Z"
        # The ISO form is derived, never drifts from the float epoch.
        rebuilt = _report(created=loaded["created"])
        assert rebuilt.created_iso == loaded["created_iso"]


class TestObservabilitySections:
    def test_default_sections_are_null(self):
        data = _report().to_dict()
        assert data["trace"] is None
        assert data["metrics"] is None
        assert data["profiles"] is None

    def test_sections_serialise_when_populated(self, tmp_path):
        report = _report()
        report.trace = {"roots": [{"name": "run", "children": []}]}
        report.metrics = {"counters": {"cache.hit": 1}, "gauges": {}, "histograms": {}}
        report.profiles = {"table1": [{"func": "f", "ncalls": 1}]}
        path = tmp_path / "report.json"
        report.write(path)
        loaded = json.loads(path.read_text())
        assert loaded["trace"]["roots"][0]["name"] == "run"
        assert loaded["metrics"]["counters"]["cache.hit"] == 1
        assert loaded["profiles"]["table1"][0]["func"] == "f"
