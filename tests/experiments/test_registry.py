"""Tests for the experiment registry and result containers."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    render_report,
    run,
)


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = [e for e, _ in list_experiments()]
        assert ids[0] == "table1"
        assert ids[1:] == [f"fig{i:02d}" for i in range(2, 16)]

    def test_fifteen_experiments(self):
        assert len(EXPERIMENTS) == 15

    def test_unknown_id(self, small_campaign):
        with pytest.raises(ValueError, match="unknown experiment"):
            run("fig99", small_campaign)

    def test_run_dispatches(self, small_campaign):
        result = run("table1", small_campaign)
        assert result.exp_id == "table1"

    def test_titles_nonempty(self):
        for exp_id, title in list_experiments():
            assert title


class TestResultContainer:
    def test_checks_and_notes(self):
        r = ExperimentResult("x", "t")
        r.check("a", True)
        r.check("b", 0)
        r.note("hello")
        assert r.checks == {"a": True, "b": False}
        assert not r.all_checks_pass
        assert "hello" in r.render()

    def test_render_sections(self):
        import numpy as np

        r = ExperimentResult("x", "t")
        r.series["curve"] = np.arange(100)
        r.series["table"] = [("a", 1), ("b", 2)]
        r.series["summary"] = {"k": 1.5}
        text = r.render()
        assert "curve" in text and "(100 values)" in text
        assert "a  1" in text
        assert "k: 1.5" in text

    def test_report(self):
        r = ExperimentResult("x", "t")
        r.check("a", True)
        text = render_report({"x": r})
        assert "shape checks: 1/1" in text
        assert "[OK ] x" in text

    def test_markdown_report(self):
        from repro.experiments import render_markdown

        r = ExperimentResult("x", "t")
        r.check("claim holds", True)
        r.check("claim fails", False)
        r.note("paper 5, measured 6")
        md = render_markdown({"x": r})
        assert "## x — t" in md
        assert "✅ claim holds" in md
        assert "❌ claim fails" in md
        assert "> paper 5, measured 6" in md
        assert "**1/2**" in md

    def test_sparkline(self):
        from repro.experiments.base import sparkline

        assert sparkline([0, 1, 2, 3]) != ""
        assert sparkline([1, 1]) == ""  # too short
        assert len(sparkline(list(range(500)), width=40)) == 40
        flat = sparkline([5, 5, 5, 5])
        assert len(set(flat)) == 1
