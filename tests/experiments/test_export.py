"""Tests for experiment CSV export."""

import numpy as np

from repro.experiments import run
from repro.experiments.base import ExperimentResult


class TestExportCsv:
    def test_array_series(self, tmp_path):
        r = ExperimentResult("x", "t")
        r.series["curve"] = np.array([1.0, 2.0, 3.0])
        (path,) = r.export_csv(tmp_path)
        text = path.read_text().splitlines()
        assert text[0] == "index,value"
        assert text[1] == "0,1"

    def test_tuple_rows(self, tmp_path):
        r = ExperimentResult("x", "t")
        r.series["table"] = [("a", 1), ("b", 2)]
        (path,) = r.export_csv(tmp_path)
        assert path.read_text() == "a,1\nb,2\n"

    def test_dict_series(self, tmp_path):
        r = ExperimentResult("x", "t")
        r.series["summary"] = {"k": 1.5, "arr": np.array([1, 2])}
        (path,) = r.export_csv(tmp_path)
        text = path.read_text()
        assert "k,1.5" in text
        assert "arr,1,2" in text

    def test_filenames_slugged(self, tmp_path):
        r = ExperimentResult("fig05", "t")
        r.series["errors per node (all)"] = np.arange(3)
        (path,) = r.export_csv(tmp_path)
        assert path.name == "fig05--errors-per-node--all.csv"

    def test_non_numeric_array_series(self, tmp_path):
        """String-valued series export via str() instead of crashing on :g."""
        r = ExperimentResult("x", "t")
        r.series["labels"] = np.array(["alpha", "beta"])
        (path,) = r.export_csv(tmp_path)
        text = path.read_text().splitlines()
        assert text[0] == "index,value"
        assert text[1] == "0,alpha" and text[2] == "1,beta"

    def test_non_numeric_dict_array(self, tmp_path):
        r = ExperimentResult("x", "t")
        r.series["summary"] = {"slots": np.array(["J", "E"]), "n": 2}
        (path,) = r.export_csv(tmp_path)
        text = path.read_text()
        assert "slots,J,E" in text
        assert "n,2" in text

    def test_real_experiment_exports(self, tmp_path, small_campaign):
        result = run("fig05", small_campaign)
        paths = result.export_csv(tmp_path)
        assert len(paths) == len(result.series)
        for p in paths:
            assert p.exists() and p.stat().st_size > 0


class TestRenderNonNumeric:
    def test_render_string_array(self):
        r = ExperimentResult("x", "t")
        r.series["labels"] = np.array(["alpha", "beta", "gamma", "delta"])
        out = r.render()
        assert "alpha" in out  # no crash, values present

    def test_sparkline_rejects_strings(self):
        from repro.experiments.base import sparkline

        assert sparkline(np.array(["a", "b", "c", "d"])) == ""
