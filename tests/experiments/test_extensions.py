"""Tests for the extension experiments (ext-*)."""

import pytest

from repro.experiments import EXTENSIONS, list_experiments, run, run_all

EXT_IDS = sorted(EXTENSIONS)

FAST_PARAMS = {
    "ext-ecc": dict(trials=200),
    "ext-tempmap": dict(grid_s=48 * 3600.0),
}


class TestRegistry:
    def test_extension_ids(self):
        assert EXT_IDS == [
            "ext-comparison",
            "ext-ecc",
            "ext-rates",
            "ext-survival",
            "ext-tempmap",
        ]

    def test_hidden_by_default(self):
        ids = [e for e, _ in list_experiments()]
        assert not any(e.startswith("ext-") for e in ids)

    def test_listed_on_request(self):
        ids = [e for e, _ in list_experiments(include_extensions=True)]
        for ext in EXT_IDS:
            assert ext in ids

    def test_titles_marked(self):
        for _, title in list_experiments(include_extensions=True):
            if title.startswith("EXT:"):
                break
        else:
            pytest.fail("no extension title found")


@pytest.mark.parametrize("exp_id", EXT_IDS)
def test_extension_runs(small_campaign, exp_id):
    result = run(exp_id, small_campaign, **FAST_PARAMS.get(exp_id, {}))
    assert result.series
    assert result.checks
    assert exp_id in result.render()


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", EXT_IDS)
def test_extension_claims_full_scale(full_campaign, exp_id):
    result = run(exp_id, full_campaign, **FAST_PARAMS.get(exp_id, {}))
    failed = [k for k, ok in result.checks.items() if not ok]
    assert not failed, f"{exp_id} checks failed: {failed}"


def test_run_all_with_extensions(small_campaign):
    results = run_all(small_campaign, include_extensions=True, **{})
    # run_all shares params across experiments, so call without params
    # and just confirm the extensions are present.
    assert set(EXT_IDS) <= set(results)
