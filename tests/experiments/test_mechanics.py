"""Every experiment runs end-to-end on a small campaign.

Shape claims are full-scale properties (tests/experiments/test_shapes.py);
here we assert the machinery: experiments execute, produce series, render,
and record checks.
"""

import pytest

from repro.experiments import list_experiments, run

EXP_IDS = [e for e, _ in list_experiments()]

# Keep the expensive sensor-driven experiments fast at test scale.
FAST_PARAMS = {
    "fig02": dict(n_sample_nodes=32, cadence_s=6 * 3600.0),
    "fig09": dict(max_errors=4000),
    "fig13": dict(grid_s=24 * 3600.0),
    "fig14": dict(grid_s=24 * 3600.0),
}


@pytest.mark.parametrize("exp_id", EXP_IDS)
def test_runs_and_renders(small_campaign, exp_id):
    result = run(exp_id, small_campaign, **FAST_PARAMS.get(exp_id, {}))
    assert result.exp_id == exp_id
    assert result.series, "experiment produced no series"
    assert result.checks, "experiment evaluated no shape checks"
    text = result.render()
    assert exp_id in text
    assert "shape checks" in text


def test_deterministic(small_campaign):
    a = run("fig05", small_campaign)
    b = run("fig05", small_campaign)
    assert a.render() == b.render()
