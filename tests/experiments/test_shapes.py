"""Full-scale shape tests: the paper's qualitative claims hold.

These run every experiment on the paper-volume campaign (4.37 M CEs) and
assert each figure/table's shape checks -- who wins, what is uniform,
where the spike is.  This is the reproduction's acceptance suite.
"""

import pytest

from repro.experiments import list_experiments, run

EXP_IDS = [e for e, _ in list_experiments()]

#: Tamer parameters for the two heaviest sensor analyses; statistically
#: equivalent, just smaller subsamples / coarser grids.
PARAMS = {
    "fig09": dict(max_errors=80_000),
    "fig13": dict(grid_s=12 * 3600.0),
    "fig14": dict(grid_s=12 * 3600.0),
}


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", EXP_IDS)
def test_paper_shape_claims(full_campaign, exp_id):
    result = run(exp_id, full_campaign, **PARAMS.get(exp_id, {}))
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{exp_id} shape claims failed: {failed}"
