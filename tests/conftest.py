"""Repository-level pytest configuration and shared campaign fixtures."""

import sys
from pathlib import Path

import pytest

# Make the tests/ directory importable so suites can share tests.util.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/obs/golden_trace.json from the current run",
    )


@pytest.fixture(scope="session")
def small_campaign():
    """A 2%-scale campaign: fast, for mechanics tests.

    Served through the persistent campaign cache so repeated test runs
    skip regeneration; the cache key covers seed, scale, calibration
    fingerprint, and package version, so stale entries cannot leak in.
    """
    from repro.run import CampaignCache

    campaign, _ = CampaignCache().get_or_generate(seed=7, scale=0.02)
    return campaign


@pytest.fixture(scope="session")
def full_campaign():
    """The full-scale (paper-volume) campaign, loaded from the campaign
    cache (first run generates and stores it; later runs skip the
    minutes of expansion and coalescing).

    Used by the experiment shape tests.
    """
    from repro.run import CampaignCache

    campaign, _ = CampaignCache().get_or_generate(seed=7, scale=1.0)
    return campaign
