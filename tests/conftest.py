"""Repository-level pytest configuration and shared campaign fixtures."""

import sys
from pathlib import Path

import pytest

# Make the tests/ directory importable so suites can share tests.util.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def small_campaign():
    """A 2%-scale campaign: fast, for mechanics tests."""
    from repro.synth import CampaignGenerator

    return CampaignGenerator(seed=7, scale=0.02).generate()


@pytest.fixture(scope="session")
def full_campaign():
    """The full-scale (paper-volume) campaign, generated once per session.

    Used by the experiment shape tests; generation plus coalescing takes
    a few seconds.
    """
    from repro.synth import CampaignGenerator

    return CampaignGenerator(seed=7, scale=1.0).generate()
