"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig15" in out


class TestSynthAnalyze:
    def test_synth_writes_campaign(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        code = main(
            ["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "errors.npy").exists()
        assert (out_dir / "manifest.txt").exists()
        assert "wrote campaign" in capsys.readouterr().out

    def test_analyze_runs_experiments(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        main(["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)])
        capsys.readouterr()
        code = main(["analyze", str(out_dir), "--exp", "table1"])
        out = capsys.readouterr().out
        assert "table1" in out and "shape checks" in out
        assert code == 0  # table1's checks hold at any scale

    def test_text_logs_flag(self, tmp_path):
        out_dir = tmp_path / "camp"
        main(
            [
                "synth",
                "--seed",
                "3",
                "--scale",
                "0.005",
                "--out",
                str(out_dir),
                "--text-logs",
            ]
        )
        assert (out_dir / "ce.log").exists()


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        code = main(
            ["experiment", "--exp", "table1", "--scale", "0.01", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "table1" in out
        assert code == 0

    def test_requires_exp_or_all(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--scale", "0.01"])


class TestExpSelection:
    """Empty/unknown ``--exp`` handling (previously ran nothing / crashed)."""

    @pytest.fixture()
    def campaign_dir(self, tmp_path):
        out_dir = tmp_path / "camp"
        main(["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)])
        return str(out_dir)

    def test_empty_exp_runs_all(self, campaign_dir, capsys):
        code = main(["analyze", campaign_dir, "--exp", "--no-cache"])
        out = capsys.readouterr().out
        # Every paper experiment ran, not zero of them.
        assert "table1" in out and "fig02" in out and "fig15" in out
        assert "ran 15 experiments" in out
        assert code in (0, 1)  # small-scale campaigns may fail shape checks

    def test_unknown_exp_friendly_error(self, campaign_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", campaign_dir, "--exp", "bogus", "--no-cache"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id(s): bogus" in err
        assert "known ids:" in err

    def test_known_and_unknown_mixed(self, campaign_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["analyze", campaign_dir, "--exp", "table1", "nope", "--no-cache"]
            )
        assert excinfo.value.code == 2


class TestRunnerCli:
    """--jobs / --json-report / --cache-dir round trips."""

    def test_json_report_and_cache_roundtrip(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        argv = [
            "experiment",
            "--exp",
            "table1",
            "fig05",
            "--seed",
            "3",
            "--scale",
            "0.01",
            "--jobs",
            "2",
            "--cache-dir",
            cache_dir,
        ]
        code1 = main(argv + ["--json-report", str(tmp_path / "r1.json")])
        capsys.readouterr()
        code2 = main(argv + ["--json-report", str(tmp_path / "r2.json")])
        capsys.readouterr()
        r1 = json.loads((tmp_path / "r1.json").read_text())
        r2 = json.loads((tmp_path / "r2.json").read_text())
        # First run generates and stores; second hits the campaign cache.
        assert r1["cache"]["hit"] is False and r1["cache"]["generate_s"] > 0
        assert r2["cache"]["hit"] is True and r2["cache"]["load_s"] > 0
        # Identical outcome either way.
        assert code1 == code2
        assert [e["exp_id"] for e in r1["experiments"]] == ["table1", "fig05"]
        assert [e["checks"] for e in r1["experiments"]] == [
            e["checks"] for e in r2["experiments"]
        ]

    def test_jobs_output_matches_serial(self, tmp_path, capsys):
        argv = ["experiment", "--exp", "table1", "--seed", "3", "--scale",
                "0.01", "--no-cache"]
        code_serial = main(argv)
        out_serial = capsys.readouterr().out
        code_parallel = main(argv + ["--jobs", "2"])
        out_parallel = capsys.readouterr().out
        assert code_serial == code_parallel
        # The rendered experiment block is identical; only the run
        # summary footer (timings) differs.
        block = out_serial.split("== table1")[1].split("ran 1 experiments")[0]
        assert block in out_parallel

    def test_analyze_cache_warms_faults(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "camp"
        cache_dir = str(tmp_path / "cache")
        main(["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)])
        capsys.readouterr()
        argv = ["analyze", str(out_dir), "--exp", "table1", "--cache-dir", cache_dir]
        main(argv + ["--json-report", str(tmp_path / "a1.json")])
        main(argv + ["--json-report", str(tmp_path / "a2.json")])
        a1 = json.loads((tmp_path / "a1.json").read_text())
        a2 = json.loads((tmp_path / "a2.json").read_text())
        assert a1["cache"]["hit"] is False
        assert a2["cache"]["hit"] is True


class TestMitigate:
    def test_runs_both_simulators(self, capsys):
        code = main(["mitigate", "--scale", "0.01", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "page retirement" in out
        assert "exclude list" in out

    def test_custom_thresholds(self, capsys):
        main(
            [
                "mitigate",
                "--scale",
                "0.01",
                "--retire-threshold",
                "5",
                "--exclude-budget",
                "50",
            ]
        )
        out = capsys.readouterr().out
        assert "k=5" in out and "B=50" in out


class TestWhatif:
    def test_sweep_runs_and_prints_table(self, capsys):
        code = main(["whatif", "--scale", "0.005", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed" in out
        for name in ("secded", "chipkill", "rs-36-32", "rs-72-64"):
            assert name in out

    def test_check_passes_and_writes_valid_schema(self, tmp_path, capsys):
        report = tmp_path / "scenarios.json"
        code = main(
            [
                "whatif",
                "--scale",
                "0.005",
                "--seed",
                "3",
                "--check",
                "--check-events",
                "1500",
                "--scenarios-out",
                str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "check ok" in out

        import json

        from repro.obs.schema import schema_dir, validate_file

        payload = json.loads(report.read_text())
        assert validate_file(schema_dir() / "whatif.schema.json", report) == []
        assert payload["check"]["identical"] is True
        assert payload["check"]["mismatches"] == 0
        assert len(payload["scenarios"]) == 16
        for row in payload["scenarios"]:
            assert (
                row["avoided"]
                + row["corrected"]
                + row["due"]
                + row["silent"]
                == row["injected"]
            )

    def test_custom_axes_and_jobs(self, tmp_path, capsys):
        report = tmp_path / "s.json"
        code = main(
            [
                "whatif",
                "--scale",
                "0.005",
                "--codes",
                "secded,rs-72-64",
                "--scrub",
                "0,6",
                "--retire",
                "2",
                "--exclude-budget",
                "100",
                "--jobs",
                "2",
                "--scenarios-out",
                str(report),
            ]
        )
        assert code == 0
        import json

        payload = json.loads(report.read_text())
        assert payload["grid"]["codes"] == ["secded", "rs-72-64"]
        assert len(payload["scenarios"]) == 4
        assert payload["jobs"] == 2

    def test_unknown_code_exits_2(self, capsys):
        code = main(["whatif", "--codes", "secded,parity3"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown code" in err and "known codes" in err

    def test_bad_axis_value_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["whatif", "--scrub", "daily"])
        assert exc.value.code == 2
        assert "invalid --scrub value" in capsys.readouterr().err

    def test_negative_axis_exits_2(self, capsys):
        code = main(["whatif", "--retire", "-2"])
        assert code == 2
        assert ">= 0" in capsys.readouterr().err


class TestValidateAndRelease:
    def test_validate_small_scale(self, capsys):
        code = main(["validate", "--scale", "0.02", "--seed", "7"])
        out = capsys.readouterr().out
        assert "calibration checks:" in out
        assert code == 0

    def test_release_written(self, tmp_path, capsys):
        out_dir = tmp_path / "rel"
        code = main(
            [
                "release",
                "--scale",
                "0.005",
                "--seed",
                "3",
                "--out",
                str(out_dir),
                "--sensor-cadence",
                "43200",
            ]
        )
        assert code == 0
        assert (out_dir / "memory_failures.txt").exists()
        assert (out_dir / "README.txt").exists()


class TestCampaignFromRecords:
    def test_rebuilt_campaign_analysable(self, tmp_path, small_campaign):
        from repro.logs.campaign_io import (
            campaign_from_records,
            load_campaign_records,
            write_campaign,
        )
        from repro import experiments

        directory = write_campaign(small_campaign, tmp_path / "c", text_logs=False)
        rebuilt = campaign_from_records(load_campaign_records(directory))
        assert rebuilt.population is None
        np.testing.assert_array_equal(rebuilt.errors, small_campaign.errors)
        # The sensor field regenerates identically from the seed.
        from repro._util import epoch

        t = epoch("2019-06-01")
        assert rebuilt.sensors.value(5, 0, t) == small_campaign.sensors.value(
            5, 0, t
        )
        # Experiments run on the rebuilt campaign.
        result = experiments.run("fig05", rebuilt)
        assert result.series
