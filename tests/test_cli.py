"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig15" in out


class TestSynthAnalyze:
    def test_synth_writes_campaign(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        code = main(
            ["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "errors.npy").exists()
        assert (out_dir / "manifest.txt").exists()
        assert "wrote campaign" in capsys.readouterr().out

    def test_analyze_runs_experiments(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        main(["synth", "--seed", "3", "--scale", "0.01", "--out", str(out_dir)])
        capsys.readouterr()
        code = main(["analyze", str(out_dir), "--exp", "table1"])
        out = capsys.readouterr().out
        assert "table1" in out and "shape checks" in out
        assert code == 0  # table1's checks hold at any scale

    def test_text_logs_flag(self, tmp_path):
        out_dir = tmp_path / "camp"
        main(
            [
                "synth",
                "--seed",
                "3",
                "--scale",
                "0.005",
                "--out",
                str(out_dir),
                "--text-logs",
            ]
        )
        assert (out_dir / "ce.log").exists()


class TestExperimentCommand:
    def test_single_experiment(self, capsys):
        code = main(
            ["experiment", "--exp", "table1", "--scale", "0.01", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "table1" in out
        assert code == 0

    def test_requires_exp_or_all(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--scale", "0.01"])


class TestMitigate:
    def test_runs_both_simulators(self, capsys):
        code = main(["mitigate", "--scale", "0.01", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "page retirement" in out
        assert "exclude list" in out

    def test_custom_thresholds(self, capsys):
        main(
            [
                "mitigate",
                "--scale",
                "0.01",
                "--retire-threshold",
                "5",
                "--exclude-budget",
                "50",
            ]
        )
        out = capsys.readouterr().out
        assert "k=5" in out and "B=50" in out


class TestValidateAndRelease:
    def test_validate_small_scale(self, capsys):
        code = main(["validate", "--scale", "0.02", "--seed", "7"])
        out = capsys.readouterr().out
        assert "calibration checks:" in out
        assert code == 0

    def test_release_written(self, tmp_path, capsys):
        out_dir = tmp_path / "rel"
        code = main(
            [
                "release",
                "--scale",
                "0.005",
                "--seed",
                "3",
                "--out",
                str(out_dir),
                "--sensor-cadence",
                "43200",
            ]
        )
        assert code == 0
        assert (out_dir / "memory_failures.txt").exists()
        assert (out_dir / "README.txt").exists()


class TestCampaignFromRecords:
    def test_rebuilt_campaign_analysable(self, tmp_path, small_campaign):
        from repro.logs.campaign_io import (
            campaign_from_records,
            load_campaign_records,
            write_campaign,
        )
        from repro import experiments

        directory = write_campaign(small_campaign, tmp_path / "c", text_logs=False)
        rebuilt = campaign_from_records(load_campaign_records(directory))
        assert rebuilt.population is None
        np.testing.assert_array_equal(rebuilt.errors, small_campaign.errors)
        # The sensor field regenerates identically from the seed.
        from repro._util import epoch

        t = epoch("2019-06-01")
        assert rebuilt.sensors.value(5, 0, t) == small_campaign.sensors.value(
            5, 0, t
        )
        # Experiments run on the rebuilt campaign.
        result = experiments.run("fig05", rebuilt)
        assert result.series
