"""Tests for the parallel experiment runner and its run reports."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.experiments import registry
from repro.experiments.base import ExperimentResult
from repro.run import ExperimentRunner

IDS = ["table1", "fig05", "fig12"]


def _assert_results_equal(a: ExperimentResult, b: ExperimentResult) -> None:
    assert a.checks == b.checks
    assert set(a.series) == set(b.series)
    for name in a.series:
        va, vb = a.series[name], b.series[name]
        if isinstance(va, np.ndarray):
            np.testing.assert_array_equal(va, vb)
        else:
            assert str(va) == str(vb)


class TestSerial:
    def test_matches_direct_registry_calls(self, small_campaign):
        results, report = ExperimentRunner(jobs=0).run(small_campaign, IDS)
        assert list(results) == IDS
        for exp_id in IDS:
            _assert_results_equal(results[exp_id], registry.run(exp_id, small_campaign))
        assert all(m.mode == "serial" for m in report.experiments)

    def test_default_ids_cover_registry(self, small_campaign):
        results, _ = ExperimentRunner(jobs=0).run(small_campaign)
        assert list(results) == [e for e, _ in registry.list_experiments()]

    def test_unknown_id_raises(self, small_campaign):
        with pytest.raises(ValueError, match="unknown experiment ids"):
            ExperimentRunner(jobs=0).run(small_campaign, ["nope"])


class TestParallel:
    def test_parallel_equals_serial(self, small_campaign):
        serial, _ = ExperimentRunner(jobs=0).run(small_campaign, IDS)
        parallel, report = ExperimentRunner(jobs=2).run(small_campaign, IDS)
        assert list(parallel) == IDS
        for exp_id in IDS:
            _assert_results_equal(serial[exp_id], parallel[exp_id])
        assert all(m.mode == "parallel" for m in report.experiments)

    def test_metrics_populated(self, small_campaign):
        _, report = ExperimentRunner(jobs=2).run(small_campaign, IDS)
        assert report.jobs == 2
        assert report.total_wall_s > 0
        assert [m.exp_id for m in report.experiments] == IDS
        for metric in report.experiments:
            assert metric.wall_s >= 0
            assert metric.n_checks == len(metric.checks)
            assert metric.checks_passed == sum(metric.checks.values())
            assert metric.n_series > 0
            assert metric.n_records > 0
            assert metric.error is None

    def test_single_experiment_stays_serial(self, small_campaign):
        _, report = ExperimentRunner(jobs=4).run(small_campaign, ["table1"])
        assert report.experiments[0].mode == "serial"

    def test_run_all_delegates_to_runner(self, small_campaign):
        serial = registry.run_all(small_campaign)
        parallel = registry.run_all(small_campaign, jobs=2)
        assert list(serial) == list(parallel)
        for exp_id in serial:
            _assert_results_equal(serial[exp_id], parallel[exp_id])


_PARENT_PID = os.getpid()


class _FlakyModule:
    """Fake experiment that fails in workers but succeeds in the parent."""

    EXP_ID = "flaky"
    TITLE = "worker-only failure"

    @staticmethod
    def run(campaign, **params):
        if os.getpid() != _PARENT_PID:
            raise RuntimeError("worker crash")
        result = ExperimentResult("flaky", "worker-only failure")
        result.check("recovered", True)
        return result


class _BrokenModule:
    """Fake experiment that always fails."""

    EXP_ID = "broken"
    TITLE = "always fails"

    @staticmethod
    def run(campaign, **params):
        raise RuntimeError("always broken")


def _inject_experiment(monkeypatch, module) -> None:
    """Register a fake experiment module for the duration of a test.

    The runner resolves ids via ``repro.experiments.list_experiments``
    (the package re-export) and runs them via ``registry._ALL``; both
    must know the fake.  Forked pool workers inherit the patched state.
    """
    import repro.experiments as experiments_pkg

    listing = [(module.EXP_ID, module.TITLE), ("table1", "Table 1")]
    monkeypatch.setitem(registry._ALL, module.EXP_ID, module)
    monkeypatch.setattr(
        experiments_pkg, "list_experiments", lambda include_extensions=False: listing
    )


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-failure injection relies on fork inheritance",
)
class TestSerialFallback:
    def test_worker_failure_falls_back_serially(self, small_campaign, monkeypatch):
        _inject_experiment(monkeypatch, _FlakyModule)
        results, report = ExperimentRunner(jobs=2).run(
            small_campaign, ["flaky", "table1"]
        )
        assert "flaky" in results and results["flaky"].checks == {"recovered": True}
        modes = {m.exp_id: m.mode for m in report.experiments}
        assert modes["flaky"] == "serial-fallback"
        assert modes["table1"] == "parallel"

    def test_failure_everywhere_recorded_not_raised(self, small_campaign, monkeypatch):
        _inject_experiment(monkeypatch, _BrokenModule)
        results, report = ExperimentRunner(jobs=2).run(
            small_campaign, ["broken", "table1"]
        )
        assert "broken" not in results and "table1" in results
        broken = next(m for m in report.experiments if m.exp_id == "broken")
        assert broken.error is not None and "always broken" in broken.error
        assert not report.all_pass and report.n_failed == 1


class TestJsonReport:
    def test_report_roundtrip(self, small_campaign, tmp_path):
        _, report = ExperimentRunner(jobs=2).run(small_campaign, IDS)
        path = tmp_path / "report.json"
        report.write(path)
        from repro.run.report import REPORT_SCHEMA_VERSION

        loaded = json.loads(path.read_text())
        assert loaded["schema_version"] == REPORT_SCHEMA_VERSION
        assert loaded["seed"] == small_campaign.seed
        assert loaded["n_errors"] == small_campaign.n_errors
        assert [e["exp_id"] for e in loaded["experiments"]] == IDS
        for entry in loaded["experiments"]:
            assert set(entry["checks"].values()) <= {True, False}
            assert entry["wall_s"] >= 0

    def test_summary_mentions_cache(self, small_campaign):
        from repro.run import CacheOutcome

        _, report = ExperimentRunner(jobs=0).run(small_campaign, ["table1"])
        report.cache = CacheOutcome(key="abc", path="/x", hit=True).to_dict()
        assert "cache: hit abc" in report.summary()
