"""Tests for the content-addressed campaign cache."""

import json

import numpy as np
import pytest

from repro.run import CampaignCache, calibration_fingerprint, campaign_key
from repro.run.cache import CACHE_DIR_ENV, default_cache_dir

SEED, SCALE = 11, 0.01


@pytest.fixture()
def cache(tmp_path):
    return CampaignCache(tmp_path / "cache")


class TestKeying:
    def test_key_stable(self):
        assert campaign_key(3, 0.5) == campaign_key(3, 0.5)

    def test_key_covers_seed_and_scale(self):
        base = campaign_key(3, 0.5)
        assert campaign_key(4, 0.5) != base
        assert campaign_key(3, 0.25) != base

    def test_key_covers_calibration(self):
        from repro.synth.config import PaperCalibration

        tweaked = PaperCalibration(spike_rack=7)
        assert calibration_fingerprint(tweaked) != calibration_fingerprint()
        assert campaign_key(3, 0.5, tweaked) != campaign_key(3, 0.5)

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert CampaignCache().directory == tmp_path / "elsewhere"


class TestGetOrGenerate:
    def test_miss_then_hit_bit_for_bit(self, cache):
        c1, o1 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o1.hit is False and o1.generate_s > 0
        c2, o2 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o2.hit is True and o2.load_s > 0
        for name in ("errors", "replacements", "het"):
            np.testing.assert_array_equal(getattr(c1, name), getattr(c2, name))
        np.testing.assert_array_equal(c1.faults(), c2.faults())

    def test_hit_prewarms_faults(self, cache):
        cache.get_or_generate(seed=SEED, scale=SCALE)
        campaign, outcome = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert outcome.hit
        assert campaign._faults_cache is not None

    def test_hit_rebuilds_population_and_sensors(self, cache):
        from repro._util import epoch

        c1, _ = cache.get_or_generate(seed=SEED, scale=SCALE)
        c2, o2 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o2.hit
        assert c2.population is not None
        assert c2.population.faults.size == c1.population.faults.size
        t = epoch("2019-06-01")
        assert c2.sensors.value(5, 0, t) == c1.sensors.value(5, 0, t)

    def test_seed_change_invalidates(self, cache):
        cache.get_or_generate(seed=SEED, scale=SCALE)
        _, outcome = cache.get_or_generate(seed=SEED + 1, scale=SCALE)
        assert outcome.hit is False

    def test_scale_change_invalidates(self, cache):
        cache.get_or_generate(seed=SEED, scale=SCALE)
        _, outcome = cache.get_or_generate(seed=SEED, scale=SCALE / 2)
        assert outcome.hit is False

    def test_corrupt_entry_regenerates(self, cache):
        _, o1 = cache.get_or_generate(seed=SEED, scale=SCALE)
        entry = cache.entry_path(o1.key)
        (entry / "errors.npy").write_bytes(b"garbage")
        campaign, o2 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o2.hit is False
        assert campaign.n_errors > 0
        # The rewritten entry is healthy again.
        _, o3 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o3.hit is True

    def test_checksum_mismatch_is_a_miss(self, cache):
        _, o1 = cache.get_or_generate(seed=SEED, scale=SCALE)
        entry = cache.entry_path(o1.key)
        meta = json.loads((entry / "meta.json").read_text())
        meta["sha256_errors"] = "0" * 64
        (entry / "meta.json").write_text(json.dumps(meta))
        _, o2 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert o2.hit is False

    def test_entry_is_a_loadable_campaign_dir(self, cache):
        from repro.logs.campaign_io import load_campaign_records

        _, outcome = cache.get_or_generate(seed=SEED, scale=SCALE)
        records = load_campaign_records(outcome.path)
        assert records.seed == SEED
        assert records.errors.size > 0

    def test_evict_and_clear(self, cache):
        _, o1 = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert cache.evict(o1.key) is True
        assert cache.evict(o1.key) is False
        cache.get_or_generate(seed=SEED, scale=SCALE)
        cache.get_or_generate(seed=SEED + 1, scale=SCALE)
        assert cache.clear() == 2


class TestWarmFromRecords:
    def _records(self, tmp_path, seed=SEED):
        from repro.logs.campaign_io import load_campaign_records, write_campaign
        from repro.synth import CampaignGenerator

        campaign = CampaignGenerator(seed=seed, scale=SCALE).generate()
        directory = write_campaign(campaign, tmp_path / f"camp{seed}", text_logs=False)
        return load_campaign_records(directory)

    def test_adopt_then_hit(self, cache, tmp_path):
        records = self._records(tmp_path)
        c1, o1 = cache.warm_from_records(records)
        assert o1.hit is False
        c2, o2 = cache.warm_from_records(records)
        assert o2.hit is True
        assert c2._faults_cache is not None  # the point of warming
        np.testing.assert_array_equal(c1.faults(), c2.faults())

    def test_adopted_entries_never_serve_generate(self, cache, tmp_path):
        records = self._records(tmp_path)
        cache.warm_from_records(records)
        _, outcome = cache.get_or_generate(seed=SEED, scale=SCALE)
        assert outcome.hit is False  # provenance guard

    def test_modified_records_invalidate(self, cache, tmp_path):
        records = self._records(tmp_path)
        cache.warm_from_records(records)
        records.errors = records.errors[:-1].copy()
        _, outcome = cache.warm_from_records(records)
        assert outcome.hit is False
