"""Tests for the front-to-back cooling model."""

import numpy as np
import pytest

from repro.machine.cooling import CoolingModel
from repro.machine.sensors import NodeSensorComplement
from repro.machine.topology import AstraTopology


@pytest.fixture(scope="module")
def model():
    return CoolingModel()


@pytest.fixture(scope="module")
def sensors():
    return NodeSensorComplement()


class TestAirflowOrdering:
    def test_socket0_cpu_hotter(self, model):
        """Air reaches socket 1 (CPU2) first, so socket 0 (CPU1) is hotter."""
        t0 = model.expected_temperature(0, 0)  # cpu0 sensor
        t1 = model.expected_temperature(0, 1)  # cpu1 sensor
        assert t0 > t1

    def test_socket0_dimms_hotter(self, model, sensors):
        aceg = sensors.by_name("dimm_aceg").index
        ikmo = sensors.by_name("dimm_ikmo").index
        assert model.expected_temperature(0, aceg) > model.expected_temperature(
            0, ikmo
        )

    def test_cpu_hotter_than_dimms(self, model):
        for sensor in range(2, 6):
            assert model.expected_temperature(0, 0) > model.expected_temperature(
                0, sensor
            )

    def test_power_sensor_rejected(self, model):
        with pytest.raises(ValueError):
            model.expected_temperature(0, 6)


class TestUniformityClaims:
    """Section 3.4: region spread < 1 degC; rack spread <= ~4.2 degC."""

    def test_internal_spread_check(self, model):
        assert model.expected_spread_ok()

    def test_region_spread_below_one_degree(self, model):
        topo = AstraTopology()
        nodes = topo.all_node_ids()
        temps = model.expected_temperature(nodes, np.zeros(len(nodes), dtype=int))
        means = [temps[topo.region_of(nodes) == r].mean() for r in range(3)]
        assert np.ptp(means) < 1.0

    def test_rack_spread_bounded(self, model):
        topo = AstraTopology()
        nodes = topo.all_node_ids()
        temps = model.expected_temperature(nodes, np.zeros(len(nodes), dtype=int))
        means = [temps[topo.rack_of(nodes) == r].mean() for r in range(36)]
        assert np.ptp(means) <= 4.2

    def test_plausible_absolute_bands(self, model):
        """CPU means in the 50-80 degC band, DIMMs in 30-55 (Figure 2)."""
        for sensor, lo, hi in ((0, 50, 80), (1, 50, 80), (2, 30, 55), (5, 30, 55)):
            t = model.expected_temperature(1234, sensor)
            assert lo < t < hi


class TestVectorisation:
    def test_broadcast_shapes(self, model):
        nodes = np.arange(10)
        out = model.expected_temperature(nodes, 0)
        assert out.shape == (10,)

    def test_scalar_returns_float(self, model):
        assert isinstance(model.expected_temperature(0, 0), float)

    def test_deterministic(self, model):
        a = model.expected_temperature(np.arange(100), 3)
        b = model.expected_temperature(np.arange(100), 3)
        np.testing.assert_array_equal(a, b)
