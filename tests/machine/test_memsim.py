"""Tests for the mechanistic rank simulator."""

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.faults.types import FaultMode
from repro.machine.dram import DRAMGeometry
from repro.machine.memsim import Defect, DefectKind, SimulatedRank

SMALL = DRAMGeometry(n_banks=4, n_rows=64, n_columns=16)


@pytest.fixture()
def rank():
    return SimulatedRank(node=42, slot=9, rank=1, geometry=SMALL, seed=3)


class TestCleanMemory:
    def test_clean_reads_no_errors(self, rank):
        for col in range(16):
            out = rank.read(0, 0, col)
            assert out.status == 0
        assert rank.ce_log.size == 0
        assert rank.read_count == 16

    def test_reads_deterministic(self, rank):
        a = rank.read(1, 2, 3).data
        b = rank.read(1, 2, 3).data
        assert a == b

    def test_out_of_range(self, rank):
        with pytest.raises(ValueError):
            rank.read(4, 0, 0)
        with pytest.raises(ValueError):
            rank.read(0, 64, 0)


class TestStuckBit:
    def test_errors_on_disagreeing_reads(self, rank):
        rank.inject(Defect(DefectKind.STUCK_BIT, bank=0, row=5, column=7, bit=13))
        results = [rank.read(0, 5, 7, t=float(t)) for t in range(10)]
        statuses = {r.status for r in results}
        # The stored bit either agrees (always clean) or disagrees
        # (always CE); with this seed it disagrees.
        assert statuses <= {0, 1}
        log = rank.ce_log
        if log.size:
            assert np.all(log["bit_pos"] == 13)
            assert np.unique(log["address"]).size == 1

    def test_other_cells_untouched(self, rank):
        rank.inject(Defect(DefectKind.STUCK_BIT, bank=0, row=5, column=7, bit=13))
        assert rank.read(0, 5, 8).status == 0
        assert rank.read(1, 5, 7).status == 0

    def test_record_schema_matches_campaign(self, rank):
        rank.inject(
            Defect(DefectKind.STUCK_BIT, bank=2, row=1, column=3, bit=0, stuck_value=0)
        )
        # Find a disagreeing parity: try both stuck values.
        rank.inject(
            Defect(DefectKind.STUCK_BIT, bank=2, row=1, column=4, bit=0, stuck_value=1)
        )
        rank.read(2, 1, 3, t=5.0)
        rank.read(2, 1, 4, t=6.0)
        log = rank.ce_log
        assert log.size >= 1
        assert np.all(log["node"] == 42)
        assert np.all(log["slot"] == 9)
        assert np.all(log["socket"] == 1)
        assert np.all(log["rank"] == 1)
        assert np.all(log["row"] == -1)  # Astra-style: no row in records

    def test_syndrome_consistent_with_bit(self, rank):
        from repro.machine.dram import SecDed72

        rank.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=0, column=0, bit=7))
        for t in range(5):
            rank.read(0, 0, 0, t=float(t))
        log = rank.ce_log
        code = SecDed72()
        for rec in log:
            assert rec["syndrome"] == code.syndrome_of_position(int(rec["bit_pos"]))

    def test_invalid_injections(self, rank):
        with pytest.raises(ValueError):
            rank.inject(Defect(DefectKind.STUCK_BIT, bank=9, row=0, column=0, bit=0))
        with pytest.raises(ValueError):
            rank.inject(Defect(DefectKind.STUCK_BIT, bank=0, row=0, column=0, bit=64))


class TestEndToEndClassification:
    """The simulator's records drive the coalescer to the right modes."""

    def test_stuck_bit_classifies_single_bit(self, rank):
        rank.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=3, column=2, bit=5))
        for t in range(20):
            rank.read(0, 3, 2, t=float(t))
        faults = coalesce(rank.ce_log)
        assert faults.size == 1
        assert faults["mode"][0] == FaultMode.SINGLE_BIT

    def test_column_defect_classifies_single_column(self, rank):
        rank.inject(Defect(DefectKind.COLUMN_DEFECT, bank=1, column=6, bit=9))
        for row in range(20):
            rank.read(1, row, 6, t=float(row))
        faults = coalesce(rank.ce_log)
        assert faults.size == 1
        assert faults["mode"][0] == FaultMode.SINGLE_COLUMN

    def test_row_defect_classifies_single_bank_without_rows(self, rank):
        """A row defect spans columns; with Astra-style records (no row
        field) the classifier can only call it single-bank -- exactly the
        limitation the paper describes."""
        rank.inject(Defect(DefectKind.ROW_DEFECT, bank=2, row=8, bit=1))
        rank.scrub_pass(2, 8, t0=0.0)
        faults = coalesce(rank.ce_log)
        assert faults.size == 1
        assert faults["mode"][0] == FaultMode.SINGLE_BANK

    def test_bank_defect_classifies_single_bank(self, rank):
        rank.inject(
            Defect(DefectKind.BANK_DEFECT, bank=3, flip_probability=1.0)
        )
        rng = np.random.default_rng(0)
        for t in range(30):
            rank.read(3, int(rng.integers(0, 64)), int(rng.integers(0, 16)), float(t))
        faults = coalesce(rank.ce_log)
        assert faults.size == 1
        assert faults["mode"][0] in (FaultMode.SINGLE_BANK, FaultMode.SINGLE_COLUMN)


class TestDue:
    def test_two_stuck_bits_in_one_word_due(self, rank):
        """Two disagreeing cells in the same word defeat SEC-DED."""
        produced_due = False
        for bit_a, bit_b in ((0, 1), (2, 3), (4, 5), (6, 7)):
            r = SimulatedRank(geometry=SMALL, seed=3)
            r.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=0, column=0, bit=bit_a))
            r.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=0, column=0, bit=bit_b))
            r.read(0, 0, 0)
            produced_due |= r.due_count > 0
        assert produced_due

    def test_due_not_logged_as_ce(self):
        r = SimulatedRank(geometry=SMALL, seed=3)
        r.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=0, column=0, bit=0))
        r.inject(Defect(DefectKind.FLAKY_BIT, bank=0, row=0, column=0, bit=1))
        r.read(0, 0, 0)
        assert r.due_count == 1
        assert r.ce_log.size == 0
