"""Tests for DRAM geometry, the address map, and the SEC-DED code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.dram import (
    CHECK_BITS,
    CODEWORD_BITS,
    DATA_BITS,
    AddressMap,
    DRAMGeometry,
    SecDed72,
)


class TestGeometry:
    def test_defaults(self):
        g = DRAMGeometry()
        assert g.n_banks == 16
        assert g.bank_bits == 4
        assert g.row_bits == 15
        assert g.column_bits == 10
        assert g.cells_per_bank == 32768 * 1024

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DRAMGeometry(n_banks=12)
        with pytest.raises(ValueError):
            DRAMGeometry(n_rows=1000)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            DRAMGeometry(n_columns=0)


class TestAddressMap:
    @pytest.fixture(scope="class")
    def amap(self):
        return AddressMap()

    def test_address_bits(self, amap):
        # 6 offset + 10 col + 4 bank + 15 row + 1 rank + 3 chan + 1 socket
        assert amap.address_bits == 40

    def test_scalar_roundtrip(self, amap):
        addr = amap.encode(1, 5, 1, 9, 123, 77, 8)
        fields = amap.decode(addr)
        assert fields == {
            "socket": 1,
            "channel": 5,
            "rank": 1,
            "bank": 9,
            "row": 123,
            "column": 77,
            "offset": 8,
        }

    def test_vector_roundtrip(self, amap):
        rng = np.random.default_rng(0)
        n = 1000
        f = {
            "socket": rng.integers(0, 2, n),
            "channel": rng.integers(0, 8, n),
            "rank": rng.integers(0, 2, n),
            "bank": rng.integers(0, 16, n),
            "row": rng.integers(0, 32768, n),
            "column": rng.integers(0, 1024, n),
            "offset": rng.integers(0, 64, n),
        }
        addr = amap.encode(**f)
        out = amap.decode(addr)
        for k in f:
            np.testing.assert_array_equal(out[k], f[k])

    def test_field_range_check(self, amap):
        with pytest.raises(ValueError):
            amap.encode(2, 0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            amap.encode(0, 0, 0, 16, 0, 0)

    def test_decode_range_check(self, amap):
        with pytest.raises(ValueError):
            amap.decode(np.uint64(1) << np.uint64(63))

    def test_distinct_fields_distinct_addresses(self, amap):
        a = amap.encode(0, 0, 0, 0, 0, 0)
        b = amap.encode(0, 0, 0, 0, 0, 1)
        c = amap.encode(0, 0, 0, 1, 0, 0)
        assert len({a, b, c}) == 3

    def test_offset_is_low_bits(self, amap):
        assert amap.encode(0, 0, 0, 0, 0, 0, 63) == 63


class TestSecDed:
    @pytest.fixture(scope="class")
    def code(self):
        return SecDed72()

    def test_columns_distinct_odd_weight(self, code):
        cols = code.columns
        assert len(cols) == CODEWORD_BITS
        assert len(set(cols.tolist())) == CODEWORD_BITS
        weights = np.bitwise_count(cols)
        assert np.all(weights % 2 == 1)

    def test_clean_word_zero_syndrome(self, code):
        data = np.uint64(0xDEADBEEFCAFEF00D)
        checks = code.encode(data)
        assert code.syndrome(data, checks) == 0

    def test_single_bit_error_corrected(self, code):
        data = np.uint64(0x0123456789ABCDEF)
        checks = code.encode(data)
        for pos in (0, 17, 63):
            bad = data ^ (np.uint64(1) << np.uint64(pos))
            fixed, status = code.correct(bad, checks)
            assert status == 1
            assert fixed == data

    def test_check_bit_error_detected_correctable(self, code):
        data = np.uint64(42)
        checks = code.encode(data)
        bad_checks = checks ^ (1 << 3)
        fixed, status = code.correct(data, bad_checks)
        assert status == 1
        assert fixed == data  # data was never wrong

    def test_double_bit_error_detected_not_corrected(self, code):
        data = np.uint64(0xFFFF0000FFFF0000)
        checks = code.encode(data)
        bad = data ^ np.uint64(0b11)  # flip bits 0 and 1
        fixed, status = code.correct(bad, checks)
        assert status == 2
        assert fixed == bad  # returned unmodified

    def test_syndrome_of_position_matches_column(self, code):
        pos = np.arange(CODEWORD_BITS)
        np.testing.assert_array_equal(code.syndrome_of_position(pos), code.columns)

    def test_syndrome_of_position_range(self, code):
        with pytest.raises(ValueError):
            code.syndrome_of_position(72)

    def test_position_of_syndrome_inverse(self, code):
        for pos in range(CODEWORD_BITS):
            syn = code.syndrome_of_position(pos)
            assert code.position_of_syndrome(syn) == pos

    def test_position_of_syndrome_unknown(self, code):
        # weight-2 syndromes are never single-bit columns
        assert code.position_of_syndrome(0b11) == -1

    def test_classify_values(self, code):
        assert code.classify(0) == 0
        assert code.classify(int(code.columns[0])) == 1
        assert code.classify(0b11) == 2

    def test_vectorised_encode(self, code):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2**63, 500, dtype=np.uint64)
        checks = code.encode(data)
        syn = code.syndrome(data, checks)
        assert np.all(syn == 0)

    def test_vectorised_correct(self, code):
        rng = np.random.default_rng(2)
        n = 300
        data = rng.integers(0, 2**63, n, dtype=np.uint64)
        checks = code.encode(data)
        flips = rng.integers(0, DATA_BITS, n)
        bad = data ^ (np.uint64(1) << flips.astype(np.uint64))
        fixed, status = code.correct(bad, checks)
        assert np.all(status == 1)
        np.testing.assert_array_equal(fixed, data)


@given(
    data=st.integers(0, 2**64 - 1),
    pos=st.integers(0, DATA_BITS - 1),
)
@settings(max_examples=60)
def test_property_any_single_data_flip_corrects(data, pos):
    code = SecDed72()
    d = np.uint64(data)
    checks = code.encode(d)
    bad = d ^ (np.uint64(1) << np.uint64(pos))
    fixed, status = code.correct(bad, checks)
    assert status == 1
    assert fixed == d


@given(
    data=st.integers(0, 2**64 - 1),
    p1=st.integers(0, CODEWORD_BITS - 1),
    p2=st.integers(0, CODEWORD_BITS - 1),
)
@settings(max_examples=60)
def test_property_double_flips_never_miscorrect_silently(data, p1, p2):
    """Any two distinct codeword flips must be detected (status != 0)."""
    if p1 == p2:
        return
    code = SecDed72()
    d = np.uint64(data)
    checks = code.encode(d)
    bad_d, bad_c = d, int(checks)
    for p in (p1, p2):
        if p < DATA_BITS:
            bad_d = bad_d ^ (np.uint64(1) << np.uint64(p))
        else:
            bad_c ^= 1 << (p - DATA_BITS)
    syn = code.syndrome(bad_d, np.uint8(bad_c))
    assert code.classify(syn) == 2  # Hsiao: even-weight syndrome, a DUE
