"""Tests for the Chipkill-class SSC-DSD symbol code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.chipkill import (
    CHECK_SYMBOLS,
    CLEAN,
    CODEWORD_SYMBOLS,
    CORRECTED,
    DETECTED_UNCORRECTABLE,
    ChipkillSsc,
)


@pytest.fixture(scope="module")
def code():
    return ChipkillSsc()


def random_words(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (n, 16)).astype(np.uint8)


class TestEncode:
    def test_shape(self, code):
        cw = code.encode(random_words(5))
        assert cw.shape == (5, CODEWORD_SYMBOLS)

    def test_clean_zero_syndromes(self, code):
        cw = code.encode(random_words(20, seed=1))
        assert np.all(code.syndromes(cw) == 0)

    def test_wrong_width_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros((2, 15), dtype=np.uint8))
        with pytest.raises(ValueError):
            code.syndromes(np.zeros((2, 18), dtype=np.uint8))


class TestDecode:
    def test_clean_status(self, code):
        cw = code.encode(random_words(3, seed=2))
        fixed, status = code.decode(cw)
        assert np.all(status == CLEAN)
        np.testing.assert_array_equal(fixed, cw)

    def test_every_single_symbol_error_corrected(self, code):
        data = random_words(1, seed=3)
        clean = code.encode(data)
        for pos in range(CODEWORD_SYMBOLS):
            for err in (0x01, 0x80, 0xFF, 0x5A):
                bad = clean.copy()
                bad[0, pos] ^= err
                fixed, status = code.decode(bad)
                assert status[0] == CORRECTED, (pos, err)
                np.testing.assert_array_equal(fixed[0], clean[0])

    def test_double_symbol_errors_detected(self, code):
        rng = np.random.default_rng(4)
        data = random_words(200, seed=5)
        clean = code.encode(data)
        bad = clean.copy()
        for i in range(200):
            p1, p2 = rng.choice(CODEWORD_SYMBOLS, 2, replace=False)
            bad[i, p1] ^= rng.integers(1, 256)
            bad[i, p2] ^= rng.integers(1, 256)
        fixed, status = code.decode(bad)
        # SSC-DSD guarantee: distance 4 detects every 2-symbol error.
        assert np.all(status == DETECTED_UNCORRECTABLE)
        np.testing.assert_array_equal(fixed, bad)  # nothing touched

    def test_scalar_interface(self, code):
        data = random_words(1, seed=6)[0]
        clean = code.encode(data)
        bad = clean.copy()
        bad[4] ^= 0x0F
        fixed, status = code.decode(bad)
        assert status == CORRECTED
        np.testing.assert_array_equal(fixed, clean)


@given(
    seed=st.integers(0, 10_000),
    pos=st.integers(0, CODEWORD_SYMBOLS - 1),
    err=st.integers(1, 255),
)
@settings(max_examples=60, deadline=None)
def test_property_chipkill_corrects_any_device_corruption(seed, pos, err):
    """Any corruption confined to one device (symbol) is corrected."""
    code = ChipkillSsc()
    data = random_words(1, seed=seed)
    clean = code.encode(data)
    bad = clean.copy()
    bad[0, pos] ^= err
    fixed, status = code.decode(bad)
    assert status[0] == CORRECTED
    np.testing.assert_array_equal(fixed[0], clean[0])
