"""Tests for the Chipkill-class SSC-DSD symbol code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.chipkill import (
    CHECK_SYMBOLS,
    CLEAN,
    CODEWORD_SYMBOLS,
    CORRECTED,
    DETECTED_UNCORRECTABLE,
    ChipkillSsc,
)


@pytest.fixture(scope="module")
def code():
    return ChipkillSsc()


def random_words(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (n, 16)).astype(np.uint8)


class TestEncode:
    def test_shape(self, code):
        cw = code.encode(random_words(5))
        assert cw.shape == (5, CODEWORD_SYMBOLS)

    def test_clean_zero_syndromes(self, code):
        cw = code.encode(random_words(20, seed=1))
        assert np.all(code.syndromes(cw) == 0)

    def test_wrong_width_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros((2, 15), dtype=np.uint8))
        with pytest.raises(ValueError):
            code.syndromes(np.zeros((2, 18), dtype=np.uint8))


class TestDecode:
    def test_clean_status(self, code):
        cw = code.encode(random_words(3, seed=2))
        fixed, status = code.decode(cw)
        assert np.all(status == CLEAN)
        np.testing.assert_array_equal(fixed, cw)

    def test_every_single_symbol_error_corrected(self, code):
        data = random_words(1, seed=3)
        clean = code.encode(data)
        for pos in range(CODEWORD_SYMBOLS):
            for err in (0x01, 0x80, 0xFF, 0x5A):
                bad = clean.copy()
                bad[0, pos] ^= err
                fixed, status = code.decode(bad)
                assert status[0] == CORRECTED, (pos, err)
                np.testing.assert_array_equal(fixed[0], clean[0])

    def test_double_symbol_errors_detected(self, code):
        rng = np.random.default_rng(4)
        data = random_words(200, seed=5)
        clean = code.encode(data)
        bad = clean.copy()
        for i in range(200):
            p1, p2 = rng.choice(CODEWORD_SYMBOLS, 2, replace=False)
            bad[i, p1] ^= rng.integers(1, 256)
            bad[i, p2] ^= rng.integers(1, 256)
        fixed, status = code.decode(bad)
        # SSC-DSD guarantee: distance 4 detects every 2-symbol error.
        assert np.all(status == DETECTED_UNCORRECTABLE)
        np.testing.assert_array_equal(fixed, bad)  # nothing touched

    def test_scalar_interface(self, code):
        data = random_words(1, seed=6)[0]
        clean = code.encode(data)
        bad = clean.copy()
        bad[4] ^= 0x0F
        fixed, status = code.decode(bad)
        assert status == CORRECTED
        np.testing.assert_array_equal(fixed, clean)


class TestKnownAnswerSyndromes:
    """Hand-computed syndrome vectors for the alpha^(r*j) construction.

    Worked by hand over GF(256)/0x11B: shift-and-reduce doubling chains
    for the products, XOR for the sums.  These pin the parity-check
    matrix itself -- a transposed or re-indexed H would still pass
    every round-trip test, but not these.
    """

    def test_zero_data_encodes_to_zero_codeword(self, code):
        cw = code.encode(np.zeros((1, 16), dtype=np.uint8))
        assert np.all(cw == 0)

    def test_single_error_syndromes_by_hand(self, code):
        # e = 0x57 at position j=3: S_r = e * alpha^(3r), so
        # S = (0x57, 0x57*0x0F, 0x57*0x55) = (0x57, 0x30, 0x0B).
        cw = np.zeros((1, 19), dtype=np.uint8)
        cw[0, 3] = 0x57
        s = code.syndromes(cw)[0]
        assert s.tolist() == [0x57, 0x30, 0x0B]

    def test_single_error_consistency_and_locator(self, code):
        from repro.machine.gf256 import gf_div, gf_log, gf_mul

        cw = np.zeros((1, 19), dtype=np.uint8)
        cw[0, 3] = 0x57
        s0, s1, s2 = (int(x) for x in code.syndromes(cw)[0])
        # Single-error consistency S1^2 == S0*S2 (= 0x77 by hand) and
        # locator log(S1/S0) == 3.
        assert gf_mul(s1, s1) == gf_mul(s0, s2) == 0x77
        assert gf_log(gf_div(s1, s0)) == 3

    def test_position_zero_error_repeats_magnitude(self, code):
        # alpha^0 = 1 in every row: e = 0x02 at j=0 gives S = (e, e, e).
        cw = np.zeros((1, 19), dtype=np.uint8)
        cw[0, 0] = 0x02
        assert code.syndromes(cw)[0].tolist() == [0x02, 0x02, 0x02]

    def test_two_unit_errors_inconsistent_syndromes(self, code):
        # 0x01 at j=0 plus 0x01 at j=1: S = (0, 1^0x03, 1^0x05) =
        # (0x00, 0x02, 0x04) -- S0 zero with S1 nonzero can never come
        # from a single symbol, so the decoder must flag it.
        cw = np.zeros((1, 19), dtype=np.uint8)
        cw[0, 0] = 0x01
        cw[0, 1] = 0x01
        assert code.syndromes(cw)[0].tolist() == [0x00, 0x02, 0x04]
        _fixed, status = code.decode(cw)
        assert status[0] == DETECTED_UNCORRECTABLE


class TestRsErasure:
    """The erasure algebra behind the what-if engine's RS models."""

    def test_encode_zero_syndromes(self):
        from repro.mitigation.codes import rs_encode, rs_syndromes

        data = np.arange(1, 33, dtype=np.uint8)
        cw = rs_encode(data, 36, 32)
        assert cw.shape == (36,)
        assert np.all(rs_syndromes(cw, 36, 32) == 0)

    def test_full_capacity_erasures_recovered(self):
        from repro.mitigation.codes import rs_encode, rs_erasure_decode

        rng = np.random.default_rng(11)
        for n, k in ((36, 32), (72, 64)):
            data = rng.integers(0, 256, k).astype(np.uint8)
            cw = rs_encode(data, n, k)
            pos = rng.choice(n, n - k, replace=False)
            bad = cw.copy()
            bad[pos] ^= rng.integers(1, 256, n - k).astype(np.uint8)
            np.testing.assert_array_equal(
                rs_erasure_decode(bad, pos, n, k), cw
            )

    def test_beyond_capacity_raises(self):
        from repro.mitigation.codes import rs_encode, rs_erasure_decode

        cw = rs_encode(np.zeros(32, dtype=np.uint8), 36, 32)
        with pytest.raises(ValueError, match="exceed"):
            rs_erasure_decode(cw, [0, 1, 2, 3, 4], 36, 32)

    def test_errors_outside_erasures_detected(self):
        from repro.mitigation.codes import rs_encode, rs_erasure_decode

        data = np.arange(32, dtype=np.uint8)
        cw = rs_encode(data, 36, 32)
        bad = cw.copy()
        bad[5] ^= 0x21  # corruption at an undeclared position
        bad[9] ^= 0x40
        with pytest.raises(ValueError, match="residual"):
            rs_erasure_decode(bad, [9], 36, 32)

    def test_chipkill_geometry_is_rs_19_16(self):
        # The SSC-DSD code is the same construction at (19, 16): its
        # syndromes match the generic RS syndromes symbol for symbol.
        from repro.mitigation.codes import rs_syndromes

        code = ChipkillSsc()
        rng = np.random.default_rng(3)
        cw = code.encode(rng.integers(0, 256, (4, 16)).astype(np.uint8))
        np.testing.assert_array_equal(
            code.syndromes(cw), rs_syndromes(cw, 19, 16)
        )


@given(
    seed=st.integers(0, 10_000),
    pos=st.integers(0, CODEWORD_SYMBOLS - 1),
    err=st.integers(1, 255),
)
@settings(max_examples=60, deadline=None)
def test_property_chipkill_corrects_any_device_corruption(seed, pos, err):
    """Any corruption confined to one device (symbol) is corrected."""
    code = ChipkillSsc()
    data = random_words(1, seed=seed)
    clean = code.encode(data)
    bad = clean.copy()
    bad[0, pos] ^= err
    fixed, status = code.decode(bad)
    assert status[0] == CORRECTED
    np.testing.assert_array_equal(fixed[0], clean[0])
