"""Tests for the node sensor complement and slot->sensor wiring."""

import numpy as np
import pytest

from repro.machine.node import DIMM_SLOTS, slot_index
from repro.machine.sensors import (
    DIMM_SENSOR_GROUPS,
    NodeSensorComplement,
    SensorKind,
)


@pytest.fixture(scope="module")
def sensors():
    return NodeSensorComplement()


class TestComplement:
    def test_seven_sensors(self, sensors):
        assert len(sensors) == 7

    def test_names(self, sensors):
        assert sensors.names == (
            "cpu0",
            "cpu1",
            "dimm_aceg",
            "dimm_hfdb",
            "dimm_ikmo",
            "dimm_jlnp",
            "dc_power",
        )

    def test_six_temperature_sensors(self, sensors):
        assert len(sensors.temperature_sensors) == 6

    def test_four_dimm_sensors(self, sensors):
        assert len(sensors.dimm_sensors) == 4

    def test_power_sensor(self, sensors):
        p = sensors.power_sensor
        assert p.kind is SensorKind.DC_POWER
        assert p.socket == -1

    def test_lookup_by_name_and_index(self, sensors):
        s = sensors.by_name("dimm_jlnp")
        assert sensors.by_index(s.index) is s

    def test_unknown_name(self, sensors):
        with pytest.raises(ValueError):
            sensors.by_name("nope")

    def test_bad_index(self, sensors):
        with pytest.raises(ValueError):
            sensors.by_index(7)


class TestWiring:
    def test_paper_groups(self):
        # Section 2.2: A,C,E,G | H,F,D,B | I,K,M,O | J,L,N,P
        assert DIMM_SENSOR_GROUPS == (
            ("A", "C", "E", "G"),
            ("H", "F", "D", "B"),
            ("I", "K", "M", "O"),
            ("J", "L", "N", "P"),
        )

    def test_groups_partition_slots(self):
        covered = sorted(l for g in DIMM_SENSOR_GROUPS for l in g)
        assert covered == sorted(DIMM_SLOTS)

    def test_sensor_for_slot_letter(self, sensors):
        assert sensors.sensor_for_slot("A").name == "dimm_aceg"
        assert sensors.sensor_for_slot("B").name == "dimm_hfdb"
        assert sensors.sensor_for_slot("O").name == "dimm_ikmo"
        assert sensors.sensor_for_slot("P").name == "dimm_jlnp"

    def test_sensor_socket_affinity(self, sensors):
        for letter in DIMM_SLOTS:
            s = sensors.sensor_for_slot(letter)
            assert s.socket == slot_index(letter) // 8

    def test_vectorised_slot_lookup(self, sensors):
        idx = sensors.sensor_index_for_slot(np.arange(16))
        # every DIMM sensor covers exactly four slots
        counts = np.bincount(idx, minlength=7)
        assert counts[2:6].tolist() == [4, 4, 4, 4]
        assert counts[:2].sum() == 0 and counts[6] == 0

    def test_slot_lookup_range(self, sensors):
        with pytest.raises(ValueError):
            sensors.sensor_index_for_slot(np.array([16]))

    def test_covers_slot(self, sensors):
        s = sensors.by_name("dimm_aceg")
        assert s.covers_slot("a")
        assert not s.covers_slot("B")


class TestValidity:
    def test_valid_temperature(self, sensors):
        assert sensors.is_valid_sample(0, 65.0)

    def test_invalid_temperature(self, sensors):
        assert not sensors.is_valid_sample(0, 250.0)
        assert not sensors.is_valid_sample(0, -5.0)

    def test_invalid_power(self, sensors):
        assert not sensors.is_valid_sample(6, 5000.0)
        assert sensors.is_valid_sample(6, 300.0)

    def test_nan_invalid(self, sensors):
        assert not sensors.is_valid_sample(3, float("nan"))

    def test_vectorised_validity(self, sensors):
        idx = np.array([0, 0, 6, 6])
        vals = np.array([60.0, 200.0, 300.0, 10.0])
        np.testing.assert_array_equal(
            sensors.is_valid_sample(idx, vals), [True, False, True, False]
        )
