"""Tests for GF(256) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.gf256 import alpha, gf_div, gf_log, gf_mul, gf_pow

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestBasics:
    def test_multiplicative_identity(self):
        for a in (1, 7, 255):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        assert gf_mul(0, 123) == 0
        assert gf_mul(123, 0) == 0

    def test_known_product(self):
        # 0x53 * 0xCA = 0x01 in the AES field (classic inverse pair).
        assert gf_mul(0x53, 0xCA) == 0x01

    def test_div_inverse_of_mul(self):
        assert gf_div(gf_mul(77, 99), 99) == 77

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_alpha_powers_distinct(self):
        powers = alpha(np.arange(255))
        assert len(set(powers.tolist())) == 255

    def test_log_exp_roundtrip(self):
        for a in (1, 2, 17, 254):
            assert alpha(gf_log(a)) == a

    def test_log_zero_convention(self):
        assert gf_log(0) == -1

    def test_pow(self):
        g = int(alpha(1))
        assert gf_pow(g, 2) == gf_mul(g, g)
        with pytest.raises(ValueError):
            gf_pow(0, 3)

    def test_vectorised(self):
        a = np.arange(256, dtype=np.uint8)
        out = gf_mul(a, a)
        assert out.shape == (256,)
        assert out[0] == 0


class TestKnownAnswerVectors:
    """Pin the field to published truth, not self-consistency.

    The repo's tables are only trustworthy if they match the external
    literature for the AES polynomial 0x11B with generator 0x03: the
    FIPS-197 worked multiplication examples, the standard exp/log
    tables, and Fermat's little theorem for the 255-element group.
    """

    def test_fips197_multiplication_examples(self):
        # FIPS-197 section 4.2: {57}x{83} = {c1} and {57}x{13} = {fe}.
        assert gf_mul(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_classic_inverse_pair(self):
        # The S-box derivation's worked example: {53}x{CA} = {01}.
        assert gf_mul(0x53, 0xCA) == 0x01

    def test_published_exp_table_prefix(self):
        # First sixteen powers of the generator 0x03 from the standard
        # 0x11B exp table.
        expected = [
            0x01, 0x03, 0x05, 0x0F, 0x11, 0x33, 0x55, 0xFF,
            0x1A, 0x2E, 0x72, 0x96, 0xA1, 0xF8, 0x13, 0x35,
        ]
        assert alpha(np.arange(16)).tolist() == expected

    def test_published_log_entries(self):
        # Log-table spot checks for the 0x11B/0x03 pairing.
        assert gf_log(0x02) == 25
        assert gf_log(0x03) == 1
        assert gf_log(0xFF) == 7

    def test_generator_order_is_255(self):
        # alpha^255 wraps to the identity; no smaller power does.
        assert alpha(255) == 1
        assert np.all(alpha(np.arange(1, 255)) != 1)

    def test_fermat_little_theorem(self):
        for a in (0x02, 0x53, 0xFE):
            assert gf_pow(a, 255) == 1

    def test_doubling_chain_below_reduction(self):
        # 0x02^4 = 0x10: pure left shifts, no polynomial reduction yet.
        assert gf_pow(0x02, 4) == 0x10


@given(a=elements, b=elements, c=elements)
@settings(max_examples=80)
def test_property_mul_commutative_associative(a, b, c):
    assert gf_mul(a, b) == gf_mul(b, a)
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(a=elements, b=elements, c=elements)
@settings(max_examples=80)
def test_property_distributive_over_xor(a, b, c):
    assert gf_mul(a, b ^ c) == (gf_mul(a, b) ^ gf_mul(a, c))


@given(a=nonzero)
@settings(max_examples=60)
def test_property_inverse_exists(a):
    inv = gf_div(1, a)
    assert gf_mul(a, inv) == 1
