"""Tests for node internals: DIMM slots, sockets, channels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.node import (
    DIMM_SLOTS,
    N_SLOTS,
    NodeConfig,
    channel_of_slot,
    slot_index,
    slot_letter,
    slots_of_socket,
    socket_of_slot,
)


class TestSlots:
    def test_sixteen_slots(self):
        assert N_SLOTS == 16
        assert DIMM_SLOTS == tuple("ABCDEFGHIJKLMNOP")

    def test_slot_index_roundtrip(self):
        for i, letter in enumerate(DIMM_SLOTS):
            assert slot_index(letter) == i
            assert slot_letter(i) == letter

    def test_slot_index_lowercase(self):
        assert slot_index("j") == 9

    def test_slot_index_unknown(self):
        with pytest.raises(ValueError):
            slot_index("Q")

    def test_slot_letter_range(self):
        with pytest.raises(ValueError):
            slot_letter(16)
        with pytest.raises(ValueError):
            slot_letter(-1)


class TestSocketAffinity:
    def test_paper_assignment(self):
        # "Slots A-H are associated with socket 0, and I-P with socket 1."
        for letter in "ABCDEFGH":
            assert socket_of_slot(letter) == 0
        for letter in "IJKLMNOP":
            assert socket_of_slot(letter) == 1

    def test_vectorised_socket(self):
        out = socket_of_slot(np.arange(16))
        np.testing.assert_array_equal(out, np.repeat([0, 1], 8))

    def test_socket_range_check(self):
        with pytest.raises(ValueError):
            socket_of_slot(np.array([16]))

    def test_channels_cover_each_socket(self):
        for socket in (0, 1):
            chans = sorted(channel_of_slot(s) for s in slots_of_socket(socket))
            assert chans == list(range(8))

    def test_channel_by_letter(self):
        assert channel_of_slot("A") == 0
        assert channel_of_slot("H") == 7
        assert channel_of_slot("I") == 0

    def test_channel_range_check(self):
        with pytest.raises(ValueError):
            channel_of_slot(np.array([-1]))

    def test_slots_of_socket_invalid(self):
        with pytest.raises(ValueError):
            slots_of_socket(2)


class TestNodeConfig:
    def test_astra_defaults(self):
        cfg = NodeConfig()
        assert cfg.n_cores == 56
        assert cfg.dimms_per_socket == 8
        assert cfg.dimms_per_node == 16
        assert cfg.memory_per_node_gib == 128
        assert cfg.ecc_scheme == "SEC-DED"

    def test_table1_denominators(self):
        cfg = NodeConfig()
        assert cfg.system_dimm_count(2592) == 41472
        assert cfg.system_processor_count(2592) == 5184

    def test_astra_total_cores(self):
        assert NodeConfig().n_cores * 2592 == 145152  # paper section 2.2

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            NodeConfig(n_sockets=0)
        with pytest.raises(ValueError):
            NodeConfig(channels_per_socket=0)
        with pytest.raises(ValueError):
            NodeConfig(ranks_per_dimm=0)

    def test_negative_counts_rejected(self):
        cfg = NodeConfig()
        with pytest.raises(ValueError):
            cfg.system_dimm_count(-1)
        with pytest.raises(ValueError):
            cfg.system_processor_count(-1)


@given(st.integers(0, N_SLOTS - 1))
def test_property_slot_consistency(idx):
    letter = slot_letter(idx)
    assert slot_index(letter) == idx
    assert socket_of_slot(letter) == idx // 8
    assert channel_of_slot(letter) == idx % 8
