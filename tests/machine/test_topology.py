"""Tests for the rack/chassis/node topology model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machine.topology import (
    REGION_BOTTOM,
    REGION_MIDDLE,
    REGION_NAMES,
    REGION_TOP,
    AstraTopology,
)


@pytest.fixture(scope="module")
def astra():
    return AstraTopology()


class TestSizes:
    def test_astra_node_count(self, astra):
        assert astra.n_nodes == 2592

    def test_nodes_per_rack(self, astra):
        assert astra.nodes_per_rack == 72

    def test_chassis_per_region(self, astra):
        assert astra.chassis_per_region == 6

    def test_nodes_per_region(self, astra):
        assert astra.nodes_per_region == 24

    def test_custom_topology(self):
        topo = AstraTopology(n_racks=2, chassis_per_rack=3, nodes_per_chassis=2)
        assert topo.n_nodes == 12
        assert topo.chassis_per_region == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AstraTopology(n_racks=0)

    def test_rejects_indivisible_chassis(self):
        with pytest.raises(ValueError):
            AstraTopology(chassis_per_rack=16)


class TestMapping:
    def test_node_id_zero(self, astra):
        assert astra.node_id(0, 0, 0) == 0

    def test_node_id_last(self, astra):
        assert astra.node_id(35, 17, 3) == 2591

    def test_node_id_vectorised(self, astra):
        ids = astra.node_id(np.array([0, 1]), np.array([0, 0]), np.array([0, 0]))
        assert list(ids) == [0, 72]

    def test_node_id_range_checks(self, astra):
        with pytest.raises(ValueError):
            astra.node_id(36, 0, 0)
        with pytest.raises(ValueError):
            astra.node_id(0, 18, 0)
        with pytest.raises(ValueError):
            astra.node_id(0, 0, 4)

    def test_inverse_scalar(self, astra):
        node = astra.node_id(7, 11, 2)
        assert astra.rack_of(node) == 7
        assert astra.chassis_of(node) == 11
        assert astra.slot_of(node) == 2

    def test_roundtrip_all_nodes(self, astra):
        ids = astra.all_node_ids()
        back = astra.node_id(
            astra.rack_of(ids), astra.chassis_of(ids), astra.slot_of(ids)
        )
        np.testing.assert_array_equal(back, ids)

    def test_id_out_of_range(self, astra):
        with pytest.raises(ValueError):
            astra.rack_of(2592)
        with pytest.raises(ValueError):
            astra.rack_of(-1)

    def test_non_integer_ids_rejected(self, astra):
        with pytest.raises(TypeError):
            astra.rack_of(np.array([0.5]))


class TestRegions:
    def test_region_boundaries(self, astra):
        # chassis 0-5 bottom, 6-11 middle, 12-17 top
        assert astra.region_of(astra.node_id(0, 0, 0)) == REGION_BOTTOM
        assert astra.region_of(astra.node_id(0, 5, 3)) == REGION_BOTTOM
        assert astra.region_of(astra.node_id(0, 6, 0)) == REGION_MIDDLE
        assert astra.region_of(astra.node_id(0, 11, 3)) == REGION_MIDDLE
        assert astra.region_of(astra.node_id(0, 12, 0)) == REGION_TOP
        assert astra.region_of(astra.node_id(0, 17, 3)) == REGION_TOP

    def test_regions_partition_evenly(self, astra):
        regions = astra.region_of(astra.all_node_ids())
        counts = np.bincount(regions, minlength=3)
        assert counts.tolist() == [864, 864, 864]

    def test_region_names(self):
        assert REGION_NAMES == ("bottom", "middle", "top")

    def test_nodes_in_region(self, astra):
        bottom = astra.nodes_in_region(0, REGION_BOTTOM)
        assert len(bottom) == astra.nodes_per_region
        assert np.all(astra.region_of(bottom) == REGION_BOTTOM)
        assert np.all(astra.rack_of(bottom) == 0)

    def test_nodes_in_region_rejects_bad_region(self, astra):
        with pytest.raises(ValueError):
            astra.nodes_in_region(0, 3)


class TestLocate:
    def test_locate_fields(self, astra):
        loc = astra.locate(astra.node_id(3, 13, 1))
        assert (loc.rack, loc.chassis, loc.slot) == (3, 13, 1)
        assert loc.region == REGION_TOP
        assert loc.region_name == "top"

    def test_nodes_in_rack(self, astra):
        nodes = astra.nodes_in_rack(35)
        assert len(nodes) == 72
        assert np.all(astra.rack_of(nodes) == 35)

    def test_nodes_in_rack_range(self, astra):
        with pytest.raises(ValueError):
            astra.nodes_in_rack(36)


@given(
    rack=st.integers(0, 35),
    chassis=st.integers(0, 17),
    slot=st.integers(0, 3),
)
def test_property_roundtrip(rack, chassis, slot):
    topo = AstraTopology()
    node = topo.node_id(rack, chassis, slot)
    assert 0 <= node < topo.n_nodes
    loc = topo.locate(node)
    assert (loc.rack, loc.chassis, loc.slot) == (rack, chassis, slot)
    assert loc.region == chassis // 6
