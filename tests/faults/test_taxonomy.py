"""Tests for the Avizienis taxonomy helpers."""

import pytest

from repro.faults.taxonomy import (
    ErrorOutcome,
    FaultState,
    classify_outcome,
    outcome_of_secded_status,
)


class TestClassifyOutcome:
    def test_corrected(self):
        assert classify_outcome(True, True) is ErrorOutcome.CORRECTED

    def test_due(self):
        assert (
            classify_outcome(True, False) is ErrorOutcome.DETECTED_UNCORRECTABLE
        )

    def test_silent(self):
        assert classify_outcome(False, False) is ErrorOutcome.SILENT

    def test_impossible_combination(self):
        with pytest.raises(ValueError):
            classify_outcome(False, True)


class TestSecdedBridge:
    def test_clean(self):
        assert outcome_of_secded_status(0) is None

    def test_ce(self):
        assert outcome_of_secded_status(1) is ErrorOutcome.CORRECTED

    def test_due(self):
        assert (
            outcome_of_secded_status(2) is ErrorOutcome.DETECTED_UNCORRECTABLE
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            outcome_of_secded_status(3)


def test_fault_states():
    assert {s.value for s in FaultState} == {"active", "dormant"}


def test_outcome_abbreviations_match_paper():
    assert ErrorOutcome.CORRECTED.value == "CE"
    assert ErrorOutcome.DETECTED_UNCORRECTABLE.value == "DUE"
