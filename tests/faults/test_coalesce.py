"""Tests for error-to-fault coalescing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.coalesce import CoalesceOptions, coalesce, errors_with_fault_ids
from repro.faults.types import ERROR_DTYPE, FaultMode, empty_errors
from util import bit_error, make_errors


class TestBasics:
    def test_empty_input(self):
        faults = coalesce(empty_errors(0))
        assert faults.size == 0

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError):
            coalesce(np.zeros(3, dtype=np.int64))

    def test_single_error_single_fault(self):
        faults = coalesce(make_errors([bit_error(t=5.0)]))
        assert faults.size == 1
        assert faults["n_errors"][0] == 1
        assert faults["first_time"][0] == 5.0
        assert faults["last_time"][0] == 5.0
        assert faults["mode"][0] == FaultMode.SINGLE_BIT

    def test_repeat_errors_one_fault(self):
        errors = make_errors([bit_error(t=float(t)) for t in range(10)])
        faults = coalesce(errors)
        assert faults.size == 1
        assert faults["n_errors"][0] == 10
        assert faults["first_time"][0] == 0.0
        assert faults["last_time"][0] == 9.0

    def test_different_banks_different_faults(self):
        errors = make_errors(
            [bit_error(bank=0), bit_error(bank=1), bit_error(bank=2)]
        )
        faults = coalesce(errors)
        assert faults.size == 3

    def test_different_nodes_different_faults(self):
        errors = make_errors([bit_error(node=0), bit_error(node=1)])
        assert coalesce(errors).size == 2

    def test_different_ranks_different_faults(self):
        errors = make_errors([bit_error(rank=0), bit_error(rank=1)])
        assert coalesce(errors).size == 2

    def test_different_slots_different_faults(self):
        errors = make_errors([bit_error(slot=0), bit_error(slot=9)])
        faults = coalesce(errors)
        assert faults.size == 2
        # socket follows the slot
        assert sorted(faults["socket"].tolist()) == [0, 1]

    def test_unsorted_input_handled(self):
        errors = make_errors(
            [
                bit_error(node=5, t=3.0),
                bit_error(node=1, t=1.0),
                bit_error(node=5, t=2.0),
            ]
        )
        faults = coalesce(errors)
        assert faults.size == 2
        f5 = faults[faults["node"] == 5][0]
        assert f5["n_errors"] == 2
        assert f5["first_time"] == 2.0
        assert f5["last_time"] == 3.0


class TestRepresentativeFields:
    def test_homogeneous_fields_kept(self):
        errors = make_errors([bit_error(t=0.0), bit_error(t=1.0)])
        f = coalesce(errors)[0]
        assert f["column"] == 5
        assert f["bit_pos"] == 3
        assert f["bank"] == 0

    def test_mixed_column_sentineled(self):
        errors = make_errors(
            [bit_error(column=1, address=64), bit_error(column=2, address=128)]
        )
        f = coalesce(errors)[0]
        assert f["column"] == -1

    def test_mixed_bit_sentineled(self):
        errors = make_errors([bit_error(bit=1), bit_error(bit=2)])
        f = coalesce(errors)[0]
        assert f["bit_pos"] == -1


class TestBankSplitting:
    def test_rank_granularity_merges_banks(self):
        errors = make_errors([bit_error(bank=0), bit_error(bank=1)])
        faults = coalesce(errors, CoalesceOptions(split_banks=False))
        assert faults.size == 1
        assert faults["mode"][0] == FaultMode.MULTI_BANK

    def test_bank_granularity_is_default(self):
        errors = make_errors([bit_error(bank=0), bit_error(bank=1)])
        assert coalesce(errors).size == 2


class TestFaultIds:
    def test_ids_align_with_errors(self):
        errors = make_errors(
            [
                bit_error(node=2, t=0.0),
                bit_error(node=1, t=1.0),
                bit_error(node=2, t=2.0),
            ]
        )
        faults, ids = errors_with_fault_ids(errors)
        assert ids.shape == (3,)
        assert ids[0] == ids[2]
        assert ids[0] != ids[1]
        # per-fault n_errors must match the label multiplicity
        counts = np.bincount(ids, minlength=faults.size)
        np.testing.assert_array_equal(counts, faults["n_errors"])

    def test_empty(self):
        faults, ids = errors_with_fault_ids(empty_errors(0))
        assert faults.size == 0 and ids.size == 0

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            errors_with_fault_ids(np.zeros(1))


class TestDistinctCountOverflow:
    """Huge value spans must not overflow the combined unique key."""

    def _spread_addresses(self):
        # Two groups; addresses span nearly the whole uint64 range, so
        # n_groups * (max - min + 1) cannot fit in an int64 key.
        errors = make_errors(
            [
                bit_error(bank=0, address=1, t=0.0),
                bit_error(bank=0, address=(1 << 62), t=1.0),
                bit_error(bank=0, address=(1 << 62), t=2.0),
                bit_error(bank=1, address=7, t=3.0),
            ]
        )
        return errors

    def test_wide_address_span_does_not_overflow(self):
        # Regression: this raised OverflowError ("Python int too large")
        # in the combined-key path before the sort-based fallback.
        faults = coalesce(self._spread_addresses())
        assert faults.size == 2
        np.testing.assert_array_equal(np.sort(faults["n_errors"]), [1, 3])

    def test_fallback_matches_combined_key(self):
        from repro.faults.coalesce import _distinct_per_group

        rng = np.random.default_rng(0)
        gid = rng.integers(0, 5, 200)
        values = rng.integers(-3, 40, 200)
        small = _distinct_per_group(gid, values, 5)
        # Shift one value to the int64 edge to force the fallback; the
        # distinct counts must not change for untouched groups.
        wide = values.astype(np.int64)
        wide[0] = np.iinfo(np.int64).max - 1
        forced = _distinct_per_group(gid, wide, 5)
        expected = [
            len(set(wide[gid == g].tolist())) for g in range(5)
        ]
        np.testing.assert_array_equal(forced, expected)
        assert small[gid[0]] <= forced[gid[0]] + 1


@st.composite
def error_batches(draw):
    n = draw(st.integers(1, 60))
    rows = []
    for _ in range(n):
        rows.append(
            bit_error(
                node=draw(st.integers(0, 3)),
                slot=draw(st.integers(0, 15)),
                rank=draw(st.integers(0, 1)),
                bank=draw(st.integers(0, 3)),
                column=draw(st.integers(0, 4)),
                bit=draw(st.integers(0, 7)),
                t=float(draw(st.integers(0, 1000))),
            )
        )
    return make_errors(rows)


@given(error_batches())
@settings(max_examples=40, deadline=None)
def test_property_errors_conserved(errors):
    """Coalescing never loses or invents errors."""
    faults = coalesce(errors)
    assert faults["n_errors"].sum() == errors.size


@given(error_batches())
@settings(max_examples=40, deadline=None)
def test_property_group_key_unique(errors):
    """Each (node, slot, rank, bank) appears in at most one fault."""
    faults = coalesce(errors)
    keys = set(
        zip(
            faults["node"].tolist(),
            faults["slot"].tolist(),
            faults["rank"].tolist(),
            faults["bank"].tolist(),
        )
    )
    assert len(keys) == faults.size


@given(error_batches())
@settings(max_examples=40, deadline=None)
def test_property_time_span_ordered(errors):
    faults = coalesce(errors)
    assert np.all(faults["first_time"] <= faults["last_time"])


@given(error_batches())
@settings(max_examples=40, deadline=None)
def test_property_fault_ids_partition(errors):
    faults, ids = errors_with_fault_ids(errors)
    counts = np.bincount(ids, minlength=faults.size)
    np.testing.assert_array_equal(counts, faults["n_errors"])
