"""Tests for fault-mode classification."""

import numpy as np
import pytest

from repro.faults.classify import (
    classify_group_modes,
    errors_per_mode,
    mode_counts,
)
from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.faults.types import NO_BANK, NO_BIT, NO_COLUMN, FaultMode
from util import bit_error, make_errors


def classify_one(errors, **opts):
    faults = coalesce(errors, CoalesceOptions(**opts))
    assert faults.size == 1
    return FaultMode(faults["mode"][0])


class TestModesEndToEnd:
    def test_single_bit(self):
        errors = make_errors([bit_error(t=0.0), bit_error(t=1.0)])
        assert classify_one(errors) is FaultMode.SINGLE_BIT

    def test_single_word(self):
        # Same address, two different bits.
        errors = make_errors(
            [bit_error(bit=3, t=0.0), bit_error(bit=9, t=1.0)]
        )
        assert classify_one(errors) is FaultMode.SINGLE_WORD

    def test_single_column(self):
        # Same column, different addresses (different rows).
        errors = make_errors(
            [
                bit_error(column=5, address=0x1000, t=0.0),
                bit_error(column=5, address=0x2000, t=1.0),
            ]
        )
        assert classify_one(errors) is FaultMode.SINGLE_COLUMN

    def test_single_bank_without_row_info(self):
        # Multiple columns in the same bank: on Astra (no row field) this
        # is single-bank -- single-row cannot be distinguished.
        errors = make_errors(
            [
                bit_error(column=1, address=0x40, t=0.0),
                bit_error(column=2, address=0x80, t=1.0),
            ]
        )
        assert classify_one(errors) is FaultMode.SINGLE_BANK

    def test_single_row_with_row_info(self):
        errors = make_errors(
            [
                bit_error(column=1, address=0x40, row=7, t=0.0),
                bit_error(column=2, address=0x80, row=7, t=1.0),
            ]
        )
        assert classify_one(errors, row_available=True) is FaultMode.SINGLE_ROW

    def test_row_flag_without_row_data_stays_bank(self):
        # row_available=True but rows are the NO_ROW sentinel: must not
        # misclassify as single-row.
        errors = make_errors(
            [
                bit_error(column=1, address=0x40, t=0.0),
                bit_error(column=2, address=0x80, t=1.0),
            ]
        )
        assert classify_one(errors, row_available=True) is FaultMode.SINGLE_BANK

    def test_multi_bank_only_when_not_splitting(self):
        errors = make_errors([bit_error(bank=0), bit_error(bank=1)])
        assert classify_one(errors, split_banks=False) is FaultMode.MULTI_BANK

    def test_unattributed_when_payload_missing(self):
        errors = make_errors(
            [
                dict(
                    time=0.0,
                    node=3,
                    socket=0,
                    slot=2,
                    rank=0,
                    bank=NO_BANK,
                    column=NO_COLUMN,
                    bit_pos=NO_BIT,
                    address=0,
                )
            ]
        )
        assert classify_one(errors) is FaultMode.UNATTRIBUTED

    def test_mixed_groups_stay_separate(self):
        errors = make_errors(
            [
                bit_error(node=1, t=0.0),
                bit_error(node=1, t=1.0),
                bit_error(node=2, bit=1, address=0x500, t=0.0),
                bit_error(node=2, bit=2, address=0x500, t=1.0),
            ]
        )
        faults = coalesce(errors)
        by_node = {int(f["node"]): FaultMode(f["mode"]) for f in faults}
        assert by_node == {1: FaultMode.SINGLE_BIT, 2: FaultMode.SINGLE_WORD}


class TestClassifierUnit:
    def _base(self, n):
        return dict(
            uniq_bits=np.ones(n, dtype=np.int64),
            uniq_words=np.ones(n, dtype=np.int64),
            uniq_cols=np.ones(n, dtype=np.int64),
            uniq_rows=np.ones(n, dtype=np.int64),
            uniq_banks=np.ones(n, dtype=np.int64),
            bank_valid=np.ones(n, dtype=bool),
            column_valid=np.ones(n, dtype=bool),
            bit_valid=np.ones(n, dtype=bool),
            row_valid=np.zeros(n, dtype=bool),
        )

    def test_tightest_mode_wins(self):
        args = self._base(1)
        modes = classify_group_modes(**args)
        assert modes[0] == FaultMode.SINGLE_BIT

    def test_invalid_bank_overrides_everything(self):
        args = self._base(1)
        args["bank_valid"] = np.array([False])
        assert classify_group_modes(**args)[0] == FaultMode.UNATTRIBUTED

    def test_multi_bank_overrides_tight_modes(self):
        args = self._base(1)
        args["uniq_banks"] = np.array([2])
        assert classify_group_modes(**args)[0] == FaultMode.MULTI_BANK

    def test_length_mismatch_rejected(self):
        args = self._base(2)
        args["uniq_bits"] = np.ones(3, dtype=np.int64)
        with pytest.raises(ValueError):
            classify_group_modes(**args)

    def test_row_valid_length_mismatch_rejected(self):
        args = self._base(2)
        args["row_valid"] = np.zeros(3, dtype=bool)
        with pytest.raises(ValueError):
            classify_group_modes(**args)

    def test_column_invalid_falls_to_bank(self):
        args = self._base(1)
        args["uniq_bits"] = np.array([2])
        args["uniq_words"] = np.array([2])
        args["column_valid"] = np.array([False])
        assert classify_group_modes(**args)[0] == FaultMode.SINGLE_BANK


class TestAggregations:
    def test_mode_counts_and_errors(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(5)]
            + [
                bit_error(node=2, bit=1, address=0x500, t=0.0),
                bit_error(node=2, bit=2, address=0x500, t=1.0),
            ]
        )
        faults = coalesce(errors)
        counts = mode_counts(faults)
        epm = errors_per_mode(faults)
        assert counts[FaultMode.SINGLE_BIT] == 1
        assert counts[FaultMode.SINGLE_WORD] == 1
        assert epm[FaultMode.SINGLE_BIT] == 5
        assert epm[FaultMode.SINGLE_WORD] == 2
        assert epm[FaultMode.SINGLE_BANK] == 0
