"""Tests for record layouts and the FaultMode vocabulary."""

import numpy as np
import pytest

from repro.faults.types import (
    ERROR_DTYPE,
    FAULT_DTYPE,
    NO_BANK,
    NO_BIT,
    NO_COLUMN,
    NO_ROW,
    REPORTED_MODES,
    FaultMode,
    empty_errors,
    empty_faults,
    validate_errors,
)


class TestDtypes:
    def test_error_fields(self):
        assert set(ERROR_DTYPE.names) == {
            "time",
            "node",
            "socket",
            "slot",
            "rank",
            "bank",
            "row",
            "column",
            "bit_pos",
            "address",
            "syndrome",
        }

    def test_fault_fields_include_mode_and_span(self):
        for f in ("fault_id", "mode", "n_errors", "first_time", "last_time"):
            assert f in FAULT_DTYPE.names

    def test_empty_errors_sentinels(self):
        e = empty_errors(3)
        assert np.all(e["row"] == NO_ROW)
        assert np.all(e["bank"] == NO_BANK)
        assert np.all(e["column"] == NO_COLUMN)
        assert np.all(e["bit_pos"] == NO_BIT)

    def test_empty_faults_sentinels(self):
        f = empty_faults(2)
        assert np.all(f["mode"] == FaultMode.UNATTRIBUTED)
        assert np.all(f["row"] == NO_ROW)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            empty_errors(-1)
        with pytest.raises(ValueError):
            empty_faults(-1)


class TestFaultMode:
    def test_labels_match_paper(self):
        assert FaultMode.SINGLE_BIT.label == "single-bit"
        assert FaultMode.SINGLE_WORD.label == "single-word"
        assert FaultMode.SINGLE_COLUMN.label == "single-column"
        assert FaultMode.SINGLE_ROW.label == "single-row"
        assert FaultMode.SINGLE_BANK.label == "single-bank"

    def test_reported_modes_are_the_four_from_fig4(self):
        assert REPORTED_MODES == (
            FaultMode.SINGLE_BIT,
            FaultMode.SINGLE_WORD,
            FaultMode.SINGLE_COLUMN,
            FaultMode.SINGLE_BANK,
        )

    def test_modes_fit_int8(self):
        assert max(FaultMode) < 127


class TestValidation:
    def test_valid_empty(self):
        validate_errors(empty_errors(0))

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            validate_errors(np.zeros(1, dtype=np.float64))

    def test_negative_time(self):
        e = empty_errors(1)
        e["time"] = -1.0
        with pytest.raises(ValueError):
            validate_errors(e)

    def test_nan_time(self):
        e = empty_errors(1)
        e["time"] = np.nan
        with pytest.raises(ValueError):
            validate_errors(e)

    def test_bad_socket(self):
        e = empty_errors(1)
        e["socket"] = 2
        with pytest.raises(ValueError):
            validate_errors(e)

    def test_bad_slot(self):
        e = empty_errors(1)
        e["slot"] = 16
        with pytest.raises(ValueError):
            validate_errors(e)

    def test_bad_bitpos(self):
        e = empty_errors(1)
        e["bit_pos"] = 72
        with pytest.raises(ValueError):
            validate_errors(e)

    def test_sentinels_pass(self):
        e = empty_errors(2)
        e["time"] = [1.0, 2.0]
        validate_errors(e)  # sentinels are legal values
