"""Differential tests: vectorised engine vs brute-force references.

Two independent oracles (see their docstrings):

- ``repro.mitigation.reference`` -- the in-package per-event loop the
  CLI ``--check`` runs;
- ``tests/mitigation/_reference`` -- a from-scratch restatement of the
  spec, outcome tables included.

Every comparison is element-for-element on the per-event outcome
array, across codes x scrub x retirement x exclusion, so a mismatch
pinpoints the exact event and scenario that diverged.
"""

import numpy as np
import pytest

from mitigation._reference import reference_outcomes
from repro.mitigation.reference import reference_replay_events
from repro.mitigation.whatif import Scenario, replay_events
from util import bit_error, make_errors

GRID = [
    dict(code=code, scrub_interval_h=scrub, retire_threshold=retire)
    for code in ("secded", "chipkill", "rs-36-32", "rs-72-64")
    for scrub in (0.0, 6.0)
    for retire in (0, 2)
]


def _assert_all_three_agree(errors, params, seed=0):
    scenario = Scenario(**params)
    fast = replay_events(errors, scenario, seed=seed)
    slow = reference_replay_events(errors, scenario, seed=seed)
    independent = reference_outcomes(errors, seed=seed, **params)
    for name, oracle in (("package", slow), ("independent", independent)):
        diff = np.flatnonzero(fast != oracle)
        assert diff.size == 0, (
            f"{name} reference disagrees on {diff.size} events for "
            f"{scenario.label}; first at index {diff[0]}: "
            f"engine={fast[diff[0]]} oracle={oracle[diff[0]]}"
        )


def hostile_stream(seed=0, n=1500):
    """Duplicate timestamps, storm records, missing bits, hot words."""
    rng = np.random.default_rng(seed)
    times = np.round(rng.uniform(0, 90 * 86400.0, n), 0)  # many exact ties
    rows = []
    for i in range(n):
        hot = rng.random() < 0.4
        rows.append(
            bit_error(
                node=3 if hot else int(rng.integers(0, 30)),
                slot=0 if hot else int(rng.integers(0, 2)),
                rank=int(rng.integers(0, 2)),
                bank=2 if hot else int(rng.integers(-1, 8)),
                bit=int(rng.integers(-1, 72)),
                address=4096 if hot else int(rng.integers(0, 64)) * 64,
                t=float(times[i]),
            )
        )
    return make_errors(rows)


class TestSyntheticStreams:
    @pytest.mark.parametrize("params", GRID)
    def test_grid_agreement(self, params):
        _assert_all_three_agree(hostile_stream(seed=1), params, seed=9)

    def test_exclusion_composed_with_retirement(self):
        errors = hostile_stream(seed=2, n=800)
        for code in ("secded", "rs-36-32"):
            _assert_all_three_agree(
                errors,
                dict(
                    code=code,
                    scrub_interval_h=24.0,
                    retire_threshold=2,
                    exclude_budget=20,
                ),
                seed=4,
            )

    def test_many_seeds_no_drift(self):
        for seed in range(5):
            _assert_all_three_agree(
                hostile_stream(seed=seed, n=400),
                dict(code="secded", scrub_interval_h=1.0, retire_threshold=1),
                seed=seed,
            )


class TestDownsampledCampaign:
    def test_campaign_replay_agreement(self, small_campaign):
        """The real (downsampled) campaign: the engine must match both
        oracles on actual synthesised telemetry, not just unit streams."""
        errors = small_campaign.errors
        sel = np.unique(
            np.linspace(0, errors.size - 1, 2500).astype(np.int64)
        )
        sub = np.ascontiguousarray(errors[sel])
        for params in (
            dict(code="secded", scrub_interval_h=0.0, retire_threshold=0),
            dict(code="secded", scrub_interval_h=24.0, retire_threshold=2),
            dict(code="chipkill", scrub_interval_h=0.0, retire_threshold=2),
            dict(code="rs-36-32", scrub_interval_h=24.0, retire_threshold=0),
            dict(
                code="rs-72-64",
                scrub_interval_h=6.0,
                retire_threshold=2,
                exclude_budget=50,
            ),
        ):
            _assert_all_three_agree(sub, params, seed=small_campaign.seed)
