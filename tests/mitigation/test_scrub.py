"""Tests for the scrub / error-accumulation model."""

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.mitigation.scrub import (
    expected_alignment_dues,
    scrub_sensitivity,
    simulate_accumulation,
    upset_rate_from_campaign,
)
from util import bit_error, make_errors


class TestAnalytic:
    def test_zero_rate_zero_dues(self):
        assert expected_alignment_dues(0.0, 1000, 24.0, 1000.0) == 0.0

    def test_linear_in_interval_when_sparse(self):
        """In the sparse regime, doubling the scrub interval doubles
        alignment DUEs."""
        base = expected_alignment_dues(1e-9, 10**9, 24.0, 24.0 * 240)
        double = expected_alignment_dues(1e-9, 10**9, 48.0, 24.0 * 240)
        assert double == pytest.approx(2 * base, rel=0.01)

    def test_quadratic_in_rate_when_sparse(self):
        a = expected_alignment_dues(1e-9, 10**9, 24.0, 24.0 * 240)
        b = expected_alignment_dues(2e-9, 10**9, 24.0, 24.0 * 240)
        assert b == pytest.approx(4 * a, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_alignment_dues(-1.0, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            expected_alignment_dues(1.0, 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            expected_alignment_dues(1.0, 10, 0.0, 1.0)


class TestMonteCarlo:
    def test_matches_analytic(self):
        rate, words, interval, duration = 0.002, 20_000, 10.0, 500.0
        expected = expected_alignment_dues(rate, words, interval, duration)
        simulated = simulate_accumulation(rate, words, interval, duration, seed=1)
        assert simulated == pytest.approx(expected, rel=0.15)

    def test_zero_rate(self):
        assert simulate_accumulation(0.0, 100, 1.0, 10.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_accumulation(1.0, 10, 0.0, 1.0)


class TestSensitivity:
    def test_monotone_in_interval(self):
        points = scrub_sensitivity(1e-10, 10**10, 24.0 * 240)
        dues = [p.expected_dues for p in points]
        assert dues == sorted(dues)

    def test_shapes(self):
        points = scrub_sensitivity(1e-10, 10**10, 24.0 * 240)
        assert len(points) == 5
        assert points[0].scrub_interval_h == 1.0


class TestCampaignEstimate:
    def test_transient_rate(self):
        errors = make_errors(
            [bit_error(node=n, t=100.0) for n in range(10)]  # 10 transients
            + [bit_error(node=99, t=float(t)) for t in range(50)]  # 1 storm
        )
        faults = coalesce(errors)
        rate = upset_rate_from_campaign(faults, (0.0, 3600.0), n_words=1000)
        assert rate == pytest.approx(10 / 1000.0)

    def test_validation(self):
        faults = coalesce(make_errors([bit_error(t=1.0)]))
        with pytest.raises(ValueError):
            upset_rate_from_campaign(faults, (0.0, 1.0), 0)
        with pytest.raises(ValueError):
            upset_rate_from_campaign(faults, (1.0, 0.0), 10)

    def test_astra_scale_estimate(self, small_campaign):
        """End-to-end: estimate the upset rate from the campaign and the
        resulting alignment-DUE expectation for Astra-sized memory."""
        c = small_campaign
        # 332 TB of protected memory in 8-byte words.
        n_words = int(332e12 // 8)
        rate = upset_rate_from_campaign(
            c.faults(), c.calibration.error_window, n_words
        )
        dues = expected_alignment_dues(
            rate, n_words, scrub_interval_h=24.0, duration_h=237 * 24.0
        )
        # Alignment DUEs are vanishingly rare next to the ~24 observed
        # DUEs -- scrubbing works; device faults, not upset alignment,
        # dominate the DUE budget.
        assert dues < 1.0
