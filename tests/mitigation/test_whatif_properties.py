"""Property-based tests for the what-if engine.

The streams here are deliberately hostile: interleaved nodes, duplicate
timestamps, unattributed records (``bank < 0``), missing bit positions,
and addresses drawn from a tiny pool so words collide and accumulation
actually happens.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mitigation.codes import STRENGTH_ORDER
from repro.mitigation.whatif import (
    AVOIDED,
    CORRECTED,
    DUE,
    SILENT,
    Scenario,
    replay_campaign,
    replay_events,
)
from util import bit_error, make_errors


@st.composite
def whatif_streams(draw):
    n = draw(st.integers(2, 90))
    rows = []
    t = 0.0
    for _ in range(n):
        # Sometimes repeat the exact timestamp (batch-reported CEs).
        if not rows or draw(st.booleans()):
            t += draw(st.floats(0.1, 40 * 3600.0))
        rows.append(
            bit_error(
                node=draw(st.integers(0, 3)),
                slot=draw(st.integers(0, 1)),
                bank=draw(st.sampled_from([-1, 0, 1])),
                bit=draw(st.sampled_from([-1, 0, 3, 8, 15, 40, 71])),
                address=draw(st.sampled_from([0x1000, 0x1040, 0x9000])),
                t=t,
            )
        )
    return make_errors(rows)


scenario_params = st.fixed_dictionaries(
    {
        "scrub_interval_h": st.sampled_from([0.0, 1.0, 24.0]),
        "retire_threshold": st.sampled_from([0, 1, 2]),
        "exclude_budget": st.sampled_from([0, 3]),
    }
)


@given(whatif_streams(), scenario_params)
@settings(max_examples=30, deadline=None)
def test_property_conservation(errors, params):
    """avoided + corrected + due + silent == injected, every scenario."""
    for code in STRENGTH_ORDER:
        (r,) = replay_campaign(errors, [Scenario(code=code, **params)])
        assert r.avoided + r.corrected + r.due + r.silent == r.injected
        assert r.injected == errors.size


@given(whatif_streams(), scenario_params)
@settings(max_examples=30, deadline=None)
def test_property_stronger_code_never_worse(errors, params):
    """On one replay, each step up the strength chain never leaves
    more events uncorrected and never corrects fewer."""
    reports = [
        replay_campaign(errors, [Scenario(code=c, **params)])[0]
        for c in STRENGTH_ORDER
    ]
    for weak, strong in zip(reports, reports[1:]):
        assert strong.uncorrected <= weak.uncorrected
        assert strong.corrected >= weak.corrected
    # The silent-free symbol chain is DUE-monotone outright (SEC-DED is
    # excluded: its silent events re-surface as chipkill DUEs).
    symbol = reports[1:]
    for weak, strong in zip(symbol, symbol[1:]):
        assert strong.due <= weak.due


@given(
    whatif_streams(),
    st.sampled_from(STRENGTH_ORDER),
    st.sampled_from([0, 2]),
)
@settings(max_examples=30, deadline=None)
def test_property_shorter_scrub_never_worse(errors, code, retire):
    """Along a nested interval chain (each dividing the next, with
    'no scrub' as the coarsest), a shorter scrub never increases the
    uncorrected count -- finer aligned intervals only shrink each
    event's accumulated footprint."""
    chain = [1.0, 6.0, 24.0, 168.0, 0.0]
    reports = [
        replay_campaign(
            errors,
            [Scenario(code=code, scrub_interval_h=h, retire_threshold=retire)],
        )[0]
        for h in chain
    ]
    for fine, coarse in zip(reports, reports[1:]):
        assert fine.uncorrected <= coarse.uncorrected
        if code != "secded":
            # Symbol codes are silent-free, so DUE monotonicity too.
            assert fine.due <= coarse.due


@given(whatif_streams(), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_property_seed_determinism_across_jobs(errors, seed):
    """jobs=4 is byte-identical to serial for the same (errors, seed)."""
    grid = [
        Scenario(code=c, scrub_interval_h=h, retire_threshold=r)
        for c in ("secded", "rs-36-32")
        for h in (0.0, 24.0)
        for r in (0, 1)
    ]
    serial = replay_campaign(errors, grid, seed=seed, jobs=0)
    parallel = replay_campaign(errors, grid, seed=seed, jobs=4)
    assert serial == parallel


@given(whatif_streams(), scenario_params)
@settings(max_examples=30, deadline=None)
def test_property_outcomes_partition_the_stream(errors, params):
    """Per-event outcomes are a partition: every event gets exactly one
    outcome, and policy-avoided events are exactly the AVOIDED ones
    regardless of code."""
    outs = [
        replay_events(errors, Scenario(code=c, **params))
        for c in STRENGTH_ORDER
    ]
    for out in outs:
        assert out.shape == (errors.size,)
        assert np.isin(out, [AVOIDED, CORRECTED, DUE, SILENT]).all()
    # The avoided set is a pure policy decision, shared by every code.
    base = outs[0] == AVOIDED
    for out in outs[1:]:
        np.testing.assert_array_equal(out == AVOIDED, base)
