"""Unit tests for the counterfactual what-if engine semantics."""

import numpy as np
import pytest

from repro.faults.types import empty_errors
from repro.mitigation.codes import (
    CODES,
    CORRECTED,
    DUE,
    SILENT,
    STRENGTH_ORDER,
    classify_event,
    get_code,
)
from repro.mitigation.whatif import (
    AVOIDED,
    Scenario,
    effective_bits,
    render_table,
    replay_campaign,
    replay_events,
    scenario_grid,
)
from util import bit_error, make_errors


class TestCodeModels:
    def test_registry_vocabulary(self):
        assert set(CODES) == {"secded", "chipkill", "rs-36-32", "rs-72-64"}
        assert STRENGTH_ORDER == ("secded", "chipkill", "rs-36-32", "rs-72-64")

    def test_unknown_code_friendly_error(self):
        with pytest.raises(ValueError, match="known codes"):
            get_code("parity")

    def test_secded_outcome_table(self):
        # 1 bit corrected; even-weight detected; odd >= 3 silent.
        assert classify_event("secded", 1, 1) == CORRECTED
        assert classify_event("secded", 2, 1) == DUE
        assert classify_event("secded", 2, 2) == DUE
        assert classify_event("secded", 3, 2) == SILENT
        assert classify_event("secded", 4, 3) == DUE
        assert classify_event("secded", 5, 4) == SILENT

    def test_symbol_outcome_tables(self):
        # Symbol codes care only about distinct devices, and never
        # miscorrect (no SILENT row at all).
        assert classify_event("chipkill", 8, 1) == CORRECTED
        assert classify_event("chipkill", 2, 2) == DUE
        assert classify_event("rs-36-32", 30, 4) == CORRECTED
        assert classify_event("rs-36-32", 5, 5) == DUE
        assert classify_event("rs-72-64", 60, 8) == CORRECTED
        assert classify_event("rs-72-64", 9, 9) == DUE

    def test_silent_free_flags(self):
        assert not CODES["secded"].silent_free
        assert all(CODES[c].silent_free for c in CODES if c != "secded")


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(code="nope")
        with pytest.raises(ValueError):
            Scenario(scrub_interval_h=-1.0)
        with pytest.raises(ValueError):
            Scenario(retire_threshold=-1)
        with pytest.raises(ValueError):
            Scenario(exclude_budget=-1)
        with pytest.raises(ValueError):
            Scenario(exclude_window_s=0.0)

    def test_grid_shape_and_policy_contiguity(self):
        grid = scenario_grid(
            codes=("secded", "chipkill"),
            scrub_hours=(0.0, 24.0),
            retire_thresholds=(0, 2),
        )
        assert len(grid) == 8
        # Scenarios sharing a policy key are adjacent (one prep each).
        keys = [s.policy_key for s in grid]
        assert keys == sorted(keys, key=keys.index)
        assert len(set(keys)) == 2

    def test_label_readable(self):
        s = Scenario(code="chipkill", scrub_interval_h=24.0, retire_threshold=2)
        assert "chipkill" in s.label and "24h" in s.label


class TestReplayEvents:
    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            replay_events(np.zeros(3), Scenario())

    def test_empty_stream(self):
        out = replay_events(empty_errors(0), Scenario())
        assert out.size == 0

    def test_single_bit_corrected_by_every_code(self):
        errors = make_errors([bit_error(bit=3, t=1.0)])
        for code in CODES:
            assert replay_events(errors, Scenario(code=code)).tolist() == [
                CORRECTED
            ]

    def test_same_device_accumulation(self):
        # Two bits of one device in one word: SEC-DED DUEs on the
        # second event, the symbol codes ride through.
        errors = make_errors(
            [bit_error(bit=3, t=1.0), bit_error(bit=5, t=2.0)]
        )
        assert replay_events(errors, Scenario(code="secded")).tolist() == [
            CORRECTED,
            DUE,
        ]
        for code in ("chipkill", "rs-36-32", "rs-72-64"):
            assert replay_events(errors, Scenario(code=code)).tolist() == [
                CORRECTED,
                CORRECTED,
            ]

    def test_secded_odd_weight_goes_silent(self):
        errors = make_errors(
            [bit_error(bit=b, t=float(i)) for i, b in enumerate((3, 5, 6))]
        )
        assert replay_events(errors, Scenario(code="secded")).tolist() == [
            CORRECTED,
            DUE,
            SILENT,
        ]

    def test_cross_device_defeats_chipkill_not_rs(self):
        errors = make_errors(
            [bit_error(bit=3, t=1.0), bit_error(bit=13, t=2.0)]
        )
        assert replay_events(errors, Scenario(code="chipkill")).tolist() == [
            CORRECTED,
            DUE,
        ]
        assert replay_events(errors, Scenario(code="rs-36-32")).tolist() == [
            CORRECTED,
            CORRECTED,
        ]

    def test_rs72_breaks_at_nine_devices(self):
        # One bit in every x8 device of the 72-bit word: the ninth
        # distinct device exceeds even RS(72,64)'s 8-erasure budget.
        errors = make_errors(
            [bit_error(bit=8 * d, t=float(d)) for d in range(9)]
        )
        out = replay_events(errors, Scenario(code="rs-72-64"))
        assert out[:8].tolist() == [CORRECTED] * 8
        assert out[8] == DUE

    def test_scrub_clears_accumulation(self):
        # Same word, same bit pair, 25 hours apart: a 24h scrub puts
        # them in different intervals, so each arrives alone.
        errors = make_errors(
            [bit_error(bit=3, t=0.0), bit_error(bit=5, t=25 * 3600.0)]
        )
        no_scrub = replay_events(errors, Scenario(code="secded"))
        scrubbed = replay_events(
            errors, Scenario(code="secded", scrub_interval_h=24.0)
        )
        assert no_scrub.tolist() == [CORRECTED, DUE]
        assert scrubbed.tolist() == [CORRECTED, CORRECTED]

    def test_scrub_intervals_are_aligned_not_relative(self):
        # Both events inside one aligned 24h interval accumulate even
        # though they are 20h apart; crossing the boundary resets.
        errors = make_errors(
            [bit_error(bit=3, t=1 * 3600.0), bit_error(bit=5, t=21 * 3600.0)]
        )
        out = replay_events(errors, Scenario(code="secded", scrub_interval_h=24.0))
        assert out.tolist() == [CORRECTED, DUE]

    def test_retirement_avoids_post_threshold_events(self):
        errors = make_errors(
            [bit_error(bit=3, t=float(t)) for t in range(4)]
        )
        out = replay_events(
            errors, Scenario(code="secded", retire_threshold=2)
        )
        # Events 0 and 1 reach the decoder; 2 and 3 hit a retired page.
        assert out[0] == CORRECTED
        assert out[1] != AVOIDED
        assert out[2] == AVOIDED and out[3] == AVOIDED

    def test_exclusion_avoids_strictly_after_trigger(self):
        errors = make_errors(
            [bit_error(node=1, t=t) for t in (0.0, 1.0, 1.0, 2.0)]
        )
        out = replay_events(
            errors, Scenario(code="secded", exclude_budget=2)
        )
        # Trigger at t=1.0: the simultaneous t=1.0 events are not
        # avoidable, only the strictly later one is.
        assert out[1] != AVOIDED and out[2] != AVOIDED
        assert out[3] == AVOIDED

    def test_unattributed_events_never_accumulate(self):
        rows = [bit_error(bit=3, t=1.0), bit_error(bit=5, t=2.0)]
        errors = make_errors(rows)
        errors["bank"] = -1
        out = replay_events(errors, Scenario(code="secded"))
        assert out.tolist() == [CORRECTED, CORRECTED]

    def test_missing_bit_pos_draw_is_seed_deterministic(self):
        rows = [bit_error(t=float(t)) for t in range(50)]
        errors = make_errors(rows)
        errors["bit_pos"] = -1
        a = effective_bits(errors, seed=5)
        b = effective_bits(errors, seed=5)
        np.testing.assert_array_equal(a, b)
        assert np.all((a >= 0) & (a < 72))
        # Recorded positions are never overridden by the draw.
        errors["bit_pos"][7] = 33
        assert effective_bits(errors, seed=5)[7] == 33


class TestReplayCampaign:
    def _stream(self):
        rows = []
        for t in range(60):
            rows.append(bit_error(node=t % 3, bit=(3 * t) % 72, t=float(t)))
        return make_errors(rows)

    def test_conservation_and_fields(self):
        errors = self._stream()
        grid = scenario_grid(scrub_hours=(0.0,), retire_thresholds=(0, 1))
        reports = replay_campaign(errors, grid, seed=1)
        assert len(reports) == len(grid)
        for r in reports:
            assert r.injected == errors.size
            assert (
                r.avoided + r.corrected + r.due + r.silent == r.injected
            )
            assert r.uncorrected == r.due + r.silent
            assert 0 <= r.dimms_replaced <= r.dimms_seen
            d = r.to_dict()
            assert d["label"] == r.scenario.label
            assert d["uncorrected"] == r.uncorrected

    def test_matches_replay_events(self):
        errors = self._stream()
        sc = Scenario(code="secded", scrub_interval_h=6.0, retire_threshold=1)
        out = replay_events(errors, sc, seed=3)
        (report,) = replay_campaign(errors, [sc], seed=3)
        assert report.avoided == int((out == AVOIDED).sum())
        assert report.corrected == int((out == CORRECTED).sum())
        assert report.due == int((out == DUE).sum())
        assert report.silent == int((out == SILENT).sum())

    def test_empty_inputs(self):
        assert replay_campaign(empty_errors(0), [Scenario()])[0].injected == 0
        assert replay_campaign(self._stream(), []) == []

    def test_render_table(self):
        reports = replay_campaign(self._stream(), scenario_grid())
        table = render_table(reports)
        assert "secded" in table and "rs-72-64" in table
        assert len(table.splitlines()) == len(reports) + 2
