"""Independent brute-force reference for the what-if engine tests.

Unlike :mod:`repro.mitigation.reference` (the in-package oracle, which
reuses the policy mask helpers and the scalar code tables), this module
restates the *entire* DESIGN.md section 13 semantics from scratch --
outcome tables included, as literal if/else over the spec's words --
with nothing but dicts, sets, and per-event loops.  If the engine, the
package reference, and this file all agree, a shared bug would have to
be written three times independently.
"""

from __future__ import annotations

import numpy as np

#: Symbol-correction capacity per code; SEC-DED is handled bitwise.
_SYMBOL_CAPACITY = {"chipkill": 1, "rs-36-32": 4, "rs-72-64": 8}

AVOIDED, CORRECTED, DUE, SILENT = 0, 1, 2, 3


def outcome(code: str, n_bits: int, n_devs: int) -> int:
    """The outcome tables, straight from the spec text."""
    if code == "secded":
        if n_bits == 1:
            return CORRECTED
        if n_bits % 2 == 0:
            return DUE  # even-weight errors can never alias one column
        return SILENT  # odd-weight >= 3 miscorrects
    cap = _SYMBOL_CAPACITY[code]
    return CORRECTED if n_devs <= cap else DUE


def _effective_bits(errors: np.ndarray, seed: int) -> list[int]:
    rng = np.random.default_rng(int(seed))
    rand = rng.integers(0, 72, errors.size)
    return [
        int(b) if b >= 0 else int(r)
        for b, r in zip(errors["bit_pos"], rand)
    ]


def _retirement_avoided(errors: np.ndarray, threshold: int, page_bytes: int = 4096):
    """Pages retire at their threshold-th CE; later CEs are avoided."""
    shift = page_bytes.bit_length() - 1
    order = sorted(range(errors.size), key=lambda i: (errors["time"][i], i))
    counts: dict[tuple, int] = {}
    avoided = set()
    for i in order:
        e = errors[i]
        if e["bank"] < 0:
            continue  # unattributable: no page to retire
        key = (int(e["node"]), int(e["address"]) >> shift)
        seen = counts.get(key, 0)
        if seen >= threshold:
            avoided.add(i)
        counts[key] = seen + 1
    return avoided


def _exclusion_avoided(
    errors: np.ndarray, budget: int, window_s: float
) -> set:
    """Strictly-after-trigger exclusion, sliding window per node."""
    by_node: dict[int, list[tuple[float, int]]] = {}
    for i in range(errors.size):
        by_node.setdefault(int(errors["node"][i]), []).append(
            (float(errors["time"][i]), i)
        )
    avoided = set()
    for events in by_node.values():
        events.sort()
        trigger_t = None
        for j in range(budget - 1, len(events)):
            if events[j][0] - events[j - budget + 1][0] <= window_s:
                trigger_t = events[j][0]
                break
        if trigger_t is None:
            continue
        for t, i in events:
            if t > trigger_t:
                avoided.add(i)
    return avoided


def reference_outcomes(
    errors: np.ndarray,
    code: str,
    scrub_interval_h: float = 0.0,
    retire_threshold: int = 0,
    exclude_budget: int = 0,
    exclude_window_s: float = 7 * 86400.0,
    seed: int = 0,
) -> np.ndarray:
    """Per-event outcomes in stream order, spelled out event by event."""
    n = int(errors.size)
    out = np.full(n, AVOIDED, dtype=np.int8)
    bits = _effective_bits(errors, seed)

    avoided = set()
    if retire_threshold:
        avoided |= _retirement_avoided(errors, retire_threshold)
    if exclude_budget:
        avoided |= _exclusion_avoided(errors, exclude_budget, exclude_window_s)

    scrub_s = scrub_interval_h * 3600.0
    seen_bits: dict[tuple, set] = {}
    seen_devs: dict[tuple, set] = {}
    for i in sorted(range(n), key=lambda i: (errors["time"][i], i)):
        if i in avoided:
            continue
        e = errors[i]
        if e["bank"] >= 0:
            word = (
                int(e["node"]),
                int(e["slot"]),
                int(e["rank"]),
                int(e["bank"]),
                int(e["address"]),
            )
        else:
            word = ("unattributed", i)
        interval = int(float(e["time"]) // scrub_s) if scrub_s else 0
        key = (word, interval)
        bset = seen_bits.setdefault(key, set())
        dset = seen_devs.setdefault(key, set())
        bset.add(bits[i])
        dset.add(bits[i] // 8)
        out[i] = outcome(code, len(bset), len(dset))
    return out
