"""Tests for the exclude-list simulator."""

import numpy as np
import pytest

from repro.faults.types import empty_errors
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    exclude_avoided_mask,
    simulate_exclude_list,
)
from util import bit_error, make_errors


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExcludeListPolicy(ce_budget=0)
        with pytest.raises(ValueError):
            ExcludeListPolicy(window_s=0)


class TestSimulation:
    def test_storm_node_excluded(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(100)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=1000.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 90

    def test_slow_node_not_excluded(self):
        # 100 errors spread over far more than the window per budget.
        errors = make_errors(
            [bit_error(node=1, t=t * 200.0) for t in range(100)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=1000.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 0
        assert report.errors_avoided == 0

    def test_nodes_independent(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(20)]
            + [bit_error(node=2, t=float(t)) for t in range(5)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=100.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 10

    def test_node_seconds_lost(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(10)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=100.0)
        report = simulate_exclude_list(errors, policy, horizon=1000.0)
        assert report.nodes_excluded == 1
        assert report.node_seconds_lost == pytest.approx(1000.0 - 9.0)

    def test_empty(self):
        report = simulate_exclude_list(empty_errors(0))
        assert report.total_errors == 0

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            simulate_exclude_list(np.zeros(2))


class TestUnsortedAndDuplicateTimestamps:
    """Regression battery for resort_by_time-shaped streams.

    Repair-policy ingest (:func:`repro.logs.ingest.resort_by_time`)
    re-sorts records by time *only*, so the simulator's normal diet is
    node-interleaved order with batch-reported duplicate timestamps.
    The bug pinned here: errors sharing the trigger's exact timestamp
    were counted as avoided, although they land at the same instant
    the exclusion takes effect and cannot be prevented by it.
    """

    def test_trigger_timestamp_duplicates_not_avoided(self):
        # Budget 3 reached at the first t=2.0 record; the other two
        # t=2.0 records are simultaneous with the exclusion, so only
        # the t=5.0 record is avoidable.
        errors = make_errors(
            [bit_error(node=1, t=t) for t in (1.0, 2.0, 2.0, 2.0, 5.0)]
        )
        policy = ExcludeListPolicy(ce_budget=3, window_s=100.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 1  # was 2 before the fix

    def test_fully_simultaneous_burst_nothing_avoidable(self):
        # Every record at the same instant: the exclusion triggers,
        # but there is nothing after it to avoid.
        errors = make_errors([bit_error(node=4, t=7.0) for _ in range(20)])
        policy = ExcludeListPolicy(ce_budget=5, window_s=10.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 0  # was 15 before the fix

    def test_permutation_invariant(self):
        rng = np.random.default_rng(3)
        rows = [
            bit_error(node=int(rng.integers(0, 3)), t=float(rng.integers(0, 40)))
            for _ in range(120)
        ]
        errors = make_errors(rows)
        shuffled = errors[rng.permutation(errors.size)]
        policy = ExcludeListPolicy(ce_budget=10, window_s=25.0)
        a = simulate_exclude_list(errors, policy)
        b = simulate_exclude_list(shuffled, policy)
        assert (a.errors_avoided, a.nodes_excluded, a.node_seconds_lost) == (
            b.errors_avoided,
            b.nodes_excluded,
            b.node_seconds_lost,
        )

    def test_mask_aligned_to_original_order(self):
        # Interleaved nodes, unsorted times: each record's mask entry
        # must reflect its own node's trigger, in the caller's order.
        rows = [
            bit_error(node=1, t=30.0),
            bit_error(node=2, t=1.0),
            bit_error(node=1, t=10.0),
            bit_error(node=1, t=10.0),
            bit_error(node=2, t=2.0),
            bit_error(node=1, t=20.0),
        ]
        errors = make_errors(rows)
        policy = ExcludeListPolicy(ce_budget=2, window_s=100.0)
        mask, nodes, _lost = exclude_avoided_mask(errors, policy)
        # node 1 triggers at the second t=10.0 record: t=20 and t=30
        # avoided; node 2 triggers at t=2.0: nothing after it.
        assert nodes == 2
        assert mask.tolist() == [True, False, False, False, False, True]

    def test_budget_monotone_with_duplicates(self):
        times = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 9.0, 9.0]
        errors = make_errors([bit_error(node=0, t=t) for t in times])
        prev = None
        for budget in range(1, 8):
            report = simulate_exclude_list(
                errors, ExcludeListPolicy(ce_budget=budget, window_s=50.0)
            )
            if prev is not None:
                assert report.errors_avoided <= prev
            prev = report.errors_avoided


class TestCampaignLevel:
    def test_excluding_few_nodes_absorbs_most_errors(self, small_campaign):
        """Figure 5b's implication: a small exclude list captures the
        bulk of the CE volume."""
        policy = ExcludeListPolicy(ce_budget=500, window_s=30 * 86400.0)
        report = simulate_exclude_list(small_campaign.errors, policy)
        assert 0 < report.nodes_excluded < 60
        assert report.avoided_fraction > 0.5
