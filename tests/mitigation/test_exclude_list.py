"""Tests for the exclude-list simulator."""

import numpy as np
import pytest

from repro.faults.types import empty_errors
from repro.mitigation.exclude_list import (
    ExcludeListPolicy,
    simulate_exclude_list,
)
from util import bit_error, make_errors


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExcludeListPolicy(ce_budget=0)
        with pytest.raises(ValueError):
            ExcludeListPolicy(window_s=0)


class TestSimulation:
    def test_storm_node_excluded(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(100)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=1000.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 90

    def test_slow_node_not_excluded(self):
        # 100 errors spread over far more than the window per budget.
        errors = make_errors(
            [bit_error(node=1, t=t * 200.0) for t in range(100)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=1000.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 0
        assert report.errors_avoided == 0

    def test_nodes_independent(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(20)]
            + [bit_error(node=2, t=float(t)) for t in range(5)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=100.0)
        report = simulate_exclude_list(errors, policy)
        assert report.nodes_excluded == 1
        assert report.errors_avoided == 10

    def test_node_seconds_lost(self):
        errors = make_errors(
            [bit_error(node=1, t=float(t)) for t in range(10)]
        )
        policy = ExcludeListPolicy(ce_budget=10, window_s=100.0)
        report = simulate_exclude_list(errors, policy, horizon=1000.0)
        assert report.nodes_excluded == 1
        assert report.node_seconds_lost == pytest.approx(1000.0 - 9.0)

    def test_empty(self):
        report = simulate_exclude_list(empty_errors(0))
        assert report.total_errors == 0

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            simulate_exclude_list(np.zeros(2))


class TestCampaignLevel:
    def test_excluding_few_nodes_absorbs_most_errors(self, small_campaign):
        """Figure 5b's implication: a small exclude list captures the
        bulk of the CE volume."""
        policy = ExcludeListPolicy(ce_budget=500, window_s=30 * 86400.0)
        report = simulate_exclude_list(small_campaign.errors, policy)
        assert 0 < report.nodes_excluded < 60
        assert report.avoided_fraction > 0.5
