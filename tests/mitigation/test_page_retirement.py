"""Tests for the page-retirement simulator."""

import numpy as np
import pytest

from repro.faults.types import empty_errors
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    simulate_page_retirement,
)
from util import bit_error, make_errors


class TestPolicy:
    def test_defaults(self):
        p = PageRetirementPolicy()
        assert p.threshold == 2 and p.page_bytes == 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            PageRetirementPolicy(threshold=0)
        with pytest.raises(ValueError):
            PageRetirementPolicy(page_bytes=1000)


class TestSimulation:
    def test_single_bit_storm_absorbed(self):
        """A stuck bit producing 100 CEs: all but threshold-1 avoided."""
        errors = make_errors(
            [bit_error(node=1, address=0x5000, t=float(t)) for t in range(100)]
        )
        report = simulate_page_retirement(errors, PageRetirementPolicy(threshold=2))
        assert report.pages_retired == 1
        assert report.errors_avoided == 98
        assert report.avoided_fraction == pytest.approx(0.98)
        assert report.retired_bytes == 4096

    def test_threshold_one_avoids_all_but_first(self):
        errors = make_errors(
            [bit_error(node=1, address=0x5000, t=float(t)) for t in range(10)]
        )
        report = simulate_page_retirement(errors, PageRetirementPolicy(threshold=1))
        assert report.errors_avoided == 9

    def test_below_threshold_not_retired(self):
        errors = make_errors([bit_error(node=1, address=0x5000, t=0.0)])
        report = simulate_page_retirement(errors, PageRetirementPolicy(threshold=2))
        assert report.pages_retired == 0
        assert report.errors_avoided == 0

    def test_distinct_pages_independent(self):
        errors = make_errors(
            [bit_error(node=1, address=0x5000, t=float(t)) for t in range(5)]
            + [bit_error(node=1, address=0x90000, t=float(t)) for t in range(5)]
        )
        report = simulate_page_retirement(errors)
        assert report.pages_retired == 2
        assert report.errors_avoided == 6  # (5-2) per page

    def test_same_page_different_nodes_independent(self):
        errors = make_errors(
            [bit_error(node=1, address=0x5000, t=0.0),
             bit_error(node=2, address=0x5000, t=1.0)]
        )
        report = simulate_page_retirement(errors, PageRetirementPolicy(threshold=2))
        assert report.pages_retired == 0

    def test_storm_records_never_avoided(self):
        errors = make_errors(
            [
                dict(time=float(t), node=1, socket=0, slot=0, rank=0,
                     bank=-1, column=-1, bit_pos=-1, address=0)
                for t in range(50)
            ]
        )
        report = simulate_page_retirement(errors)
        assert report.errors_avoided == 0
        assert report.total_errors == 50

    def test_budget_limits_retirements(self):
        rows = []
        for page in range(5):
            rows += [
                bit_error(node=1, address=0x10000 * (page + 1), t=float(page * 10 + t))
                for t in range(10)
            ]
        policy = PageRetirementPolicy(threshold=2, max_pages_per_node=2)
        report = simulate_page_retirement(make_errors(rows), policy)
        assert report.pages_retired == 2
        assert report.errors_avoided == 16

    def test_empty(self):
        report = simulate_page_retirement(empty_errors(0))
        assert report.total_errors == 0 and report.avoided_fraction == 0.0

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            simulate_page_retirement(np.zeros(3))


class TestCampaignLevel:
    def test_small_footprint_faults_mostly_absorbed(self, small_campaign):
        """The paper's argument: page retirement absorbs most of the
        attributable error volume at tiny capacity cost."""
        report = simulate_page_retirement(small_campaign.errors)
        attributable = int((small_campaign.errors["bank"] >= 0).sum())
        assert report.errors_avoided > 0.8 * (attributable - report.pages_retired)
        # Capacity cost is microscopic next to 128 GiB per node.
        assert report.retired_bytes < 0.001 * 128 * 2**30
