"""Property-based tests for the mitigation simulators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mitigation.exclude_list import ExcludeListPolicy, simulate_exclude_list
from repro.mitigation.page_retirement import (
    PageRetirementPolicy,
    simulate_page_retirement,
)
from util import bit_error, make_errors


@st.composite
def error_streams(draw):
    n = draw(st.integers(2, 120))
    rows = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.1, 5000.0))
        rows.append(
            bit_error(
                node=draw(st.integers(0, 4)),
                slot=draw(st.integers(0, 3)),
                bank=draw(st.integers(0, 3)),
                column=draw(st.integers(0, 3)),
                address=draw(st.sampled_from([0x1000, 0x2000, 0x90000, 0xA0000])),
                t=t,
            )
        )
    return make_errors(rows)


@given(error_streams(), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_property_retirement_monotone_in_threshold(errors, threshold):
    """A lower threshold never avoids fewer errors."""
    low = simulate_page_retirement(errors, PageRetirementPolicy(threshold=threshold))
    high = simulate_page_retirement(
        errors, PageRetirementPolicy(threshold=threshold + 1)
    )
    assert low.errors_avoided >= high.errors_avoided
    assert low.pages_retired >= high.pages_retired


@given(error_streams())
@settings(max_examples=30, deadline=None)
def test_property_retirement_accounting(errors):
    report = simulate_page_retirement(errors)
    assert 0 <= report.errors_avoided <= report.total_errors
    assert report.retired_bytes == report.pages_retired * report.policy.page_bytes
    assert 0.0 <= report.avoided_fraction <= 1.0


@given(error_streams(), st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_property_exclude_monotone_in_budget(errors, budget):
    """A smaller CE budget never avoids fewer errors."""
    tight = simulate_exclude_list(
        errors, ExcludeListPolicy(ce_budget=budget, window_s=1e9)
    )
    loose = simulate_exclude_list(
        errors, ExcludeListPolicy(ce_budget=budget + 5, window_s=1e9)
    )
    assert tight.errors_avoided >= loose.errors_avoided
    assert tight.nodes_excluded >= loose.nodes_excluded


@given(error_streams())
@settings(max_examples=30, deadline=None)
def test_property_exclude_accounting(errors):
    report = simulate_exclude_list(errors)
    assert 0 <= report.errors_avoided <= report.total_errors
    assert report.node_seconds_lost >= 0.0
