"""Fleet layout and manifest round-trip tests."""

import json

import pytest

from repro.fleet import (
    Fleet,
    FleetFormatError,
    FleetSpec,
    MANIFEST_NAME,
    synth_fleet,
)
from repro.machine.topology import AstraTopology


class TestFleetSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(n_clusters=0)
        with pytest.raises(ValueError):
            FleetSpec(n_clusters=2, scale=0.0)

    def test_cluster_names_pad_and_sort(self):
        spec = FleetSpec(n_clusters=120)
        names = [spec.cluster_name(i) for i in (0, 5, 99, 119)]
        assert names == [
            "cluster-000", "cluster-005", "cluster-099", "cluster-119",
        ]
        assert sorted(names) == names
        assert FleetSpec(n_clusters=2).cluster_name(1) == "cluster-01"

    def test_node_offsets_are_rack_major_contiguous(self):
        spec = FleetSpec(n_clusters=3)
        per = spec.base_topology.n_nodes
        assert [spec.node_offset(i) for i in range(3)] == [0, per, 2 * per]
        fleet_topo = spec.fleet_topology()
        assert fleet_topo.n_racks == 3 * spec.base_topology.n_racks
        assert fleet_topo.n_nodes == 3 * per

    def test_cluster_seeds_distinct_and_deterministic(self):
        spec = FleetSpec(n_clusters=8, seed=42)
        seeds = [spec.cluster_seed(i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [FleetSpec(n_clusters=8, seed=42).cluster_seed(i)
                         for i in range(8)]

    def test_index_bounds(self):
        spec = FleetSpec(n_clusters=2)
        with pytest.raises(IndexError):
            spec.cluster_name(2)
        with pytest.raises(IndexError):
            spec.node_offset(-1)


class TestManifest:
    def test_roundtrip(self, tmp_path):
        spec = FleetSpec(n_clusters=3, seed=9, scale=0.25)
        Fleet(spec=spec, directory=tmp_path, n_errors=[1, 2, 3]).save()
        loaded = Fleet.load(tmp_path)
        assert loaded.spec == spec
        assert loaded.n_errors == [1, 2, 3]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FleetFormatError, match="fleet.json missing"):
            Fleet.load(tmp_path)

    def test_garbage_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(FleetFormatError, match="unreadable"):
            Fleet.load(tmp_path)

    def test_wrong_kind_and_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"kind": "other"}))
        with pytest.raises(FleetFormatError, match="not an astra-memrepro"):
            Fleet.load(tmp_path)
        doc = Fleet(
            spec=FleetSpec(n_clusters=1), directory=tmp_path
        ).to_dict()
        doc["schema_version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(FleetFormatError, match="schema_version"):
            Fleet.load(tmp_path)

    def test_custom_topology_survives_roundtrip(self, tmp_path):
        spec = FleetSpec(
            n_clusters=2, base_topology=AstraTopology(n_racks=6)
        )
        Fleet(spec=spec, directory=tmp_path).save()
        assert Fleet.load(tmp_path).spec.base_topology.n_racks == 6


class TestSynth:
    def test_synth_writes_valid_clusters_and_reuses(self, tmp_path):
        spec = FleetSpec(n_clusters=2, seed=3, scale=0.002)
        fleet = synth_fleet(spec, tmp_path / "f")
        assert (tmp_path / "f" / MANIFEST_NAME).exists()
        for cdir in fleet.cluster_dirs:
            assert (cdir / "manifest.txt").exists()
            assert (cdir / "errors.npy").exists()
            assert sorted((cdir / "shards").glob("errors-rack*.npy"))
        mtime = (fleet.cluster_dir(0) / "errors.npy").stat().st_mtime_ns
        again = synth_fleet(spec, tmp_path / "f")
        assert again.spec == spec
        assert (
            again.cluster_dir(0) / "errors.npy"
        ).stat().st_mtime_ns == mtime  # reused, not regenerated

    def test_text_log_backfill_on_reuse(self, tmp_path):
        spec = FleetSpec(n_clusters=1, seed=3, scale=0.002)
        fleet = synth_fleet(spec, tmp_path / "f")  # binary-only
        assert not (fleet.cluster_dir(0) / "ce.log").exists()
        fleet = synth_fleet(spec, tmp_path / "f", text_logs=True)
        assert (fleet.cluster_dir(0) / "ce.log").exists()
        assert (fleet.cluster_dir(0) / "het.log").exists()

    def test_clusters_differ(self, tmp_path):
        import numpy as np

        from repro.faults.types import ERROR_DTYPE
        from repro.logs.store import load_records

        fleet = synth_fleet(
            FleetSpec(n_clusters=2, seed=3, scale=0.002), tmp_path / "f"
        )
        a = load_records(fleet.cluster_dir(0) / "errors.npy", ERROR_DTYPE)
        b = load_records(fleet.cluster_dir(1) / "errors.npy", ERROR_DTYPE)
        assert not np.array_equal(a, b)
