"""CLI smoke tests for the ``fleet`` verb."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate_file

REPO = Path(__file__).resolve().parents[2]
FLEET_SCHEMA = REPO / "schemas" / "fleet.schema.json"
ARGS = ["--clusters", "2", "--scale", "0.002", "--seed", "5"]


def _fleet(tmp_path, *extra) -> int:
    return main(
        ["fleet", "--shard-dir", str(tmp_path / "fleet"), *ARGS, *extra]
    )


class TestFleetVerb:
    def test_synth_check_and_report(self, tmp_path, capsys):
        report = tmp_path / "fleet-report.json"
        rc = _fleet(
            tmp_path, "--jobs", "2", "--check",
            "--fleet-report", str(report),
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical to whole-stream path" in out
        assert validate_file(FLEET_SCHEMA, report) == []
        doc = json.loads(report.read_text())
        assert doc["fleet"]["n_clusters"] == 2
        assert doc["check"]["identical"] is True
        assert doc["result"]["n_shards"] > 2  # per-rack shards, not mirrors
        assert doc["result"]["jobs"] == 2

    def test_second_invocation_reuses_fleet(self, tmp_path, capsys):
        assert _fleet(tmp_path) == 0
        marker = tmp_path / "fleet" / "cluster-00" / "errors.npy"
        mtime = marker.stat().st_mtime_ns
        capsys.readouterr()
        assert _fleet(tmp_path, "--check") == 0
        assert marker.stat().st_mtime_ns == mtime

    def test_clusters_mismatch_is_refused(self, tmp_path, capsys):
        assert _fleet(tmp_path) == 0
        rc = main(
            ["fleet", "--shard-dir", str(tmp_path / "fleet"),
             "--clusters", "3", "--scale", "0.002", "--seed", "5"]
        )
        assert rc == 2
        assert "--force-synth" in capsys.readouterr().err

    def test_corrupt_manifest_is_refused(self, tmp_path, capsys):
        (tmp_path / "fleet").mkdir()
        (tmp_path / "fleet" / "fleet.json").write_text("{broken")
        assert _fleet(tmp_path) == 2
        assert "error:" in capsys.readouterr().err

    def test_text_source_backfills_and_checks(self, tmp_path, capsys):
        assert _fleet(tmp_path) == 0  # binary-only synth
        assert not (tmp_path / "fleet" / "cluster-00" / "ce.log").exists()
        capsys.readouterr()
        rc = _fleet(tmp_path, "--source", "text", "--check")
        assert rc == 0
        assert (tmp_path / "fleet" / "cluster-00" / "ce.log").exists()
        assert "identical to whole-stream path" in capsys.readouterr().out

    def test_missing_shards_source_errors(self, tmp_path, capsys):
        assert _fleet(tmp_path) == 0
        import shutil

        shutil.rmtree(tmp_path / "fleet" / "cluster-01" / "shards")
        capsys.readouterr()
        assert _fleet(tmp_path, "--source", "shards") == 2
        assert "shards" in capsys.readouterr().err

    def test_experiments_over_fleet(self, tmp_path, capsys):
        report = tmp_path / "run-report.json"
        rc = _fleet(
            tmp_path, "--exp", "fig05", "--json-report", str(report)
        )
        # Checks may legitimately fail at this tiny scale; the smoke
        # contract is that the run completes and reports.
        assert rc in (0, 1)
        assert "fig05" in capsys.readouterr().out
        doc = json.loads(report.read_text())
        assert [m["exp_id"] for m in doc["experiments"]] == ["fig05"]

    def test_chaos_run_reports_degradation(self, tmp_path, capsys):
        from repro.obs.schema import validate_jsonl

        report = tmp_path / "fleet-report.json"
        rc = _fleet(
            tmp_path, "--jobs", "0", "--check",
            "--chaos", "moderate", "--chaos-seed", "3",
            "--fleet-report", str(report),
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "status: pass-degraded" in captured.out
        assert "quarantined" in captured.err
        assert "over surviving shards" in captured.out
        assert validate_file(FLEET_SCHEMA, report) == []
        doc = json.loads(report.read_text())
        assert doc["result"]["status"] == "pass-degraded"
        assert doc["result"]["quarantined"]
        assert doc["check"]["degraded"] is True
        # The run's journal validates line by line against its schema.
        ledger = tmp_path / "fleet" / "fleet-ledger.jsonl"
        assert ledger.exists()
        assert validate_jsonl(
            REPO / "schemas" / "ledger.schema.json", ledger
        ) == []
        manifest = tmp_path / "fleet" / "chaos-manifest.json"
        assert json.loads(manifest.read_text())["profile"] == "moderate"

    def test_trace_and_metrics_artifacts(self, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = _fleet(
            tmp_path, "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        )
        assert rc == 0
        def _names(node, acc):
            acc.add(node["name"])
            for child in node.get("children", ()):
                _names(child, acc)
            return acc

        names = set()
        for root in json.loads(trace.read_text())["roots"]:
            _names(root, names)
        assert {"fleet.process", "fleet.shard", "fleet.synth"} <= names
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["fleet.shards_processed"] > 0
