"""CRC-32C kernel correctness and shard sidecar verification.

The checksum implementation is pure numpy (scalar slicing-by-8 below
64 KiB, chunk-parallel GF(2) folding above), so both paths are pinned
to the standard CRC-32C test vector and to each other; the sidecar
layer is exercised against real damage (truncation, bit flips).
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.faults.types import empty_errors
from repro.logs.integrity import (
    SIDECAR_SUFFIX,
    ShardIntegrityError,
    crc32c,
    crc32c_file,
    sidecar_path,
    verify_checksum,
    write_checksum,
)
from repro.logs.store import load_records, save_records

from repro.faults.types import ERROR_DTYPE


class TestCrc32c:
    def test_known_answer(self):
        # The canonical CRC-32C check vector (RFC 3720 appendix B.4).
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_input(self):
        assert crc32c(b"") == 0

    def test_scalar_and_vector_paths_agree(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, size=300_000, dtype=np.uint8).tobytes()
        # Full-buffer value (vector path, >= 64 KiB) must equal the value
        # accumulated via small chained blocks (scalar path).
        whole = crc32c(data)
        chained = 0
        for i in range(0, len(data), 4096):
            chained = crc32c(data[i : i + 4096], chained)
        assert whole == chained

    def test_chaining_is_associative(self):
        data = b"The quick brown fox jumps over the lazy dog" * 100
        for split in (1, 17, len(data) // 2, len(data) - 1):
            assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)

    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(11)
        data = bytearray(rng.integers(0, 256, size=100_000, dtype=np.uint8))
        reference = crc32c(bytes(data))
        data[50_000] ^= 0x10
        assert crc32c(bytes(data)) != reference

    def test_file_helper_matches_buffer(self, tmp_path):
        payload = b"x" * 70_000 + b"tail"
        path = tmp_path / "blob"
        path.write_bytes(payload)
        value, size = crc32c_file(path, block_bytes=4096)
        assert value == crc32c(payload)
        assert size == len(payload)


class TestSidecars:
    @pytest.fixture
    def shard(self, tmp_path):
        errors = empty_errors(64)
        errors["time"] = np.arange(64)
        errors["node"] = np.arange(64) % 7
        path = tmp_path / "errors-rack00.npy"
        save_records(path, errors)
        write_checksum(path)
        return path

    def test_round_trip_verifies(self, shard):
        assert verify_checksum(shard) is True
        doc = json.loads(sidecar_path(shard).read_text())
        assert doc["algorithm"] == "crc32c"
        assert doc["size"] == shard.stat().st_size

    def test_sidecar_never_globbed_as_shard(self, shard):
        assert sidecar_path(shard).name.endswith(SIDECAR_SUFFIX)
        assert not sidecar_path(shard).match("*.npy")

    def test_missing_sidecar_is_legacy_unless_required(self, shard):
        sidecar_path(shard).unlink()
        assert verify_checksum(shard) is False
        with pytest.raises(ShardIntegrityError, match="no .* sidecar"):
            verify_checksum(shard, required=True)

    def test_truncation_detected(self, shard):
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        with pytest.raises(ShardIntegrityError, match="size mismatch"):
            verify_checksum(shard)

    def test_bit_flip_detected(self, shard):
        data = bytearray(shard.read_bytes())
        data[-5] ^= 0x01  # payload byte, header untouched
        shard.write_bytes(bytes(data))
        with pytest.raises(ShardIntegrityError, match="crc32c mismatch"):
            verify_checksum(shard)

    def test_load_records_verify_gate(self, shard):
        # verify=True consumes an intact shard and rejects a corrupt one.
        load_records(shard, ERROR_DTYPE, verify=True)
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0x80
        shard.write_bytes(bytes(data))
        with pytest.raises(ShardIntegrityError):
            load_records(shard, ERROR_DTYPE, verify=True)

    def test_error_survives_pickling(self, shard):
        # Pool workers hand the exception to the parent through pickle;
        # path and reason must survive so quarantine reporting stays typed.
        err = ShardIntegrityError(shard, "crc32c mismatch (test)")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ShardIntegrityError)
        assert clone.path == err.path
        assert clone.reason == err.reason
