"""Fleet ledger append/read semantics and the digest-verified shard cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.faults.types import FaultMode, empty_errors
from repro.fleet import FleetLedger, ShardResultCache, task_key
from repro.logs.ingest import IngestStats


def _shard_result(n=16):
    errors = empty_errors(n)
    errors["time"] = np.arange(n) * 10
    errors["node"] = np.arange(n) % 3
    faults = coalesce(errors)
    return {
        "faults": faults,
        "mode_counts": np.bincount(
            faults["mode"], minlength=len(FaultMode)
        ).astype(np.int64),
        "n_errors": n,
        "stats": IngestStats(family="errors", seen=n, parsed=n, source="shards"),
        "wall_s": 0.01,
    }


class TestLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "fleet-ledger.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append("plan", n_tasks=2, jobs=0)
            ledger.append("attempt", task="c0/s0", attempt=1)
            ledger.append("commit", task="c0/s0", digest="deadbeef")
        events, skipped = FleetLedger.read(path)
        assert skipped == 0
        assert [e["event"] for e in events] == ["plan", "attempt", "commit"]
        assert all("t" in e and e["v"] == 1 for e in events)

    def test_unknown_event_rejected(self, tmp_path):
        with FleetLedger(tmp_path / "l.jsonl") as ledger:
            with pytest.raises(ValueError, match="unknown ledger event"):
                ledger.append("explode")

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append("plan", n_tasks=1)
            ledger.append("commit", task="c0/s0", digest="00000000")
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # kill -9 mid-append tears the tail
        events, skipped = FleetLedger.read(path)
        assert skipped == 1
        assert [e["event"] for e in events] == ["plan"]

    def test_foreign_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append("plan", n_tasks=1)
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"v": 99, "event": "commit", "t": 0}) + "\n")
        events, skipped = FleetLedger.read(path)
        assert len(events) == 1
        assert skipped == 2

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert FleetLedger.read(tmp_path / "absent.jsonl") == ([], 0)

    def test_committed_last_wins(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append("commit", task="c0/s0", digest="aaaaaaaa")
            ledger.append("quarantine", task="c0/s1", reason="torn")
            ledger.append("commit", task="c0/s0", digest="bbbbbbbb")
        committed = FleetLedger.committed(path)
        assert set(committed) == {"c0/s0"}
        assert committed["c0/s0"]["digest"] == "bbbbbbbb"

    def test_truncate_discards_prior_run(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with FleetLedger(path) as ledger:
            ledger.append("commit", task="c0/s0", digest="aaaaaaaa")
        # A fresh (non-resume) run starts its journal over: stale commits
        # from an earlier run must never satisfy a later --resume.
        with FleetLedger(path, truncate=True) as ledger:
            ledger.append("plan", n_tasks=1)
        events, _ = FleetLedger.read(path)
        assert [e["event"] for e in events] == ["plan"]
        assert FleetLedger.committed(path) == {}

    def test_task_key_shape(self):
        assert task_key({"cluster": "c-00", "shard": "errors-rack03.npy"}) == (
            "c-00/errors-rack03.npy"
        )


class TestShardResultCache:
    def test_save_load_round_trip(self, tmp_path):
        cache = ShardResultCache(tmp_path / "fleet-cache")
        result = _shard_result()
        rel, digest = cache.save("c0/s0.npy", result)
        assert (tmp_path / "fleet-cache" / rel).exists()
        loaded = cache.load("c0/s0.npy", digest)
        assert loaded is not None
        assert loaded["faults"].tobytes() == result["faults"].tobytes()
        assert np.array_equal(loaded["mode_counts"], result["mode_counts"])
        assert loaded["n_errors"] == result["n_errors"]
        assert loaded["stats"].to_dict() == result["stats"].to_dict()

    def test_wrong_digest_returns_none(self, tmp_path):
        cache = ShardResultCache(tmp_path / "c")
        _, digest = cache.save("k", _shard_result())
        assert cache.load("k", "0" * 8) is None
        assert cache.load("k", digest) is not None

    def test_torn_cache_file_returns_none(self, tmp_path):
        cache = ShardResultCache(tmp_path / "c")
        _, digest = cache.save("k", _shard_result())
        path = cache.path_for("k")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.load("k", digest) is None

    def test_missing_file_returns_none(self, tmp_path):
        cache = ShardResultCache(tmp_path / "c")
        assert cache.load("never-saved", "00000000") is None

    def test_key_with_slash_flattens(self, tmp_path):
        cache = ShardResultCache(tmp_path / "c")
        rel, _ = cache.save("cluster-00/errors-rack03.npy", _shard_result(4))
        assert "/" not in rel
        assert rel.startswith("cluster-00__errors-rack03")
