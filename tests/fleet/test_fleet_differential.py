"""Differential tests: the sharded fleet engine is exact.

For every shard count, source and jobs level, ``process_fleet`` must
reproduce the single-process whole-stream answer byte for byte --
including over corrupted text logs under the repair policy, with empty
clusters and zero-row shards in the mix, and through the experiment
registry when a fleet handle is pre-warmed with the merged result.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.faults.types import ERROR_DTYPE, FaultMode, empty_errors
from repro.fleet import (
    FleetSpec,
    fleet_campaign,
    fleet_errors,
    process_fleet,
    synth_fleet,
)
from repro.inject.corruptor import LogCorruptor
from repro.logs.store import load_records, save_records, shard_by_rack
from repro.logs.syslog import ingest_ce_log

SCALE = 0.002
CLUSTER_COUNTS = (1, 2, 7)


@pytest.fixture(scope="module")
def fleets(tmp_path_factory):
    """One tiny fleet per cluster count, text logs included."""
    root = tmp_path_factory.mktemp("fleets")
    out = {}
    for n in CLUSTER_COUNTS:
        spec = FleetSpec(n_clusters=n, seed=5, scale=SCALE)
        out[n] = synth_fleet(spec, root / f"n{n}", text_logs=True)
    return out


def _assert_same_faults(got: np.ndarray, want: np.ndarray):
    assert got.dtype == want.dtype
    assert got.tobytes() == want.tobytes()


def _text_reference(fleet, policy="repair") -> np.ndarray:
    """Whole-stream answer for text sources: serial parse + coalesce."""
    parts = []
    for i, cdir in enumerate(fleet.cluster_dirs):
        errors = ingest_ce_log(
            cdir / "ce.log", policy=policy, quarantine=False
        ).errors.copy()
        errors["node"] += fleet.spec.node_offset(i)
        parts.append(errors)
    merged = np.concatenate(parts)
    return coalesce(merged[np.argsort(merged["time"], kind="stable")])


class TestByteIdentity:
    @pytest.mark.parametrize("n_clusters", CLUSTER_COUNTS)
    @pytest.mark.parametrize("source", ["shards", "binary"])
    def test_binary_sources_match_whole_stream(
        self, fleets, n_clusters, source
    ):
        fleet = fleets[n_clusters]
        want = coalesce(fleet_errors(fleet))
        result = process_fleet(fleet, source=source)
        _assert_same_faults(result.faults, want)
        assert result.n_errors == int(fleet_errors(fleet).size)

    @pytest.mark.parametrize("n_clusters", CLUSTER_COUNTS)
    def test_text_source_matches_text_reference(self, fleets, n_clusters):
        fleet = fleets[n_clusters]
        result = process_fleet(fleet, source="text")
        _assert_same_faults(result.faults, _text_reference(fleet))

    @pytest.mark.parametrize("jobs", [0, 3])
    def test_jobs_levels_agree(self, fleets, jobs):
        fleet = fleets[2]
        want = coalesce(fleet_errors(fleet))
        result = process_fleet(fleet, jobs=jobs, source="shards")
        _assert_same_faults(result.faults, want)

    def test_mode_counts_match_merged_faults(self, fleets):
        fleet = fleets[2]
        result = process_fleet(fleet, source="shards")
        want = np.bincount(
            result.faults["mode"], minlength=len(FaultMode)
        ).astype(np.int64)
        assert np.array_equal(result.mode_counts, want)
        assert sum(result.mode_histogram().values()) == result.n_faults

    def test_node_ids_span_fleet_globally(self, fleets):
        fleet = fleets[2]
        per = fleet.spec.base_topology.n_nodes
        faults = process_fleet(fleet, source="shards").faults
        assert faults["node"].max() >= per  # cluster 1 got offset
        assert faults["node"].max() < 2 * per


class TestCorruptedText:
    @pytest.mark.parametrize("profile", ["light", "moderate"])
    def test_corrupted_logs_repair_identically(
        self, fleets, tmp_path, profile
    ):
        src = fleets[2]
        shutil.copytree(src.directory, tmp_path / "f")
        fleet = type(src).load(tmp_path / "f")
        for i, cdir in enumerate(fleet.cluster_dirs):
            LogCorruptor(profile, seed=11 + i).corrupt_text_file(
                cdir / "ce.log"
            )
        want = _text_reference(fleet, policy="repair")
        for jobs in (0, 2):
            result = process_fleet(
                fleet, jobs=jobs, source="text", policy="repair"
            )
            _assert_same_faults(result.faults, want)
            assert result.ingest.source == "text"
            assert result.ingest.seen >= result.ingest.parsed


class TestEmptyShards:
    def test_empty_cluster_in_fleet(self, fleets, tmp_path):
        src = fleets[2]
        shutil.copytree(src.directory, tmp_path / "f")
        fleet = type(src).load(tmp_path / "f")
        cdir = fleet.cluster_dir(0)
        save_records(cdir / "errors.npy", empty_errors(0))
        shutil.rmtree(cdir / "shards")
        shard_by_rack(
            empty_errors(0), cdir / "shards",
            fleet.spec.base_topology, include_empty=True,
        )
        want = coalesce(fleet_errors(fleet))
        for source in ("shards", "binary"):
            result = process_fleet(fleet, source=source)
            _assert_same_faults(result.faults, want)
        # Only cluster-01 contributes; its offset survives the merge.
        assert want["node"].min() >= fleet.spec.node_offset(1)

    def test_fully_empty_fleet(self, tmp_path):
        fleet = synth_fleet(
            FleetSpec(n_clusters=1, seed=5, scale=SCALE), tmp_path / "f"
        )
        cdir = fleet.cluster_dir(0)
        save_records(cdir / "errors.npy", empty_errors(0))
        shutil.rmtree(cdir / "shards")
        shard_by_rack(
            empty_errors(0), cdir / "shards",
            fleet.spec.base_topology, include_empty=True,
        )
        result = process_fleet(fleet, source="shards")
        assert result.n_errors == 0
        assert result.n_faults == 0
        assert result.faults.dtype == coalesce(empty_errors(0)).dtype
        assert np.array_equal(
            result.mode_counts, np.zeros(len(FaultMode), dtype=np.int64)
        )


class TestMmap:
    def test_fleet_errors_mmap_round_trip(self, fleets):
        fleet = fleets[2]
        mapped = fleet_errors(fleet, mmap=True)
        copied = fleet_errors(fleet, mmap=False)
        assert mapped.tobytes() == copied.tobytes()
        # The result is a real in-memory array, safe to mutate.
        assert isinstance(mapped, np.ndarray)
        assert mapped.flags.writeable

    def test_load_records_mmap_is_readonly_view(self, fleets):
        fleet = fleets[1]
        path = fleet.cluster_dir(0) / "errors.npy"
        view = load_records(path, ERROR_DTYPE, mmap=True)
        assert isinstance(view, np.memmap) or not view.flags.owndata
        with pytest.raises((ValueError, OSError)):
            view["node"] += 1  # read-only mapping must refuse writes


def _series_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _series_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _series_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


class TestExperimentsOverFleet:
    def test_prewarmed_and_cold_campaigns_agree(self, fleets):
        from repro.experiments import registry

        fleet = fleets[2]
        result = process_fleet(fleet, source="shards")
        warm = fleet_campaign(fleet, result=result)
        cold = fleet_campaign(fleet)
        assert warm.machines == 2
        assert warm.topology.n_racks == 2 * fleet.spec.base_topology.n_racks
        _assert_same_faults(warm.faults(), cold.faults())
        # fig05 needs a power-law tail this tiny scale cannot populate;
        # fig04/fig12 exercise the machines-aware totals and rack folding.
        for exp_id in ("fig04", "fig12"):
            rw = registry.run(exp_id, warm, min_coverage=0.0)
            rc = registry.run(exp_id, cold, min_coverage=0.0)
            assert rw.checks == rc.checks, exp_id
            assert _series_equal(rw.series, rc.series), exp_id
