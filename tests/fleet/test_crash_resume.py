"""Kill -9 a live fleet run mid-shard; --resume must finish it exactly.

The run is a real subprocess of the CLI, slowed per shard via the
``ASTRA_MEMREPRO_SHARD_DELAY_S`` knob so the kill lands between
commits deterministically enough to observe a partial ledger.  The
resumed run must (a) skip every committed shard, re-running only the
rest, and (b) produce the byte-identical fault array of an
uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.fleet import LEDGER_NAME, FleetLedger, FleetSpec, synth_fleet

SPEC = FleetSpec(n_clusters=2, seed=11, scale=0.002)
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _cli_env(delay_s: float | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    if delay_s is not None:
        env["ASTRA_MEMREPRO_SHARD_DELAY_S"] = str(delay_s)
    return env


def _fleet_cmd(shard_dir: Path, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro.cli", "fleet",
        "--shard-dir", str(shard_dir),
        "--clusters", "2", "--seed", "11", "--scale", "0.002",
        "--jobs", "0", "--source", "shards",
        *extra,
    ]


def _wait_for_commit(ledger_path: Path, deadline_s: float = 60.0) -> int:
    """Poll until the ledger holds >= 1 commit; returns the count seen."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        n = len(FleetLedger.committed(ledger_path))
        if n >= 1:
            return n
        time.sleep(0.05)
    raise AssertionError("no shard committed before the deadline")


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        victim_dir = tmp_path / "victim"
        clean_dir = tmp_path / "clean"

        # Uninterrupted reference run.
        clean_out = tmp_path / "clean-faults.npy"
        subprocess.run(
            _fleet_cmd(clean_dir, "--faults-out", str(clean_out)),
            env=_cli_env(), check=True, capture_output=True, timeout=120,
        )

        # Victim run: slowed shards, killed after the first commit.
        synth_fleet(SPEC, victim_dir, shards=True)
        proc = subprocess.Popen(
            _fleet_cmd(victim_dir),
            env=_cli_env(delay_s=0.8),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        ledger_path = victim_dir / LEDGER_NAME
        try:
            _wait_for_commit(ledger_path)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        committed_before = set(FleetLedger.committed(ledger_path))
        assert committed_before  # the kill landed after >= 1 commit
        events_before, _ = FleetLedger.read(ledger_path)
        n_shards = next(
            e["n_tasks"] for e in events_before if e["event"] == "plan"
        )
        assert len(committed_before) < n_shards  # ... and before the last

        # Resume: committed shards load from cache, the rest re-run.
        resumed_out = tmp_path / "resumed-faults.npy"
        result = subprocess.run(
            _fleet_cmd(
                victim_dir, "--resume", "--faults-out", str(resumed_out)
            ),
            env=_cli_env(), check=True, capture_output=True, text=True,
            timeout=120,
        )
        assert f"resumed={len(committed_before)}" in result.stdout
        assert "status: pass" in result.stdout

        got = np.load(resumed_out)
        want = np.load(clean_out)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

        # The journal tells the whole story: the original plan, the
        # commits that survived the kill, one resume event, and fresh
        # attempts only for the uncommitted remainder.
        events, _ = FleetLedger.read(ledger_path)
        kinds = [e["event"] for e in events]
        assert "resume" in kinds
        resume_at = kinds.index("resume")
        attempted_after = {
            e["task"]
            for e in events[resume_at:]
            if e["event"] == "attempt"
        }
        assert attempted_after.isdisjoint(committed_before)
        assert len(FleetLedger.committed(ledger_path)) == n_shards
