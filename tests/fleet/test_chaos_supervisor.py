"""Differential chaos suite: the supervised fleet engine under injected faults.

The contract, per profile and jobs level: either the run is
byte-identical to a clean run (every fault absorbed by retries), or it
is ``pass-degraded`` with the quarantined shards listed and the lost
records accounted in coverage -- never a silently wrong answer.  Serial
and parallel supervision must agree on what was lost.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.faults.coalesce import coalesce
from repro.fleet import (
    LEDGER_NAME,
    FleetLedger,
    FleetSpec,
    drop_quarantined,
    fleet_errors,
    process_fleet,
    synth_fleet,
)
from repro.inject.chaos import CHAOS_MANIFEST_NAME, CHAOS_PROFILES

SPEC = FleetSpec(n_clusters=2, seed=11, scale=0.002)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory) -> Path:
    """One untouched fleet; every scenario works on its own copy."""
    root = tmp_path_factory.mktemp("chaos-fleets")
    synth_fleet(SPEC, root / "pristine", shards=True)
    return root / "pristine"


@pytest.fixture(scope="module")
def clean_faults(pristine):
    """The clean-run answer all chaos runs are measured against."""
    fleet = synth_fleet(SPEC, pristine)
    return process_fleet(fleet, jobs=0, source="shards", ledger=False).faults


def _copy(pristine: Path, tmp_path: Path):
    shutil.copytree(pristine, tmp_path / "f")
    return synth_fleet(SPEC, tmp_path / "f")


@pytest.mark.parametrize("jobs", [0, 4])
class TestProfiles:
    def test_light_is_absorbed_byte_identically(
        self, pristine, clean_faults, tmp_path, jobs
    ):
        fleet = _copy(pristine, tmp_path)
        result = process_fleet(
            fleet, jobs=jobs, source="shards",
            task_timeout_s=10.0, chaos="light", chaos_seed=5,
        )
        # light is process faults only: kills and wedges hit attempt 1,
        # the retry runs clean, nothing is lost.
        assert result.status == "pass"
        assert not result.quarantined
        assert result.retries >= 1
        assert result.faults.tobytes() == clean_faults.tobytes()
        assert result.coverage == pytest.approx(1.0)

    def test_hostile_degrades_with_accounting(
        self, pristine, clean_faults, tmp_path, jobs
    ):
        fleet = _copy(pristine, tmp_path)
        result = process_fleet(
            fleet, jobs=jobs, source="shards",
            task_timeout_s=10.0, chaos="hostile", chaos_seed=5,
        )
        # File damage cannot be retried away: the damaged shards land in
        # quarantine and the coverage loss is visible, not hidden.
        assert result.status == "pass-degraded"
        assert result.quarantined
        assert 0.0 < result.coverage < 1.0
        assert result.integrity_failures >= 1
        for entry in result.quarantined:
            assert entry["attempts"] >= 1
            assert entry["reason"]
        # The surviving answer is still exact: identical to the clean
        # whole-stream reduction with the quarantined shards' records
        # masked out.
        want = coalesce(drop_quarantined(fleet, result, fleet_errors(fleet)))
        assert result.faults.tobytes() == want.tobytes()


class TestSerialParallelAgreement:
    @pytest.mark.parametrize("profile", ["moderate", "hostile"])
    def test_same_loss_both_modes(self, pristine, tmp_path, profile):
        outcomes = {}
        for jobs in (0, 4):
            fleet = _copy(pristine, tmp_path / f"j{jobs}")
            result = process_fleet(
                fleet, jobs=jobs, source="shards",
                task_timeout_s=10.0, chaos=profile, chaos_seed=9,
            )
            outcomes[jobs] = result
        a, b = outcomes[0], outcomes[4]
        assert a.status == b.status
        assert {q["shard"] for q in a.quarantined} == {
            q["shard"] for q in b.quarantined
        }
        assert a.coverage == pytest.approx(b.coverage)
        assert a.faults.tobytes() == b.faults.tobytes()


class TestResumeAfterChaos:
    def test_resume_matches_uninterrupted_chaos_run(self, pristine, tmp_path):
        fleet = _copy(pristine, tmp_path)
        first = process_fleet(
            fleet, jobs=0, source="shards",
            task_timeout_s=10.0, chaos="hostile", chaos_seed=5,
        )
        # Resume on the same directory without re-arming chaos: committed
        # shards load from cache, quarantined shards re-attempt against
        # the still-damaged files and quarantine again.
        resumed = process_fleet(fleet, jobs=0, source="shards", resume=True)
        assert resumed.faults.tobytes() == first.faults.tobytes()
        assert resumed.status == first.status
        assert {q["shard"] for q in resumed.quarantined} == {
            q["shard"] for q in first.quarantined
        }
        assert resumed.coverage == pytest.approx(first.coverage)
        assert resumed.resumed_shards  # cache actually served commits

    def test_chaos_file_faults_apply_once(self, pristine, tmp_path):
        fleet = _copy(pristine, tmp_path)
        process_fleet(
            fleet, jobs=0, source="shards",
            task_timeout_s=10.0, chaos="hostile", chaos_seed=5,
        )
        manifest = fleet.directory / CHAOS_MANIFEST_NAME
        before = manifest.read_bytes()
        # Re-invoking with the same profile+seed must not re-corrupt
        # (a second bitflip would restore the bit and un-degrade the run).
        process_fleet(
            fleet, jobs=0, source="shards", resume=True,
            task_timeout_s=10.0, chaos="hostile", chaos_seed=5,
        )
        assert manifest.read_bytes() == before


class TestLedgerTrail:
    def test_run_leaves_auditable_journal(self, pristine, tmp_path):
        fleet = _copy(pristine, tmp_path)
        result = process_fleet(
            fleet, jobs=0, source="shards",
            task_timeout_s=10.0, chaos="moderate", chaos_seed=3,
        )
        events, skipped = FleetLedger.read(fleet.directory / LEDGER_NAME)
        assert skipped == 0
        kinds = [e["event"] for e in events]
        assert kinds[0] == "plan"
        # per_shard lists only the shards that made it into the reduction.
        assert kinds.count("commit") == len(result.per_shard)
        assert kinds.count("quarantine") == len(result.quarantined)
        # Every commit carries the digest --resume verifies against.
        for event in events:
            if event["event"] == "commit":
                assert len(event["digest"]) == 8

    def test_fresh_run_truncates_stale_journal(self, pristine, tmp_path):
        fleet = _copy(pristine, tmp_path)
        process_fleet(fleet, jobs=0, source="shards")
        process_fleet(fleet, jobs=0, source="shards")
        events, _ = FleetLedger.read(fleet.directory / LEDGER_NAME)
        assert [e["event"] for e in events].count("plan") == 1


class TestProfileCatalog:
    def test_profiles_are_ordered_by_hostility(self):
        light = CHAOS_PROFILES["light"]
        hostile = CHAOS_PROFILES["hostile"]
        assert light.torn_shards == light.bitflips == 0
        assert hostile.torn_shards + hostile.bitflips >= 1
        assert hostile.kills >= light.kills
