"""Tests for campaign self-validation."""

import dataclasses

import pytest

from repro.synth import CampaignGenerator, render_validation, validate_campaign
from repro.synth.validation import CheckResult, _check


class TestCheckPrimitive:
    def test_within_tolerance(self):
        assert _check("x", 100.0, 104.0, 0.05).passed

    def test_outside_tolerance(self):
        assert not _check("x", 100.0, 110.0, 0.05).passed

    def test_zero_target_exact(self):
        assert _check("x", 0.0, 0.0, 0.1).passed
        assert not _check("x", 0.0, 1.0, 0.1).passed

    def test_render(self):
        text = _check("thing", 10.0, 10.0, 0.1).render()
        assert "[ok ]" in text and "thing" in text
        text = _check("thing", 10.0, 99.0, 0.1).render()
        assert "[FAIL]" in text


class TestCampaignValidation:
    def test_small_campaign_passes(self, small_campaign):
        checks = validate_campaign(small_campaign)
        failed = [c.name for c in checks if not c.passed]
        assert not failed, failed

    @pytest.mark.slow
    def test_full_campaign_passes(self, full_campaign):
        checks = validate_campaign(full_campaign)
        failed = [c.name for c in checks if not c.passed]
        assert not failed, failed

    def test_render_summary(self, small_campaign):
        text = render_validation(validate_campaign(small_campaign))
        assert "calibration checks:" in text
        assert "total correctable errors" in text

    def test_detects_miscalibration(self, small_campaign):
        """A campaign claiming the wrong scale fails validation."""
        broken = dataclasses.replace(small_campaign, scale=small_campaign.scale * 3)
        checks = validate_campaign(broken)
        assert any(not c.passed for c in checks)

    def test_covers_every_anchor_family(self, small_campaign):
        names = " ".join(c.name for c in validate_campaign(small_campaign))
        for fragment in (
            "correctable errors",
            "nodes with",
            "single-bit",
            "errors per fault",
            "replaced",
            "DUEs",
        ):
            assert fragment in names

    @pytest.mark.slow
    def test_scale_gated_checks_present_at_full_volume(self, full_campaign):
        names = " ".join(c.name for c in validate_campaign(full_campaign))
        assert "top-2%" in names
        assert "maximum errors per fault" in names
