"""Tests for the fault population generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.types import FaultMode
from repro.machine.topology import AstraTopology
from repro.synth.config import PaperCalibration
from repro.synth.population import (
    FaultPopulationGenerator,
    _ladder,
    _powerlaw_node_counts,
)


@pytest.fixture(scope="module")
def pop():
    return FaultPopulationGenerator(seed=3, scale=0.05).generate()


class TestLadder:
    def test_exact_total(self):
        rng = np.random.default_rng(0)
        counts = _ladder(rng, 100, 5000, 1000, 0.7)
        assert counts.sum() == 5000
        assert counts.size == 100

    def test_all_positive(self):
        rng = np.random.default_rng(1)
        counts = _ladder(rng, 50, 200, 80, 0.7)
        assert np.all(counts >= 1)

    def test_median_is_one(self):
        rng = np.random.default_rng(2)
        counts = _ladder(rng, 200, 20000, 5000, 0.7)
        assert np.median(counts) == 1

    def test_head_near_max(self):
        rng = np.random.default_rng(3)
        counts = _ladder(rng, 1000, 500_000, 91_000, 0.7)
        assert 0.8 * 91_000 <= counts.max() <= 1.3 * 91_000

    def test_single_fault(self):
        rng = np.random.default_rng(4)
        counts = _ladder(rng, 1, 42, 91, 0.7)
        assert counts.tolist() == [42]

    def test_zero_faults(self):
        rng = np.random.default_rng(5)
        assert _ladder(rng, 0, 0, 10, 0.7).size == 0

    def test_infeasible_rejected(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            _ladder(rng, 10, 5, 100, 0.7)

    @given(
        n=st.integers(2, 300),
        mult=st.floats(1.0, 50.0),
        frac=st.floats(0.1, 0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_total_and_positivity(self, n, mult, frac):
        rng = np.random.default_rng(7)
        total = int(n * mult)
        counts = _ladder(rng, n, total, max(total // 2, 2), frac)
        assert counts.sum() == total
        assert np.all(counts >= 1)


class TestPowerlawNodeCounts:
    def test_exact_total(self):
        rng = np.random.default_rng(0)
        counts = _powerlaw_node_counts(rng, 100, 700, 60)
        assert counts.sum() == 700
        assert np.all((counts >= 1) & (counts <= 60))

    def test_skewed_shape(self):
        rng = np.random.default_rng(1)
        counts = _powerlaw_node_counts(rng, 500, 3500, 60)
        # power-law-ish: the median is well under the mean
        assert np.median(counts) < counts.mean()

    def test_empty(self):
        rng = np.random.default_rng(2)
        assert _powerlaw_node_counts(rng, 0, 0, 60).size == 0


class TestPopulation:
    def test_deterministic(self):
        a = FaultPopulationGenerator(seed=3, scale=0.05).generate()
        b = FaultPopulationGenerator(seed=3, scale=0.05).generate()
        np.testing.assert_array_equal(a.faults, b.faults)

    def test_seed_changes_output(self):
        a = FaultPopulationGenerator(seed=3, scale=0.05).generate()
        b = FaultPopulationGenerator(seed=4, scale=0.05).generate()
        assert not np.array_equal(a.faults, b.faults)

    def test_total_errors_match_scaled_target(self, pop):
        cal = PaperCalibration()
        expected = sum(
            max(cal.scaled_count(t, 0.05), cal.scaled_count(n, 0.05))
            for n, t in [
                (cal.n_faults_single_bit, cal.errors_single_bit),
                (cal.n_faults_single_word, cal.errors_single_word),
                (cal.n_faults_single_column, cal.errors_single_column),
                (cal.n_faults_single_bank, cal.errors_single_bank),
                (cal.n_faults_unattributed, cal.errors_unattributed),
            ]
        )
        assert pop.total_errors == expected

    def test_locations_unique_per_node(self, pop):
        f = pop.faults
        keys = set(
            zip(
                f["node"].tolist(),
                f["slot"].tolist(),
                f["rank"].tolist(),
                f["bank"].tolist(),
            )
        )
        assert len(keys) == f.size

    def test_unattributed_payload_sentinels(self, pop):
        un = pop.faults[pop.faults["mode"] == FaultMode.UNATTRIBUTED]
        assert un.size > 0
        assert np.all(un["bank"] == -1)
        assert np.all(un["column"] == -1)
        assert np.all(un["bit_pos"] == -1)
        assert np.all(un["address"] == 0)

    def test_attributed_payload_ranges(self, pop):
        at = pop.faults[pop.faults["mode"] != FaultMode.UNATTRIBUTED]
        assert np.all((at["bank"] >= 0) & (at["bank"] < 16))
        assert np.all((at["column"] >= 0) & (at["column"] < 1024))
        assert np.all((at["bit_pos"] >= 0) & (at["bit_pos"] < 72))

    def test_socket_follows_slot(self, pop):
        f = pop.faults
        np.testing.assert_array_equal(f["socket"], f["slot"] // 8)

    def test_times_inside_window(self, pop):
        cal = PaperCalibration()
        f = pop.faults
        assert np.all(f["start_time"] >= cal.error_window[0])
        assert np.all(f["start_time"] + f["duration"] <= cal.error_window[1] + 1e-6)

    def test_storm_node_tiers_disjoint(self, pop):
        tiers = (
            set(pop.storm_nodes.tolist()),
            set(pop.hot_nodes.tolist()),
            set(pop.normal_nodes.tolist()),
        )
        assert not (tiers[0] & tiers[1])
        assert not (tiers[0] & tiers[2])
        assert not (tiers[1] & tiers[2])

    def test_spike_rack_hosts_first_storm(self, pop):
        topo = AstraTopology()
        assert topo.rack_of(int(pop.storm_nodes[0])) == 31

    def test_small_topology_supported(self):
        topo = AstraTopology(n_racks=2, chassis_per_rack=6, nodes_per_chassis=2)
        gen = FaultPopulationGenerator(seed=0, scale=0.01, topology=topo)
        population = gen.generate()
        assert np.all(population.faults["node"] < topo.n_nodes)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            FaultPopulationGenerator(scale=0.0)
