"""Tests for the stateless sensor field model."""

import numpy as np
import pytest

from repro._util import epoch
from repro.synth.sensors import (
    INVALID_POWER_VALUE,
    INVALID_TEMP_VALUE,
    SensorFieldModel,
)

T0 = epoch("2019-06-01")


@pytest.fixture(scope="module")
def model():
    return SensorFieldModel(seed=9)


class TestDeterminism:
    def test_same_query_same_answer(self, model):
        t = T0 + np.arange(100) * 60.0
        a = model.temperature(5, 0, t)
        b = model.temperature(5, 0, t)
        np.testing.assert_array_equal(a, b)

    def test_subset_consistency(self, model):
        """Evaluating a subset gives the same values as the full query."""
        t = T0 + np.arange(50) * 60.0
        full = model.value(np.full(50, 7), np.full(50, 3), t)
        part = model.value(np.full(10, 7), np.full(10, 3), t[20:30])
        np.testing.assert_array_equal(full[20:30], part)

    def test_seed_changes_values(self):
        a = SensorFieldModel(seed=1).temperature(0, 0, T0)
        b = SensorFieldModel(seed=2).temperature(0, 0, T0)
        assert a != b


class TestPhysicalStructure:
    def test_cpu_band(self, model):
        t = T0 + np.arange(0, 86400 * 7, 600.0)
        temps = model.temperature(np.full(t.size, 100), np.zeros(t.size, int), t)
        assert 45 < temps.mean() < 80
        assert temps.std() < 6

    def test_dimm_band(self, model):
        t = T0 + np.arange(0, 86400 * 7, 600.0)
        temps = model.temperature(np.full(t.size, 100), np.full(t.size, 2), t)
        assert 30 < temps.mean() < 55

    def test_socket0_hotter_on_average(self, model):
        t = T0 + np.arange(0, 86400 * 14, 3600.0)
        cpu0 = model.temperature(np.full(t.size, 42), np.zeros(t.size, int), t)
        cpu1 = model.temperature(np.full(t.size, 42), np.ones(t.size, int), t)
        assert cpu0.mean() > cpu1.mean()

    def test_power_band(self, model):
        t = T0 + np.arange(0, 86400 * 7, 600.0)
        p = model.power(np.full(t.size, 9), t)
        assert 230 < p.mean() < 390
        assert p.min() > 150
        assert p.max() < 450

    def test_power_tracks_utilization(self, model):
        t = T0 + np.arange(0, 86400 * 30, 3600.0)
        u = model.utilization(np.full(t.size, 9), t)
        p = model.power(np.full(t.size, 9), t)
        assert np.corrcoef(u, p)[0, 1] > 0.9

    def test_temperature_tracks_utilization(self, model):
        t = T0 + np.arange(0, 86400 * 30, 3600.0)
        u = model.utilization(np.full(t.size, 9), t)
        temp = model.temperature(np.full(t.size, 9), np.zeros(t.size, int), t)
        assert np.corrcoef(u, temp)[0, 1] > 0.5

    def test_utilization_bounds(self, model):
        t = T0 + np.arange(0, 86400 * 30, 3600.0)
        u = model.utilization(np.arange(t.size) % 100, t)
        assert np.all((u >= 0) & (u <= 1))

    def test_power_sensor_rejected_for_temperature(self, model):
        with pytest.raises(ValueError):
            model.temperature(0, 6, T0)


class TestValueDispatch:
    def test_value_routes_power(self, model):
        v = model.value(3, 6, T0)
        assert 150 < v < 450  # watts, not degrees

    def test_value_routes_temperature(self, model):
        v = model.value(3, 0, T0)
        assert 40 < v < 90

    def test_mixed_sensor_array(self, model):
        sens = np.array([0, 6, 2, 6])
        v = model.value(np.zeros(4, int), sens, np.full(4, T0))
        assert v[1] > 100 and v[3] > 100  # power
        assert v[0] < 100 and v[2] < 100  # temperatures


class TestInvalidSamples:
    def test_invalid_fraction_below_one_percent(self, model):
        t = T0 + np.arange(100_000) * 60.0
        bad = model.invalid_mask(np.arange(100_000) % 500, np.zeros(100_000, int), t)
        assert 0 < bad.mean() < 0.01

    def test_raw_samples_inject_sentinels(self, model):
        t = T0 + np.arange(200_000) * 60.0
        nodes = np.arange(200_000) % 2592
        temps = model.raw_samples(nodes, np.zeros(t.size, int), t)
        powers = model.raw_samples(nodes, np.full(t.size, 6), t)
        assert (temps == INVALID_TEMP_VALUE).any()
        assert (powers == INVALID_POWER_VALUE).any()


class TestWindowMean:
    def test_matches_direct_average(self, model):
        t_end = T0 + 86400.0
        direct = model.temperature(
            np.full(2000, 17), np.full(2000, 2), t_end - np.arange(2000) * 30.0
        ).mean()
        wm = model.window_mean(17, 2, t_end, 86400.0 * 0.694)  # ~span of samples
        # Same field, different grids: agree within noise.
        assert wm == pytest.approx(direct, abs=1.5)

    def test_vectorised(self, model):
        ends = T0 + np.arange(5) * 3600.0
        out = model.window_mean(np.full(5, 3), np.full(5, 2), ends, 3600.0)
        assert out.shape == (5,)

    def test_window_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.window_mean(0, 0, T0, 0.0)

    def test_long_window_bounded_grid(self, model):
        # A one-month window must not blow memory: capped sample count.
        out = model.window_mean(1, 2, T0 + 86400 * 30, 86400.0 * 30)
        assert np.isfinite(out)
