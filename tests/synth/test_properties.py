"""Cross-cutting property-based tests of the synth -> analysis pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.coalesce import coalesce, errors_with_fault_ids
from repro.machine.dram import AddressMap
from repro.synth.errors import apply_ce_logging, expand_errors
from repro.synth.population import FaultPopulationGenerator


@st.composite
def tiny_populations(draw):
    seed = draw(st.integers(0, 200))
    scale = draw(st.sampled_from([0.002, 0.005, 0.01]))
    return FaultPopulationGenerator(seed=seed, scale=scale).generate()


@given(tiny_populations())
@settings(max_examples=15, deadline=None)
def test_property_coalescing_inverts_generation(population):
    """coalesce(expand(plan)) recovers the planned population exactly:
    same fault count, same per-location error counts."""
    errors = expand_errors(population.faults, seed=1)
    faults = coalesce(errors)
    assert faults.size == population.faults.size
    key = lambda f: (f["node"], f["slot"], f["rank"], f["bank"])
    planned = {}
    for f in population.faults:
        planned[(int(f["node"]), int(f["slot"]), int(f["rank"]), int(f["bank"]))] = int(
            f["n_errors"]
        )
    for f in faults:
        k = (int(f["node"]), int(f["slot"]), int(f["rank"]), int(f["bank"]))
        assert planned[k] == int(f["n_errors"])


@given(tiny_populations(), st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_property_expansion_respects_windows(population, seed):
    errors = expand_errors(population.faults, seed=seed)
    start = population.faults["start_time"].min()
    end = (population.faults["start_time"] + population.faults["duration"]).max()
    assert errors["time"].min() >= start - 1e-6
    assert errors["time"].max() <= end + 1e-6


@given(tiny_populations())
@settings(max_examples=10, deadline=None)
def test_property_coalescing_permutation_invariant(population):
    """Shuffling the log does not change the recovered faults."""
    errors = expand_errors(population.faults, seed=2)
    rng = np.random.default_rng(0)
    shuffled = errors[rng.permutation(errors.size)]
    a = coalesce(errors)
    b = coalesce(shuffled)
    np.testing.assert_array_equal(a, b)


@given(
    tiny_populations(),
    st.integers(2, 64),
    st.sampled_from([1.0, 5.0, 30.0]),
)
@settings(max_examples=10, deadline=None)
def test_property_ce_logging_is_subset_and_idempotent(population, slots, poll):
    errors = expand_errors(population.faults, seed=3)
    kept = apply_ce_logging(errors, buffer_slots=slots, poll_period_s=poll)
    assert kept.size <= errors.size
    again = apply_ce_logging(kept, buffer_slots=slots, poll_period_s=poll)
    assert again.size == kept.size  # surviving stream passes untouched


@given(tiny_populations())
@settings(max_examples=10, deadline=None)
def test_property_fault_ids_consistent_with_locations(population):
    errors = expand_errors(population.faults, seed=4)
    faults, ids = errors_with_fault_ids(errors)
    # Every error's location fields match its assigned fault's.
    for field in ("node", "slot", "rank"):
        np.testing.assert_array_equal(errors[field], faults[field][ids])


@given(
    socket=st.integers(0, 1),
    channel=st.integers(0, 7),
    rank=st.integers(0, 1),
    bank=st.integers(0, 15),
    row=st.integers(0, 32767),
    column=st.integers(0, 1023),
    offset=st.integers(0, 63),
)
@settings(max_examples=80)
def test_property_address_roundtrip(socket, channel, rank, bank, row, column, offset):
    amap = AddressMap()
    addr = amap.encode(socket, channel, rank, bank, row, column, offset)
    out = amap.decode(addr)
    assert out == dict(
        socket=socket,
        channel=channel,
        rank=rank,
        bank=bank,
        row=row,
        column=column,
        offset=offset,
    )
