"""Tests for the calibration constants."""

import dataclasses

import pytest

from repro._util import DAY_S
from repro.synth.config import PaperCalibration


@pytest.fixture(scope="module")
def cal():
    return PaperCalibration()


class TestPaperNumbers:
    def test_total_errors(self, cal):
        assert cal.total_errors == 4_369_731

    def test_mode_totals(self, cal):
        assert cal.errors_single_bit == 1_412_738
        assert cal.errors_single_word == 31_055
        assert cal.errors_single_column == 54_126
        assert cal.errors_single_bank == 7_658

    def test_unattributed_remainder(self, cal):
        assert cal.errors_unattributed == 4_369_731 - (
            1_412_738 + 31_055 + 54_126 + 7_658
        )
        assert cal.errors_unattributed > 0

    def test_concentration_targets(self, cal):
        assert cal.n_error_nodes == 1013
        assert cal.top8_error_share_min == 0.50
        assert cal.top2pct_error_share == 0.90
        assert cal.max_errors_per_fault == 91_000

    def test_replacement_totals(self, cal):
        assert cal.replaced_processors == 836
        assert cal.replaced_motherboards == 46
        assert cal.replaced_dimms == 1515

    def test_due_rate_and_fit(self, cal):
        assert cal.due_per_dimm_year == pytest.approx(0.00948)
        # FIT = failures per 1e9 device-hours.
        fit = cal.due_per_dimm_year / (24 * 365) * 1e9
        assert fit == pytest.approx(cal.fit_per_dimm, rel=0.01)

    def test_windows_ordered(self, cal):
        for w in (cal.error_window, cal.inventory_window, cal.sensor_window):
            assert w[0] < w[1]
        # HET recording starts inside the error window.
        assert cal.error_window[0] < cal.het_recording_start < cal.error_window[1]

    def test_error_window_length(self, cal):
        # Jan 20 to Sep 14 2019 is 237 days.
        assert cal.error_days == pytest.approx(237.0)

    def test_errors_per_node_day(self, cal):
        # Paper: "around six per node per day, on average".
        per_node_day = cal.total_errors / (2592 * cal.error_days)
        assert 5.0 < per_node_day < 8.0

    def test_sensor_window_inside_error_handling(self, cal):
        assert cal.sensor_window[0] > cal.error_window[0]


class TestScaling:
    def test_scaled_count_identity(self, cal):
        assert cal.scaled_count(100, 1.0) == 100

    def test_scaled_count_floor_one(self, cal):
        assert cal.scaled_count(5, 0.01) == 1

    def test_scaled_zero_stays_zero(self, cal):
        assert cal.scaled_count(0, 0.5) == 0

    def test_scale_must_be_positive(self, cal):
        with pytest.raises(ValueError):
            cal.scaled_count(10, 0.0)


class TestValidation:
    def test_default_is_valid(self, cal):
        cal.validate()

    def test_mode_overflow_rejected(self, cal):
        bad = dataclasses.replace(cal, errors_single_bit=5_000_000)
        with pytest.raises(ValueError):
            bad.validate()

    def test_region_shares_must_sum(self, cal):
        bad = dataclasses.replace(cal, region_fault_shares=(0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            bad.validate()

    def test_storm_regions_length(self, cal):
        bad = dataclasses.replace(cal, storm_regions=(0, 1))
        with pytest.raises(ValueError):
            bad.validate()

    def test_singleton_fraction_bounds(self, cal):
        bad = dataclasses.replace(cal, singleton_fault_fraction=1.0)
        with pytest.raises(ValueError):
            bad.validate()
