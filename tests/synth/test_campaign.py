"""Integration tests for campaign generation (small scale)."""

import numpy as np
import pytest

from repro.faults.coalesce import CoalesceOptions
from repro.faults.types import validate_errors
from repro.synth import CampaignGenerator


class TestCampaign:
    def test_components_present(self, small_campaign):
        c = small_campaign
        assert c.errors.size > 0
        assert c.replacements.size > 0
        assert c.het.size > 0
        assert c.population.faults.size > 0

    def test_errors_validate(self, small_campaign):
        validate_errors(small_campaign.errors)

    def test_n_errors_property(self, small_campaign):
        assert small_campaign.n_errors == small_campaign.errors.size

    def test_faults_cached(self, small_campaign):
        a = small_campaign.faults()
        b = small_campaign.faults()
        assert a is b

    def test_faults_custom_options_not_cached(self, small_campaign):
        a = small_campaign.faults()
        b = small_campaign.faults(CoalesceOptions(split_banks=False))
        assert a is not b
        assert b.size <= a.size

    def test_deterministic(self):
        a = CampaignGenerator(seed=3, scale=0.01).generate()
        b = CampaignGenerator(seed=3, scale=0.01).generate()
        np.testing.assert_array_equal(a.errors, b.errors)
        np.testing.assert_array_equal(a.replacements, b.replacements)
        np.testing.assert_array_equal(a.het, b.het)

    def test_coalescing_recovers_population(self, small_campaign):
        faults = small_campaign.faults()
        assert faults.size == small_campaign.population.faults.size

    def test_sensor_model_attached(self, small_campaign):
        from repro._util import epoch

        v = small_campaign.sensors.value(0, 0, epoch("2019-06-01"))
        assert 40 < v < 90

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            CampaignGenerator(scale=0)


@pytest.mark.slow
class TestFullScaleCalibration:
    """The paper's headline quantities, on the full-volume campaign."""

    def test_total_errors(self, full_campaign):
        assert full_campaign.n_errors == 4_369_731

    def test_error_node_count(self, full_campaign):
        nodes = np.unique(full_campaign.errors["node"])
        assert nodes.size == 1013

    def test_zero_node_fraction(self, full_campaign):
        per_node = np.bincount(full_campaign.errors["node"], minlength=2592)
        assert (per_node == 0).mean() > 0.60

    def test_top8_concentration(self, full_campaign):
        per_node = np.bincount(full_campaign.errors["node"], minlength=2592)
        top = np.sort(per_node)[::-1]
        assert top[:8].sum() / top.sum() > 0.50

    def test_top2pct_concentration(self, full_campaign):
        per_node = np.bincount(full_campaign.errors["node"], minlength=2592)
        top = np.sort(per_node)[::-1]
        share = top[:52].sum() / top.sum()
        assert 0.85 < share < 0.95

    def test_max_errors_per_fault(self, full_campaign):
        faults = full_campaign.faults()
        assert 88_000 <= faults["n_errors"].max() <= 95_000

    def test_median_errors_per_fault_is_one(self, full_campaign):
        faults = full_campaign.faults()
        assert np.median(faults["n_errors"]) == 1

    def test_mode_error_totals(self, full_campaign):
        from repro.faults.classify import errors_per_mode
        from repro.faults.types import FaultMode

        epm = errors_per_mode(full_campaign.faults())
        assert epm[FaultMode.SINGLE_BIT] == pytest.approx(1_412_738, rel=0.02)
        assert epm[FaultMode.SINGLE_WORD] == pytest.approx(31_055, rel=0.05)
        assert epm[FaultMode.SINGLE_COLUMN] == pytest.approx(54_126, rel=0.05)
        assert epm[FaultMode.SINGLE_BANK] == pytest.approx(7_658, rel=0.10)
        assert epm[FaultMode.UNATTRIBUTED] == pytest.approx(2_864_154, rel=0.01)
