"""Tests for the counterfactual temperature-coupled campaigns."""

import numpy as np
import pytest

from repro.analysis.temperature import errored_dimm_sensor
from repro.synth.counterfactual import (
    apply_placement_coupling,
    apply_temperature_coupling,
)
from repro.faults.coalesce import coalesce


class TestTemporalCoupling:
    def test_thins_stream(self, small_campaign):
        kept = apply_temperature_coupling(
            small_campaign.errors, small_campaign.sensors, keep_fraction=0.5
        )
        assert 0 < kept.size < small_campaign.errors.size
        assert kept.size == pytest.approx(0.5 * small_campaign.errors.size, rel=0.1)

    def test_retention_biased_toward_heat(self, small_campaign):
        """Surviving errors sit at hotter instants than dropped ones."""
        c = small_campaign
        kept = apply_temperature_coupling(
            c.errors, c.sensors, doubling_deg_c=2.0, seed=0
        )
        all_temps = c.sensors.temperature(
            c.errors["node"].astype(np.int64),
            errored_dimm_sensor(c.errors),
            c.errors["time"],
        )
        kept_temps = c.sensors.temperature(
            kept["node"].astype(np.int64),
            errored_dimm_sensor(kept),
            kept["time"],
        )
        assert kept_temps.mean() > all_temps.mean() + 0.2

    def test_time_order_preserved(self, small_campaign):
        kept = apply_temperature_coupling(
            small_campaign.errors, small_campaign.sensors
        )
        assert np.all(np.diff(kept["time"]) >= 0)

    def test_coalescable(self, small_campaign):
        kept = apply_temperature_coupling(
            small_campaign.errors, small_campaign.sensors
        )
        faults = coalesce(kept)
        assert 0 < faults.size <= small_campaign.faults().size

    def test_deterministic(self, small_campaign):
        a = apply_temperature_coupling(
            small_campaign.errors, small_campaign.sensors, seed=4
        )
        b = apply_temperature_coupling(
            small_campaign.errors, small_campaign.sensors, seed=4
        )
        np.testing.assert_array_equal(a, b)

    def test_validation(self, small_campaign):
        with pytest.raises(ValueError):
            apply_temperature_coupling(np.zeros(3), small_campaign.sensors)
        with pytest.raises(ValueError):
            apply_temperature_coupling(
                small_campaign.errors, small_campaign.sensors, doubling_deg_c=0
            )
        with pytest.raises(ValueError):
            apply_temperature_coupling(
                small_campaign.errors, small_campaign.sensors, keep_fraction=0
            )


class TestPlacementCoupling:
    def test_streams_move_intact(self, small_campaign):
        c = small_campaign
        moved = apply_placement_coupling(c.errors, c.sensors, c.topology, seed=2)
        assert moved.size == c.errors.size
        # The multiset of per-node error counts is preserved.
        old = np.sort(np.unique(c.errors["node"], return_counts=True)[1])
        new = np.sort(np.unique(moved["node"], return_counts=True)[1])
        np.testing.assert_array_equal(old, new)

    def test_new_nodes_hotter(self, small_campaign):
        c = small_campaign
        moved = apply_placement_coupling(
            c.errors, c.sensors, c.topology, doubling_deg_c=1.0, seed=2
        )
        t = float(c.errors["time"].mean())

        def mean_dimm_temp(nodes):
            nodes = np.unique(nodes)
            return float(
                np.mean(
                    [
                        c.sensors.temperature(nodes, np.full(nodes.size, s), t)
                        for s in (2, 3, 4, 5)
                    ]
                )
            )

        assert mean_dimm_temp(moved["node"]) > mean_dimm_temp(c.errors["node"]) + 0.2

    def test_fault_count_preserved(self, small_campaign):
        c = small_campaign
        moved = apply_placement_coupling(c.errors, c.sensors, c.topology, seed=2)
        assert coalesce(moved).size == c.faults().size

    def test_validation(self, small_campaign):
        c = small_campaign
        with pytest.raises(ValueError):
            apply_placement_coupling(np.zeros(3), c.sensors, c.topology)
        with pytest.raises(ValueError):
            apply_placement_coupling(
                c.errors, c.sensors, c.topology, doubling_deg_c=-1
            )
