"""Tests for error expansion and the CE logging model."""

import numpy as np
import pytest

from repro.faults.coalesce import CoalesceOptions, coalesce
from repro.faults.types import NO_ROW, FaultMode, empty_errors, validate_errors
from repro.synth.errors import apply_ce_logging, expand_errors
from repro.synth.population import FaultPopulationGenerator


@pytest.fixture(scope="module")
def population():
    return FaultPopulationGenerator(seed=5, scale=0.03).generate()


@pytest.fixture(scope="module")
def errors(population):
    return expand_errors(population.faults, seed=11)


class TestExpansion:
    def test_counts_match_plan(self, population, errors):
        assert errors.size == population.total_errors

    def test_records_validate(self, errors):
        validate_errors(errors)

    def test_time_ordered(self, errors):
        assert np.all(np.diff(errors["time"]) >= 0)

    def test_rows_absent_by_default(self, errors):
        assert np.all(errors["row"] == NO_ROW)

    def test_rows_emitted_on_request(self, population):
        e = expand_errors(population.faults, seed=11, emit_rows=True)
        attributed = e["bank"] >= 0
        assert np.all(e["row"][attributed] >= 0)
        assert np.all(e["row"][~attributed] == NO_ROW)

    def test_deterministic(self, population):
        a = expand_errors(population.faults, seed=11)
        b = expand_errors(population.faults, seed=11)
        np.testing.assert_array_equal(a, b)

    def test_empty_population(self):
        out = expand_errors(np.zeros(0, dtype=FaultPopulationGenerator(seed=0).generate().faults.dtype))
        assert out.size == 0

    def test_coalescing_recovers_population(self, population, errors):
        faults = coalesce(errors)
        assert faults.size == population.faults.size
        assert faults["n_errors"].sum() == errors.size

    def test_mode_error_totals_survive_coalescing(self, population, errors):
        """Classified per-mode error totals approximate the planned ones.

        Singleton faults of looser modes legitimately classify as
        single-bit (one error carries no structure), so single-bit may
        gain a little and the others lose their singletons.
        """
        faults = coalesce(errors)
        planned = {
            m: int(
                population.faults["n_errors"][
                    population.faults["mode"] == m
                ].sum()
            )
            for m in FaultMode
        }
        got = {
            m: int(faults["n_errors"][faults["mode"] == m].sum())
            for m in FaultMode
        }
        # Unattributed totals must match exactly (no drift possible).
        assert got[FaultMode.UNATTRIBUTED] == planned[FaultMode.UNATTRIBUTED]
        # Heavy-mode totals within 5%.
        for m in (FaultMode.SINGLE_BIT, FaultMode.SINGLE_COLUMN):
            assert got[m] == pytest.approx(planned[m], rel=0.05)

    def test_single_column_errors_share_column(self, population, errors):
        faults = coalesce(errors)
        col_faults = faults[faults["mode"] == FaultMode.SINGLE_COLUMN]
        assert col_faults.size > 0
        assert np.all(col_faults["column"] >= 0)

    def test_syndromes_match_bits(self, errors):
        from repro.machine.dram import SecDed72

        code = SecDed72()
        valid = errors["bit_pos"] >= 0
        expected = code.syndrome_of_position(
            errors["bit_pos"][valid].astype(np.int64)
        )
        np.testing.assert_array_equal(errors["syndrome"][valid], expected)


class TestCeLogging:
    def _burst(self, n, t0=0.0, dt=0.01, node=0):
        e = empty_errors(n)
        e["time"] = t0 + np.arange(n) * dt
        e["node"] = node
        return e

    def test_burst_truncated_to_buffer(self):
        burst = self._burst(100)  # 1 second burst, one poll window
        kept = apply_ce_logging(burst, buffer_slots=16, poll_period_s=5.0)
        assert kept.size == 16

    def test_slow_errors_all_kept(self):
        slow = self._burst(20, dt=10.0)  # one error per poll window
        kept = apply_ce_logging(slow, buffer_slots=16, poll_period_s=5.0)
        assert kept.size == 20

    def test_nodes_independent(self):
        a = self._burst(100, node=1)
        b = self._burst(100, node=2)
        both = np.concatenate([a, b])
        kept = apply_ce_logging(both, buffer_slots=16, poll_period_s=5.0)
        assert kept.size == 32

    def test_empty(self):
        assert apply_ce_logging(empty_errors(0)).size == 0

    def test_keeps_earliest_of_each_window(self):
        burst = self._burst(10)
        kept = apply_ce_logging(burst, buffer_slots=3, poll_period_s=5.0)
        np.testing.assert_array_equal(kept["time"], burst["time"][:3])

    def test_parameter_validation(self):
        e = self._burst(1)
        with pytest.raises(ValueError):
            apply_ce_logging(e, buffer_slots=0)
        with pytest.raises(ValueError):
            apply_ce_logging(e, poll_period_s=0)
        with pytest.raises(ValueError):
            apply_ce_logging(np.zeros(3))

    def test_monotone_in_buffer_size(self):
        burst = self._burst(50)
        k8 = apply_ce_logging(burst, buffer_slots=8).size
        k32 = apply_ce_logging(burst, buffer_slots=32).size
        assert k8 <= k32
