"""Tests for the hardware replacement generator."""

import numpy as np
import pytest

from repro._util import DAY_S
from repro.synth.config import PaperCalibration
from repro.synth.replacements import Component, ReplacementGenerator


@pytest.fixture(scope="module")
def events():
    return ReplacementGenerator(seed=1, scale=1.0).generate()


class TestTotals:
    def test_table1_totals(self, events):
        counts = np.bincount(events["component"], minlength=3)
        assert counts[Component.PROCESSOR] == 836
        assert counts[Component.MOTHERBOARD] == 46
        assert counts[Component.DIMM] == 1515

    def test_scaled_totals(self):
        ev = ReplacementGenerator(seed=1, scale=0.1).generate()
        counts = np.bincount(ev["component"], minlength=3)
        assert counts[Component.PROCESSOR] == 84
        assert counts[Component.DIMM] == 152

    def test_time_ordered_and_in_window(self, events):
        cal = PaperCalibration()
        assert np.all(np.diff(events["time"]) >= 0)
        assert events["time"].min() >= cal.inventory_window[0]
        assert events["time"].max() <= cal.inventory_window[1]

    def test_deterministic(self):
        a = ReplacementGenerator(seed=1).generate()
        b = ReplacementGenerator(seed=1).generate()
        np.testing.assert_array_equal(a, b)


class TestFieldSemantics:
    def test_sockets_only_for_processors(self, events):
        procs = events[events["component"] == Component.PROCESSOR]
        others = events[events["component"] != Component.PROCESSOR]
        assert np.all(procs["socket"] >= 0)
        assert np.all(others["socket"] == -1)

    def test_slots_only_for_dimms(self, events):
        dimms = events[events["component"] == Component.DIMM]
        others = events[events["component"] != Component.DIMM]
        assert np.all((dimms["slot"] >= 0) & (dimms["slot"] < 16))
        assert np.all(others["slot"] == -1)

    def test_nodes_in_range(self, events):
        assert np.all((events["node"] >= 0) & (events["node"] < 2592))

    def test_labels(self):
        assert Component.PROCESSOR.label == "Processors"
        assert Component.DIMM.label == "DIMMs"


class TestTemporalShape:
    """Figure 3's qualitative features."""

    def _daily(self, events, component):
        cal = PaperCalibration()
        sel = events[events["component"] == component]
        days = ((sel["time"] - cal.inventory_window[0]) // DAY_S).astype(int)
        n_days = int((cal.inventory_window[1] - cal.inventory_window[0]) // DAY_S)
        return np.bincount(days, minlength=n_days)

    def test_infant_mortality_everywhere(self, events):
        for component in Component:
            daily = self._daily(events, component)
            first_month = daily[:30].sum()
            third_month = daily[60:90].sum()
            assert first_month > third_month

    def test_processor_upgrade_uptick(self, events):
        daily = self._daily(events, Component.PROCESSOR)
        # The upgrade window (~day 130) beats the quiet period before it.
        assert daily[118:142].sum() > 2 * daily[60:84].sum()

    def test_motherboard_late_uptick(self, events):
        daily = self._daily(events, Component.MOTHERBOARD)
        assert daily[160:180].sum() >= daily[60:80].sum()

    def test_dimm_midperiod_elevation(self, events):
        daily = self._daily(events, Component.DIMM)
        assert daily[85:125].sum() > daily[40:80].sum()

    def test_dimm_steady_tail(self, events):
        daily = self._daily(events, Component.DIMM)
        tail = daily[130:190]
        assert tail.sum() > 0
        # steady: no 20-day gap in the tail
        assert max(np.diff(np.flatnonzero(np.append(tail, 1)))) < 20

    def test_endgame_burst(self, events):
        daily = self._daily(events, Component.PROCESSOR)
        assert daily[-10:].sum() > daily[-30:-20].sum()

    def test_weights_normalised(self):
        gen = ReplacementGenerator(seed=0)
        for component in Component:
            w = gen.daily_weights(component)
            assert w.sum() == pytest.approx(1.0)
            assert np.all(w >= 0)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            ReplacementGenerator(scale=-1)
