"""Tests for the HET (uncorrectable error) generator."""

import numpy as np
import pytest

from repro._util import DAY_S
from repro.synth.config import PaperCalibration
from repro.synth.het import (
    EVENT_TYPES,
    NON_RECOVERABLE_EVENTS,
    HetGenerator,
)


@pytest.fixture(scope="module")
def gen():
    return HetGenerator(seed=4, scale=1.0)


@pytest.fixture(scope="module")
def events(gen):
    return gen.generate()


class TestFirmwareGap:
    def test_no_events_before_recording_start(self, gen, events):
        assert events["time"].min() >= gen.recording_window[0]

    def test_recording_window_matches_calibration(self, gen):
        cal = PaperCalibration()
        assert gen.recording_window == (
            cal.het_recording_start,
            cal.error_window[1],
        )


class TestDueRate:
    def test_expected_due_count(self, gen):
        # 41,472 DIMMs x 0.00948/yr x (22/365) yr ~ 23.7
        assert gen.expected_dues() == pytest.approx(23.7, rel=0.05)

    def test_generated_due_count_near_expectation(self, events, gen):
        dues = events[events["non_recoverable"]]
        assert dues.size == round(gen.expected_dues())

    def test_due_rate_recovers_paper_value(self, gen, events):
        dues = int(events["non_recoverable"].sum())
        t0, t1 = gen.recording_window
        years = (t1 - t0) / (365 * DAY_S)
        n_dimms = 41472
        rate = dues / (n_dimms * years)
        assert rate == pytest.approx(0.00948, rel=0.10)


class TestEventVocabulary:
    def test_paper_legend(self):
        assert "redundacyLost" in EVENT_TYPES  # vendor spelling, verbatim
        assert "uncorrectableECC" in EVENT_TYPES
        assert "uncorrectableMachineCheckException" in EVENT_TYPES
        assert len(EVENT_TYPES) == 8

    def test_non_recoverable_subset(self):
        names = {EVENT_TYPES[i] for i in NON_RECOVERABLE_EVENTS}
        assert names == {
            "uncorrectableECC",
            "uncorrectableMachineCheckException",
        }

    def test_severity_flag_matches_event_type(self, events):
        nr = np.isin(events["event"], NON_RECOVERABLE_EVENTS)
        np.testing.assert_array_equal(nr, events["non_recoverable"])

    def test_recoverable_events_present(self, events):
        assert (~events["non_recoverable"]).sum() > 0


class TestMechanics:
    def test_time_ordered(self, events):
        assert np.all(np.diff(events["time"]) >= 0)

    def test_nodes_in_range(self, events):
        assert np.all((events["node"] >= 0) & (events["node"] < 2592))

    def test_deterministic(self):
        a = HetGenerator(seed=4).generate()
        b = HetGenerator(seed=4).generate()
        np.testing.assert_array_equal(a, b)

    def test_scale(self):
        small = HetGenerator(seed=4, scale=0.1).generate()
        big = HetGenerator(seed=4, scale=1.0).generate()
        assert small.size < big.size

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            HetGenerator(scale=0)
